//! # sortsynth
//!
//! A from-scratch reproduction of Ullrich & Hack, *Synthesis of Sorting
//! Kernels* (CGO 2025): enumerative A*/Dijkstra synthesis of optimal
//! branchless sorting kernels, together with every baseline the paper
//! compares against (SAT/SMT-style solving, CP goal formulations, stochastic
//! superoptimization, MCTS, classical planning) and the full §5 evaluation
//! harness (native JIT kernel execution, quicksort/mergesort embeddings,
//! t-SNE solution-space visualization).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `sortsynth-isa` | machine model, semantics, correctness, cost models |
//! | [`search`] | `sortsynth-search` | the paper's enumerative synthesis (§3) |
//! | [`sat`] | `sortsynth-sat` | CDCL SAT solver substrate |
//! | [`solvers`] | `sortsynth-solvers` | SMT-Perm / SMT-CEGIS / CP encodings (§4) |
//! | [`stoke`] | `sortsynth-stoke` | stochastic superoptimizer baseline |
//! | [`mcts`] | `sortsynth-mcts` | MCTS (AlphaDev-style) baseline |
//! | [`plan`] | `sortsynth-plan` | STRIPS planning substrate + encodings |
//! | [`tsne`] | `sortsynth-tsne` | exact t-SNE (Figure 2) |
//! | [`jit`] | `sortsynth-jit` | x86-64 JIT for running kernels natively |
//! | [`kernels`] | `sortsynth-kernels` | reference kernels, networks, embeddings |
//! | [`verify`] | `sortsynth-verify` | static analysis: liveness, abstract domains, lints |
//!
//! # Quick start
//!
//! ```
//! use sortsynth::isa::{IsaMode, Machine};
//! use sortsynth::search::{synthesize, SynthesisConfig};
//!
//! // Synthesize a minimal branchless kernel that sorts 3 values.
//! let machine = Machine::new(3, 1, IsaMode::Cmov);
//! let result = synthesize(&SynthesisConfig::best(machine.clone()));
//! let kernel = result.first_program().expect("n = 3 kernels exist");
//! assert_eq!(kernel.len(), 11); // the paper's optimal length
//! assert!(machine.is_correct(&kernel));
//! println!("{}", machine.format_program(&kernel));
//! ```

pub use sortsynth_isa as isa;
pub use sortsynth_jit as jit;
pub use sortsynth_kernels as kernels;
pub use sortsynth_mcts as mcts;
pub use sortsynth_plan as plan;
pub use sortsynth_sat as sat;
pub use sortsynth_search as search;
pub use sortsynth_solvers as solvers;
pub use sortsynth_stoke as stoke;
pub use sortsynth_tsne as tsne;
pub use sortsynth_verify as verify;
