//! CNF encoding of the sorting-kernel synthesis problem (§4).
//!
//! The encoding mirrors the paper's SMT/CP formulation: per test case and
//! timestep, one-hot value variables for every register, boolean flag
//! variables, instruction-selection variables per timestep, and transition
//! constraints tying consecutive states together. Goal formulations and the
//! §4 symmetry/heuristic toggles are selectable, so the CP goal-formulation
//! table (§5.2) can be regenerated.

use sortsynth_isa::{Instr, Machine, Op, Program, Reg};
use sortsynth_sat::{Lit, Solver, Var};

/// The §4 / §5.2 goal formulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// `= 123`: the output registers hold `1..=n` in order (only valid when
    /// every test case is a permutation of `1..=n`).
    Exact,
    /// `≤, #123` / `≤, #0123`: ascending output whose value counts match
    /// the input's; `include_zero` additionally constrains the count of the
    /// never-occurring value 0 (the paper's surprisingly faster `#0123`).
    AscendingCounts {
        /// Constrain the count of value 0 as well.
        include_zero: bool,
    },
    /// `≤, #0123, = 123`: both of the above — the paper's "too much
    /// information" row.
    AscendingCountsAndExact,
}

/// The §4 heuristic / symmetry toggles explored in the CP table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Goal formulation.
    pub goal: Goal,
    /// (I): forbid two consecutive `cmp` instructions.
    pub no_consecutive_cmps: bool,
    /// (II): only emit `cmp` with operands in index order (flag symmetry).
    pub cmp_symmetry: bool,
    /// Force the first instruction to be a `cmp` (`cmd[1] = Cmp` row).
    pub first_cmd_cmp: bool,
    /// Forbid reading a scratch register before it was written
    /// ("only read initialized" row).
    pub only_read_initialized: bool,
    /// Enable CDCL phase saving, and (in CEGIS) warm-start each
    /// iteration's decision polarities from the previous candidate model.
    /// Purely heuristic — never changes answers, only solve effort. On by
    /// default; the off position exists as an ablation toggle.
    pub phase_saving: bool,
}

impl Default for EncodeOptions {
    /// The paper's best CP setting: `≤, #0123` with heuristics (I) + (II).
    fn default() -> Self {
        EncodeOptions {
            goal: Goal::AscendingCounts { include_zero: true },
            no_consecutive_cmps: true,
            cmp_symmetry: true,
            first_cmd_cmp: false,
            only_read_initialized: false,
            phase_saving: true,
        }
    }
}

/// An encoded instance: the solver plus the variable layout needed to
/// decode a model back into a [`Program`].
pub struct Encoded {
    /// The CNF.
    pub solver: Solver,
    /// `instr_vars[t][a]`: instruction `a` selected at step `t`.
    pub instr_vars: Vec<Vec<Var>>,
    /// The action list `a` indexes into.
    pub actions: Vec<Instr>,
}

impl Encoded {
    /// Reads the synthesized program out of a satisfying model.
    ///
    /// # Panics
    ///
    /// Panics if the solver has no model (call after `Sat`).
    pub fn decode(&self) -> Program {
        self.instr_vars
            .iter()
            .map(|step| {
                let a = step
                    .iter()
                    .position(|&v| self.solver.value(v) == Some(true))
                    .expect("exactly-one instruction per step in any model");
                self.actions[a]
            })
            .collect()
    }
}

/// Builds the CNF for: "there exists a program of exactly `len` instructions
/// that satisfies `opts.goal` on every test case in `tests`".
///
/// Each test case gives the initial values of `r1..rn` (entries in
/// `1..=n`, duplicates allowed for the arbitrary-input CEGIS variant).
///
/// # Panics
///
/// Panics if a test case has the wrong length or out-of-range values, or if
/// [`Goal::Exact`] is combined with a non-permutation test case.
pub fn encode(machine: &Machine, len: u32, tests: &[Vec<u8>], opts: EncodeOptions) -> Encoded {
    let n = machine.n() as usize;
    let regs = machine.num_regs() as usize;
    let vals = n + 1; // domain 0..=n
    let mut solver = Solver::new();
    solver.set_phase_saving(opts.phase_saving);

    let actions = actions_for(machine, opts);

    // Instruction selection variables.
    let instr_vars: Vec<Vec<Var>> = (0..len)
        .map(|_| (0..actions.len()).map(|_| solver.new_var()).collect())
        .collect();
    for step in &instr_vars {
        let lits: Vec<Lit> = step.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_exactly_one(&lits);
    }

    if opts.first_cmd_cmp {
        for (a, instr) in actions.iter().enumerate() {
            if instr.op != Op::Cmp {
                solver.add_clause(&[Lit::neg(instr_vars[0][a])]);
            }
        }
    }
    if opts.no_consecutive_cmps {
        for t in 0..len.saturating_sub(1) as usize {
            for (a1, i1) in actions.iter().enumerate() {
                if i1.op != Op::Cmp {
                    continue;
                }
                for (a2, i2) in actions.iter().enumerate() {
                    if i2.op == Op::Cmp {
                        solver.add_clause(&[
                            Lit::neg(instr_vars[t][a1]),
                            Lit::neg(instr_vars[t + 1][a2]),
                        ]);
                    }
                }
            }
        }
    }
    if opts.only_read_initialized {
        // A scratch register may be read at step t only if some earlier
        // instruction wrote it: reading-instruction implies the disjunction
        // of earlier writes.
        for t in 0..len as usize {
            for (a, instr) in actions.iter().enumerate() {
                let reads_scratch = |r: Reg| r.index() as usize >= n;
                let reads =
                    (instr.op.reads_dst() && reads_scratch(instr.dst)) || reads_scratch(instr.src);
                if !reads {
                    continue;
                }
                let target = if reads_scratch(instr.src) {
                    instr.src
                } else {
                    instr.dst
                };
                let mut clause = vec![Lit::neg(instr_vars[t][a])];
                for step in instr_vars.iter().take(t) {
                    for (a2, instr2) in actions.iter().enumerate() {
                        if instr2.op.writes_dst() && instr2.dst == target {
                            clause.push(Lit::pos(step[a2]));
                        }
                    }
                }
                solver.add_clause(&clause);
            }
        }
    }

    // Per-test-case state variables and transitions.
    for test in tests {
        assert_eq!(test.len(), n, "test case length mismatch");
        assert!(
            test.iter().all(|&v| v >= 1 && v as usize <= n),
            "test values must lie in 1..=n"
        );
        // x[t][r][v], lt[t], gt[t].
        let x: Vec<Vec<Vec<Var>>> = (0..=len)
            .map(|_| {
                (0..regs)
                    .map(|_| (0..vals).map(|_| solver.new_var()).collect())
                    .collect()
            })
            .collect();
        let lt: Vec<Var> = (0..=len).map(|_| solver.new_var()).collect();
        let gt: Vec<Var> = (0..=len).map(|_| solver.new_var()).collect();

        for xt in &x {
            for xr in xt {
                let lits: Vec<Lit> = xr.iter().map(|&v| Lit::pos(v)).collect();
                solver.add_exactly_one(&lits);
            }
        }

        // Initial state.
        for r in 0..regs {
            let v0 = if r < n { test[r] as usize } else { 0 };
            solver.add_clause(&[Lit::pos(x[0][r][v0])]);
        }
        solver.add_clause(&[Lit::neg(lt[0])]);
        solver.add_clause(&[Lit::neg(gt[0])]);

        // Transitions.
        for t in 0..len as usize {
            for (a, instr) in actions.iter().enumerate() {
                let sel = Lit::neg(instr_vars[t][a]); // ¬selected ∨ …
                let d = instr.dst.index() as usize;
                let s = instr.src.index() as usize;
                // Frame: registers the instruction does not write.
                for (r, (next_r, cur_r)) in x[t + 1].iter().zip(&x[t]).enumerate() {
                    if instr.op.writes_dst() && r == d {
                        continue;
                    }
                    for (&nv, &cv) in next_r.iter().zip(cur_r) {
                        iff(&mut solver, sel, nv, cv);
                    }
                }
                // Frame: flags unless written.
                if !instr.op.writes_flags() {
                    iff(&mut solver, sel, lt[t + 1], lt[t]);
                    iff(&mut solver, sel, gt[t + 1], gt[t]);
                }
                match instr.op {
                    Op::Mov => {
                        for (&nv, &sv) in x[t + 1][d].iter().zip(&x[t][s]) {
                            iff(&mut solver, sel, nv, sv);
                        }
                    }
                    Op::Cmp => {
                        // Flags as a function of the compared values.
                        for v1 in 0..vals {
                            for v2 in 0..vals {
                                let premise = [sel, Lit::neg(x[t][d][v1]), Lit::neg(x[t][s][v2])];
                                let lt_val = v1 < v2;
                                let gt_val = v1 > v2;
                                let mut c1 = premise.to_vec();
                                c1.push(signed(lt[t + 1], lt_val));
                                solver.add_clause(&c1);
                                let mut c2 = premise.to_vec();
                                c2.push(signed(gt[t + 1], gt_val));
                                solver.add_clause(&c2);
                            }
                        }
                    }
                    Op::Cmovl | Op::Cmovg => {
                        let flag = if instr.op == Op::Cmovl { lt[t] } else { gt[t] };
                        for ((&nv, &sv), &dv) in x[t + 1][d].iter().zip(&x[t][s]).zip(&x[t][d]) {
                            // flag set → copy; flag clear → keep.
                            cond_iff(&mut solver, sel, Lit::neg(flag), nv, sv);
                            cond_iff(&mut solver, sel, Lit::pos(flag), nv, dv);
                        }
                    }
                    Op::Min | Op::Max => {
                        // dst' = min/max(dst, src): for every value pair.
                        for v1 in 0..vals {
                            for v2 in 0..vals {
                                let result = if instr.op == Op::Min {
                                    v1.min(v2)
                                } else {
                                    v1.max(v2)
                                };
                                solver.add_clause(&[
                                    sel,
                                    Lit::neg(x[t][d][v1]),
                                    Lit::neg(x[t][s][v2]),
                                    Lit::pos(x[t + 1][d][result]),
                                ]);
                            }
                        }
                    }
                }
            }
        }

        // Goal.
        let last = len as usize;
        let exact = |solver: &mut Solver| {
            for (r, _) in (0..n).enumerate() {
                solver.add_clause(&[Lit::pos(x[last][r][r + 1])]);
            }
        };
        let ascending_counts = |solver: &mut Solver, include_zero: bool| {
            // Ascending: forbid descending adjacent pairs.
            for r in 0..n - 1 {
                for v1 in 0..vals {
                    for v2 in 0..v1 {
                        solver
                            .add_clause(&[Lit::neg(x[last][r][v1]), Lit::neg(x[last][r + 1][v2])]);
                    }
                }
            }
            // Counts: each value occurs as often in the output as in the
            // input.
            let lo = if include_zero { 0 } else { 1 };
            // `v` also selects the value plane of `x`, so a range loop is
            // the clear spelling here.
            #[allow(clippy::needless_range_loop)]
            for v in lo..vals {
                let count = test.iter().filter(|&&tv| tv as usize == v).count();
                let positions: Vec<Var> = (0..n).map(|r| x[last][r][v]).collect();
                add_count_constraint(solver, &positions, count);
            }
        };
        match opts.goal {
            Goal::Exact => {
                assert!(
                    is_permutation(test, n),
                    "Goal::Exact needs permutation test cases"
                );
                exact(&mut solver);
            }
            Goal::AscendingCounts { include_zero } => ascending_counts(&mut solver, include_zero),
            Goal::AscendingCountsAndExact => {
                assert!(
                    is_permutation(test, n),
                    "Goal::Exact needs permutation test cases"
                );
                ascending_counts(&mut solver, true);
                exact(&mut solver);
            }
        }
    }

    Encoded {
        solver,
        instr_vars,
        actions,
    }
}

/// The action list under the §4 symmetry toggles.
fn actions_for(machine: &Machine, opts: EncodeOptions) -> Vec<Instr> {
    let mut actions = Vec::new();
    for &op in machine.mode().ops() {
        for dst in machine.regs() {
            for src in machine.regs() {
                if dst == src {
                    continue; // self-ops are nonsensical in any formulation
                }
                if op == Op::Cmp && opts.cmp_symmetry && dst.index() > src.index() {
                    continue;
                }
                actions.push(Instr::new(op, dst, src));
            }
        }
    }
    actions
}

fn is_permutation(test: &[u8], n: usize) -> bool {
    let mut seen = vec![false; n + 1];
    for &v in test {
        if seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    true
}

fn signed(var: Var, value: bool) -> Lit {
    if value {
        Lit::pos(var)
    } else {
        Lit::neg(var)
    }
}

/// `premise → (a ↔ b)` as two clauses.
fn iff(solver: &mut Solver, premise: Lit, a: Var, b: Var) {
    solver.add_clause(&[premise, Lit::neg(a), Lit::pos(b)]);
    solver.add_clause(&[premise, Lit::pos(a), Lit::neg(b)]);
}

/// `premise1 ∨ premise2 ∨ (a ↔ b)` as two clauses (both premises are
/// already-negated escape literals).
fn cond_iff(solver: &mut Solver, premise1: Lit, premise2: Lit, a: Var, b: Var) {
    solver.add_clause(&[premise1, premise2, Lit::neg(a), Lit::pos(b)]);
    solver.add_clause(&[premise1, premise2, Lit::pos(a), Lit::neg(b)]);
}

/// Exactly-`k` of `vars` are true, by subset enumeration (fine for the ≤ 6
/// positions a kernel output has).
fn add_count_constraint(solver: &mut Solver, vars: &[Var], k: usize) {
    let n = vars.len();
    // At most k: every (k+1)-subset contains a false literal.
    for subset in subsets(n, k + 1) {
        let clause: Vec<Lit> = subset.iter().map(|&i| Lit::neg(vars[i])).collect();
        solver.add_clause(&clause);
    }
    // At least k: every (n-k+1)-subset contains a true literal.
    if k > 0 {
        for subset in subsets(n, n - k + 1) {
            let clause: Vec<Lit> = subset.iter().map(|&i| Lit::pos(vars[i])).collect();
            solver.add_clause(&clause);
        }
    }
}

/// All `size`-element subsets of `0..n` (empty when `size > n`).
fn subsets(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    let mut current = Vec::with_capacity(size);
    fn rec(
        start: usize,
        n: usize,
        size: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, size, current, out);
            current.pop();
        }
    }
    rec(0, n, size, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{permutations, IsaMode};
    use sortsynth_sat::SolveResult;

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(subsets(3, 0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn count_constraint_forces_exact_count() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        add_count_constraint(&mut s, &vars, 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        let set = vars.iter().filter(|&&v| s.value(v) == Some(true)).count();
        assert_eq!(set, 2);
    }

    #[test]
    fn n2_synthesis_at_length_4_is_sat_and_correct() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = permutations(2);
        let mut enc = encode(&machine, 4, &tests, EncodeOptions::default());
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let prog = enc.decode();
        assert_eq!(prog.len(), 4);
        assert!(
            machine.is_correct(&prog),
            "{}",
            machine.format_program(&prog)
        );
    }

    #[test]
    fn n2_synthesis_at_length_3_is_unsat() {
        // Matches the enumerative lower bound: no 3-instruction cmov kernel.
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = permutations(2);
        let mut enc = encode(&machine, 3, &tests, EncodeOptions::default());
        assert_eq!(enc.solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn n2_minmax_synthesis_at_length_3_is_sat() {
        let machine = Machine::new(2, 1, IsaMode::MinMax);
        let tests = permutations(2);
        let mut enc = encode(&machine, 3, &tests, EncodeOptions::default());
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let prog = enc.decode();
        assert!(
            machine.is_correct(&prog),
            "{}",
            machine.format_program(&prog)
        );
    }

    #[test]
    fn exact_goal_agrees_with_counts_goal_on_satisfiability() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = permutations(2);
        for goal in [
            Goal::Exact,
            Goal::AscendingCounts {
                include_zero: false,
            },
            Goal::AscendingCountsAndExact,
        ] {
            let opts = EncodeOptions {
                goal,
                ..EncodeOptions::default()
            };
            let mut enc = encode(&machine, 4, &tests, opts);
            assert_eq!(enc.solver.solve(), SolveResult::Sat, "goal {goal:?}");
            assert!(machine.is_correct(&enc.decode()), "goal {goal:?}");
        }
    }

    #[test]
    fn partial_test_suite_admits_wrong_programs() {
        // The paper's CP-MiniZinc-Filter observation: with only one test
        // case the solver happily returns a program that fails the other.
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = vec![vec![1u8, 2]]; // already sorted
        let mut enc = encode(&machine, 1, &tests, EncodeOptions::default());
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let prog = enc.decode();
        assert!(!machine.is_correct(&prog)); // length 1 cannot sort [2, 1]
    }

    #[test]
    fn first_cmd_cmp_is_respected() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = permutations(2);
        let opts = EncodeOptions {
            first_cmd_cmp: true,
            ..EncodeOptions::default()
        };
        let mut enc = encode(&machine, 4, &tests, opts);
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let prog = enc.decode();
        assert_eq!(prog[0].op, Op::Cmp);
        assert!(machine.is_correct(&prog));
    }
}
