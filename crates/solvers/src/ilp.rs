//! A tiny 0-1 integer-linear-programming solver and the ILP formulation of
//! kernel synthesis (§4.2, the CP-ILP rows).
//!
//! The paper reduces conditional-move transitions to linear constraints with
//! big-M couplings and reports that no dedicated ILP back-end (Gurobi, CBC)
//! synthesizes even the n = 3 kernel. We reproduce the approach with a
//! depth-first branch-and-bound over binary variables with bounds
//! propagation — deliberately *without* clause learning, which is exactly
//! what separates the failing ILP solvers from the lazy-clause-generation
//! solver (Chuffed / our CDCL core) that succeeds.

use std::time::{Duration, Instant};

use sortsynth_isa::{Machine, Program};

use crate::encoding::{encode, EncodeOptions, Encoded};
use crate::synth::{Budget, SynthOutcome, SynthStats};

/// One linear constraint `Σ coeff_i · x_i ≥ bound` over binary variables.
#[derive(Debug, Clone)]
pub struct LinearConstraint {
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, i32)>,
    /// Right-hand side.
    pub bound: i32,
}

/// A 0-1 ILP instance.
#[derive(Debug, Clone, Default)]
pub struct IlpProblem {
    /// Number of binary variables.
    pub num_vars: usize,
    /// The constraints.
    pub constraints: Vec<LinearConstraint>,
}

/// Result of [`IlpProblem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpResult {
    /// A feasible assignment.
    Feasible(Vec<bool>),
    /// Proven infeasible.
    Infeasible,
    /// Budget expired.
    Budget,
}

impl IlpProblem {
    /// Depth-first branch-and-bound with per-constraint bounds propagation.
    ///
    /// At each node, every constraint's attainable maximum is checked
    /// (prune) and variables whose value is forced are fixed (propagate);
    /// otherwise the first unfixed variable is branched on.
    pub fn solve(&self, node_limit: u64, timeout: Option<Duration>) -> IlpResult {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        let mut nodes = 0u64;
        match self.dfs(&mut assignment, &mut nodes, node_limit, deadline) {
            Dfs::Feasible => {
                IlpResult::Feasible(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
            }
            Dfs::Infeasible => IlpResult::Infeasible,
            Dfs::Budget => IlpResult::Budget,
        }
    }

    fn dfs(
        &self,
        assignment: &mut Vec<Option<bool>>,
        nodes: &mut u64,
        node_limit: u64,
        deadline: Option<Instant>,
    ) -> Dfs {
        *nodes += 1;
        if *nodes > node_limit {
            return Dfs::Budget;
        }
        if (*nodes).is_multiple_of(4096) {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Dfs::Budget;
                }
            }
        }
        // Propagation to a fixed point: prune infeasible constraints, fix
        // forced variables.
        let mut fixed_here: Vec<usize> = Vec::new();
        loop {
            let mut changed = false;
            for c in &self.constraints {
                let mut lo = 0i32; // value with all free vars at their worst
                let mut hi = 0i32; // value with all free vars at their best
                for &(v, coeff) in &c.terms {
                    match assignment[v] {
                        Some(true) => {
                            lo += coeff;
                            hi += coeff;
                        }
                        Some(false) => {}
                        None => {
                            if coeff > 0 {
                                hi += coeff;
                            } else {
                                lo += coeff;
                            }
                        }
                    }
                }
                if hi < c.bound {
                    // Unreachable bound: undo local fixes and fail.
                    for &v in &fixed_here {
                        assignment[v] = None;
                    }
                    return Dfs::Infeasible;
                }
                if lo >= c.bound {
                    continue; // already satisfied
                }
                // Force any free variable whose wrong polarity would make
                // the bound unreachable.
                for &(v, coeff) in &c.terms {
                    if assignment[v].is_some() {
                        continue;
                    }
                    let without = hi - coeff.abs();
                    if without < c.bound {
                        assignment[v] = Some(coeff > 0);
                        fixed_here.push(v);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Branch.
        match assignment.iter().position(Option::is_none) {
            None => Dfs::Feasible,
            Some(v) => {
                for value in [true, false] {
                    assignment[v] = Some(value);
                    match self.dfs(assignment, nodes, node_limit, deadline) {
                        Dfs::Feasible => return Dfs::Feasible,
                        Dfs::Budget => {
                            // Leave assignment dirty; caller discards it.
                            return Dfs::Budget;
                        }
                        Dfs::Infeasible => {}
                    }
                }
                assignment[v] = None;
                for &v in &fixed_here {
                    assignment[v] = None;
                }
                Dfs::Infeasible
            }
        }
    }
}

enum Dfs {
    Feasible,
    Infeasible,
    Budget,
}

/// Builds the ILP formulation of kernel synthesis by translating the CNF
/// encoding clause-by-clause (`l1 ∨ … ∨ lk` becomes
/// `Σ x_pos − Σ x_neg ≥ 1 − |neg|`), the standard big-M-free reduction for
/// binary variables.
pub fn encode_ilp(machine: &Machine, len: u32, opts: EncodeOptions) -> (IlpProblem, Encoded) {
    let tests = sortsynth_isa::permutations(machine.n());
    let encoded = encode(machine, len, &tests, opts);
    let mut problem = IlpProblem {
        num_vars: encoded.solver.num_vars(),
        constraints: Vec::new(),
    };
    for clause in encoded.solver.clauses_for_export() {
        let mut terms = Vec::with_capacity(clause.len());
        let mut bound = 1i32;
        for lit in clause {
            if lit.is_neg() {
                terms.push((lit.var().index(), -1));
                bound -= 1;
            } else {
                terms.push((lit.var().index(), 1));
            }
        }
        problem.constraints.push(LinearConstraint { terms, bound });
    }
    (problem, encoded)
}

/// CP-ILP (§4.2): synthesis via the branch-and-bound ILP solver.
pub fn ilp_synthesize(
    machine: &Machine,
    len: u32,
    opts: EncodeOptions,
    budget: Budget,
) -> (SynthOutcome, SynthStats) {
    let start = Instant::now();
    let (problem, encoded) = encode_ilp(machine, len, opts);
    let node_limit = budget.conflicts.unwrap_or(u64::MAX);
    let outcome = match problem.solve(node_limit, budget.timeout) {
        IlpResult::Feasible(model) => {
            let prog: Program = encoded
                .instr_vars
                .iter()
                .map(|step| {
                    let a = step
                        .iter()
                        .position(|&v| model[v.index()])
                        .expect("exactly-one instruction per step");
                    encoded.actions[a]
                })
                .collect();
            SynthOutcome::Found(prog)
        }
        IlpResult::Infeasible => SynthOutcome::NoProgram,
        IlpResult::Budget => SynthOutcome::Budget,
    };
    (
        outcome,
        SynthStats {
            elapsed: start.elapsed(),
            iterations: 1,
            tests_used: sortsynth_isa::factorial(machine.n()) as usize,
            conflicts: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn tiny_feasible_ilp() {
        // x0 + x1 >= 1, -x0 >= 0  →  x1 = 1.
        let p = IlpProblem {
            num_vars: 2,
            constraints: vec![
                LinearConstraint {
                    terms: vec![(0, 1), (1, 1)],
                    bound: 1,
                },
                LinearConstraint {
                    terms: vec![(0, -1)],
                    bound: 0,
                },
            ],
        };
        match p.solve(1_000, None) {
            IlpResult::Feasible(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn tiny_infeasible_ilp() {
        // x0 >= 1 and -x0 >= 0 conflict.
        let p = IlpProblem {
            num_vars: 1,
            constraints: vec![
                LinearConstraint {
                    terms: vec![(0, 1)],
                    bound: 1,
                },
                LinearConstraint {
                    terms: vec![(0, -1)],
                    bound: 0,
                },
            ],
        };
        assert_eq!(p.solve(1_000, None), IlpResult::Infeasible);
    }

    #[test]
    fn node_budget_reports_budget() {
        let p = IlpProblem {
            num_vars: 30,
            constraints: (0..30)
                .map(|i| LinearConstraint {
                    terms: vec![(i, 1), ((i + 1) % 30, 1)],
                    bound: 1,
                })
                .collect(),
        };
        assert_eq!(p.solve(1, None), IlpResult::Budget);
    }

    #[test]
    fn ilp_synthesizes_n2_kernel() {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let (outcome, _) = ilp_synthesize(
            &machine,
            4,
            EncodeOptions::default(),
            Budget {
                conflicts: Some(5_000_000),
                timeout: Some(Duration::from_secs(60)),
                ..Budget::default()
            },
        );
        match outcome {
            SynthOutcome::Found(prog) => assert!(machine.is_correct(&prog)),
            // A budget result is acceptable behaviour (the paper's ILP rows
            // all time out) but n = 2 should really finish.
            other => panic!("expected Found for n = 2, got {other:?}"),
        }
    }
}
