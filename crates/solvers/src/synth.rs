//! Solver-based synthesis front-ends: SMT-Perm, SMT-CEGIS, and the CP
//! variants (§4.1, §4.2).

use std::time::{Duration, Instant};

use sortsynth_isa::{Machine, Program, Reg};
use sortsynth_obs::{names, FieldValue, Level};
use sortsynth_sat::{SolveResult, Solver};
use sortsynth_search::SearchBudget;

use crate::encoding::{encode, EncodeOptions};

/// Publishes one solver call's CDCL totals to the process-wide metrics and,
/// when tracing is active, emits a per-iteration `cegis_iteration` event.
/// The SAT core itself stays dependency-free; this front-end is the one
/// place its counters meet the observability layer.
fn report_solver_round(solver: &Solver, iteration: u32, tests: usize, result: SolveResult) {
    let r = sortsynth_obs::registry();
    r.counter(
        names::SAT_CONFLICTS_TOTAL,
        "CDCL conflicts across all solver runs.",
    )
    .add(solver.conflicts());
    r.counter(
        names::SAT_RESTARTS_TOTAL,
        "CDCL restarts across all solver runs.",
    )
    .add(solver.restarts());
    r.counter(
        names::SAT_LEARNED_CLAUSES_TOTAL,
        "Clauses learned across all solver runs.",
    )
    .add(solver.num_learnt() as u64);
    if sortsynth_obs::enabled() {
        sortsynth_obs::trace::event(
            Level::Debug,
            "cegis_iteration",
            &[
                ("iteration", FieldValue::U64(iteration as u64)),
                ("tests", FieldValue::U64(tests as u64)),
                ("conflicts", FieldValue::U64(solver.conflicts())),
                ("restarts", FieldValue::U64(solver.restarts())),
                ("learned", FieldValue::U64(solver.num_learnt() as u64)),
                ("result", FieldValue::Str(format!("{result:?}"))),
            ],
        );
    }
}

/// Resource budget shared by all solver front-ends.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Conflict limit per solver call.
    pub conflicts: Option<u64>,
    /// Wall-clock limit for the whole synthesis run.
    pub timeout: Option<Duration>,
    /// Cooperative budget shared with the rest of the system: its deadline
    /// caps this run like `timeout` does, and its cancellation flags are
    /// polled *inside* the SAT core, so a portfolio race can stop a losing
    /// solver arm mid-solve instead of abandoning the thread.
    pub shared: SearchBudget,
}

impl Budget {
    /// A wall-clock-only budget.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            conflicts: None,
            timeout: Some(timeout),
            shared: SearchBudget::unlimited(),
        }
    }

    /// A budget driven entirely by a shared cooperative [`SearchBudget`].
    pub fn with_shared(shared: SearchBudget) -> Self {
        Budget {
            conflicts: None,
            timeout: None,
            shared,
        }
    }

    /// Remaining wall-clock time under both the local timeout (relative to
    /// `start`) and the shared budget's absolute deadline; `None` when
    /// neither bounds the run.
    fn remaining(&self, start: Instant) -> Option<Duration> {
        let local = self
            .timeout
            .map(|t| (start + t).saturating_duration_since(Instant::now()));
        match (local, self.shared.remaining()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Outcome of a solver-based synthesis attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthOutcome {
    /// A correct program of the requested length.
    Found(Program),
    /// Proven: no program of the requested length exists (under the chosen
    /// symmetry toggles).
    NoProgram,
    /// The budget expired first (the paper's "—" table entries).
    Budget,
}

/// Statistics for one synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SynthStats {
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// CEGIS iterations (1 for one-shot).
    pub iterations: u32,
    /// Test cases in the final encoding.
    pub tests_used: usize,
    /// CDCL conflicts summed over every solver call this run made.
    pub conflicts: u64,
}

/// SMT-Perm (§4.1): a single query with *all* `n!` permutations as test
/// cases. Any model is guaranteed correct.
pub fn smt_perm(
    machine: &Machine,
    len: u32,
    opts: EncodeOptions,
    budget: Budget,
) -> (SynthOutcome, SynthStats) {
    let start = Instant::now();
    let tests = sortsynth_isa::permutations(machine.n());
    if budget.shared.is_exhausted() {
        return (
            SynthOutcome::Budget,
            SynthStats {
                tests_used: tests.len(),
                iterations: 1,
                ..SynthStats::default()
            },
        );
    }
    let mut enc = encode(machine, len, &tests, opts);
    enc.solver.set_stop_flags(budget.shared.stop_flags());
    let result = enc
        .solver
        .solve_budgeted(budget.conflicts, budget.remaining(start));
    report_solver_round(&enc.solver, 1, tests.len(), result);
    let outcome = match result {
        SolveResult::Sat => SynthOutcome::Found(enc.decode()),
        SolveResult::Unsat => SynthOutcome::NoProgram,
        SolveResult::Unknown => SynthOutcome::Budget,
    };
    let stats = SynthStats {
        elapsed: start.elapsed(),
        iterations: 1,
        tests_used: tests.len(),
        conflicts: enc.solver.conflicts(),
    };
    (outcome, stats)
}

/// The CEGIS counterexample domain (§5.2's two SMT-CEGIS rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CegisDomain {
    /// Counterexamples restricted to permutations of `1..=n` (the paper's
    /// faster variant).
    Permutations,
    /// Arbitrary inputs: any tuple over `1..=n`, duplicates allowed.
    Arbitrary,
}

/// SMT-CEGIS (§4.1): synthesize against a growing set of counterexamples.
///
/// Starts from the single reversed input, asks the encoder for a candidate,
/// checks the candidate on the full input domain, and adds the first
/// failing input as a new test case until the candidate verifies.
pub fn smt_cegis(
    machine: &Machine,
    len: u32,
    domain: CegisDomain,
    opts: EncodeOptions,
    budget: Budget,
) -> (SynthOutcome, SynthStats) {
    let start = Instant::now();
    let mut tests: Vec<Vec<u8>> = vec![(1..=machine.n()).rev().collect()];
    let mut iterations = 0u32;
    let mut conflicts = 0u64;
    // Phase saving across solver instances: each iteration re-encodes from
    // scratch, so within-solver phase saving alone forgets everything the
    // previous iteration learned about polarities. Seeding the new solver's
    // instruction-selection phases from the previous candidate model makes
    // the next search start at (a neighbourhood of) the last candidate —
    // solution-guided search, in the phase-saving sense of keeping the last
    // polarity per variable alive across restarts *and* re-encodes.
    let mut prev_model: Option<Vec<bool>> = None;
    let stats = |iterations, tests: usize, conflicts| SynthStats {
        elapsed: start.elapsed(),
        iterations,
        tests_used: tests,
        conflicts,
    };
    loop {
        iterations += 1;
        let remaining = budget.remaining(start);
        if remaining == Some(Duration::ZERO) || budget.shared.is_cancelled() {
            return (
                SynthOutcome::Budget,
                stats(iterations, tests.len(), conflicts),
            );
        }
        let mut enc = encode(machine, len, &tests, opts);
        enc.solver.set_stop_flags(budget.shared.stop_flags());
        if opts.phase_saving {
            if let Some(model) = &prev_model {
                for (var, &value) in enc.instr_vars.iter().flatten().zip(model.iter()) {
                    enc.solver.set_phase(*var, value);
                }
            }
        }
        let result = enc.solver.solve_budgeted(budget.conflicts, remaining);
        conflicts += enc.solver.conflicts();
        report_solver_round(&enc.solver, iterations, tests.len(), result);
        sortsynth_obs::registry()
            .counter(
                names::CEGIS_ITERATIONS_TOTAL,
                "CEGIS refinement iterations across all synthesis calls.",
            )
            .inc();
        match result {
            SolveResult::Unsat => {
                return (
                    SynthOutcome::NoProgram,
                    stats(iterations, tests.len(), conflicts),
                )
            }
            SolveResult::Unknown => {
                return (
                    SynthOutcome::Budget,
                    stats(iterations, tests.len(), conflicts),
                )
            }
            SolveResult::Sat => {
                let candidate = enc.decode();
                prev_model = Some(
                    enc.instr_vars
                        .iter()
                        .flatten()
                        .map(|&v| enc.solver.value(v) == Some(true))
                        .collect(),
                );
                match find_counterexample(machine, &candidate, domain) {
                    None => {
                        return (
                            SynthOutcome::Found(candidate),
                            stats(iterations, tests.len(), conflicts),
                        )
                    }
                    Some(cex) => tests.push(cex),
                }
            }
        }
    }
}

/// The verification oracle: the first input the candidate fails on.
///
/// For [`CegisDomain::Permutations`] the domain is the `n!` permutations;
/// for [`CegisDomain::Arbitrary`] it is all `n^n` tuples over `1..=n`
/// (constant-free kernels cannot distinguish larger domains, §2.3).
pub fn find_counterexample(
    machine: &Machine,
    prog: &Program,
    domain: CegisDomain,
) -> Option<Vec<u8>> {
    match domain {
        CegisDomain::Permutations => machine.counterexamples(prog).into_iter().next(),
        CegisDomain::Arbitrary => {
            let n = machine.n() as usize;
            let mut tuple = vec![1u8; n];
            loop {
                if !sorts_tuple(machine, prog, &tuple) {
                    return Some(tuple);
                }
                // Next tuple in odometer order.
                let mut i = 0;
                loop {
                    if i == n {
                        return None;
                    }
                    if tuple[i] < machine.n() {
                        tuple[i] += 1;
                        break;
                    }
                    tuple[i] = 1;
                    i += 1;
                }
            }
        }
    }
}

/// Whether `prog` sorts the (possibly duplicate-containing) input `tuple`:
/// ascending output that is a permutation of the input multiset.
fn sorts_tuple(machine: &Machine, prog: &Program, tuple: &[u8]) -> bool {
    let out = machine.run(prog, machine.initial_state(tuple));
    let n = machine.n();
    let result: Vec<u8> = (0..n).map(|i| out.reg(Reg::new(i))).collect();
    let mut expected = tuple.to_vec();
    expected.sort_unstable();
    result == expected
}

/// Iterates `len` upward from `min_len` until a program is found; the first
/// hit is length-minimal under the chosen toggles (each shorter length was
/// proven empty).
pub fn synthesize_minimal(
    machine: &Machine,
    min_len: u32,
    max_len: u32,
    opts: EncodeOptions,
    budget: Budget,
) -> (SynthOutcome, SynthStats) {
    let start = Instant::now();
    let mut total_iterations = 0;
    let mut tests_used = 0;
    let mut conflicts = 0u64;
    for len in min_len..=max_len {
        if budget.shared.is_cancelled() {
            break;
        }
        let step_budget = Budget {
            conflicts: budget.conflicts,
            timeout: budget.remaining(start),
            shared: budget.shared.clone(),
        };
        let (outcome, stats) = smt_perm(machine, len, opts, step_budget);
        total_iterations += stats.iterations;
        tests_used = stats.tests_used;
        conflicts += stats.conflicts;
        match outcome {
            SynthOutcome::NoProgram => continue,
            other => {
                return (
                    other,
                    SynthStats {
                        elapsed: start.elapsed(),
                        iterations: total_iterations,
                        tests_used,
                        conflicts,
                    },
                )
            }
        }
    }
    let outcome = if budget.shared.is_cancelled() {
        SynthOutcome::Budget
    } else {
        SynthOutcome::NoProgram
    };
    (
        outcome,
        SynthStats {
            elapsed: start.elapsed(),
            iterations: total_iterations,
            tests_used,
            conflicts,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn m2() -> Machine {
        Machine::new(2, 1, IsaMode::Cmov)
    }

    #[test]
    fn smt_perm_finds_n2_kernel() {
        let (outcome, stats) = smt_perm(&m2(), 4, EncodeOptions::default(), Budget::default());
        match outcome {
            SynthOutcome::Found(prog) => assert!(m2().is_correct(&prog)),
            other => panic!("expected Found, got {other:?}"),
        }
        assert_eq!(stats.tests_used, 2);
    }

    #[test]
    fn smt_cegis_permutation_domain() {
        let (outcome, stats) = smt_cegis(
            &m2(),
            4,
            CegisDomain::Permutations,
            EncodeOptions::default(),
            Budget::default(),
        );
        match outcome {
            SynthOutcome::Found(prog) => assert!(m2().is_correct(&prog)),
            other => panic!("expected Found, got {other:?}"),
        }
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn phase_warm_start_cuts_cegis_conflicts() {
        // Cross-iteration phase seeding reuses the previous model as the
        // branching polarity, so iteration k + 1 starts near the last
        // near-solution instead of from scratch. The CDCL solver is
        // deterministic, so the comparison is exact and stable: on these
        // instances warm-starting cuts conflicts by 4-20x (e.g. 400 -> 94
        // at len 4), and any regression to parity is a plumbing bug (the
        // toggle no longer reaching the solver).
        for len in [4, 5, 6] {
            let run = |phase_saving| {
                let opts = EncodeOptions {
                    phase_saving,
                    ..EncodeOptions::default()
                };
                let (outcome, stats) = smt_cegis(
                    &m2(),
                    len,
                    CegisDomain::Permutations,
                    opts,
                    Budget::default(),
                );
                assert!(
                    matches!(outcome, SynthOutcome::Found(_)),
                    "len {len} phase_saving={phase_saving}: {outcome:?}"
                );
                stats.conflicts
            };
            let cold = run(false);
            let warm = run(true);
            assert!(
                warm < cold,
                "len {len}: phase saving must reduce conflicts ({warm} vs {cold})"
            );
        }
    }

    #[test]
    fn smt_cegis_arbitrary_domain_handles_duplicates() {
        let (outcome, _) = smt_cegis(
            &m2(),
            4,
            CegisDomain::Arbitrary,
            EncodeOptions::default(),
            Budget::default(),
        );
        match outcome {
            SynthOutcome::Found(prog) => {
                // Correct on permutations *and* on the duplicate input.
                assert!(m2().is_correct(&prog));
                assert!(sorts_tuple(&m2(), &prog, &[2, 2]));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn synthesize_minimal_proves_4_is_optimal_for_n2() {
        let (outcome, _) =
            synthesize_minimal(&m2(), 1, 5, EncodeOptions::default(), Budget::default());
        match outcome {
            SynthOutcome::Found(prog) => assert_eq!(prog.len(), 4),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn zero_timeout_reports_budget() {
        let (outcome, _) = smt_perm(
            &m2(),
            4,
            EncodeOptions::default(),
            Budget::with_timeout(Duration::ZERO),
        );
        assert_eq!(outcome, SynthOutcome::Budget);
    }

    #[test]
    fn counterexample_oracle_finds_failures() {
        let machine = m2();
        let empty: Program = vec![];
        assert_eq!(
            find_counterexample(&machine, &empty, CegisDomain::Permutations),
            Some(vec![2, 1])
        );
        let (_, cas) = (
            0,
            machine
                .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
                .unwrap(),
        );
        assert_eq!(
            find_counterexample(&machine, &cas, CegisDomain::Arbitrary),
            None
        );
    }
}
