//! Solver-based synthesis baselines (§4 of the paper): SMT-Perm, SMT-CEGIS,
//! the CP goal formulations and heuristic toggles, and a CP-ILP
//! branch-and-bound — all discharging the same finite-domain encoding
//! through the workspace's CDCL core ([`sortsynth_sat`]).
//!
//! The paper's finding that we reproduce: these classical techniques
//! synthesize the n = 2 kernel instantly and the n = 3 kernel with effort
//! (heavily dependent on goal formulation and symmetry breaking, §5.2's CP
//! table), but none scales to n = 4 — while the learning-free ILP search
//! does not even manage n = 3.
//!
//! # Example
//!
//! ```
//! use sortsynth_isa::{IsaMode, Machine};
//! use sortsynth_solvers::{smt_perm, Budget, EncodeOptions, SynthOutcome};
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let (outcome, _stats) = smt_perm(&machine, 4, EncodeOptions::default(), Budget::default());
//! match outcome {
//!     SynthOutcome::Found(prog) => assert!(machine.is_correct(&prog)),
//!     other => panic!("n = 2 solves instantly, got {other:?}"),
//! }
//! ```

mod encoding;
mod ilp;
mod synth;

pub use encoding::{encode, EncodeOptions, Encoded, Goal};
pub use ilp::{encode_ilp, ilp_synthesize, IlpProblem, IlpResult, LinearConstraint};
pub use synth::{
    find_counterexample, smt_cegis, smt_perm, synthesize_minimal, Budget, CegisDomain,
    SynthOutcome, SynthStats,
};
