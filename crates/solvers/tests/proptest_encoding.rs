//! Property-based tests for the CNF encoding: any model the solver returns
//! must describe a program whose concrete execution matches the encoded
//! semantics, under arbitrary option combinations.

use proptest::prelude::*;
use sortsynth_isa::{IsaMode, Machine, Reg};
use sortsynth_sat::SolveResult;
use sortsynth_solvers::{encode, find_counterexample, CegisDomain, EncodeOptions, Goal};

fn arb_options() -> impl Strategy<Value = EncodeOptions> {
    (
        prop_oneof![
            Just(Goal::Exact),
            Just(Goal::AscendingCounts { include_zero: true }),
            Just(Goal::AscendingCounts {
                include_zero: false
            }),
            Just(Goal::AscendingCountsAndExact),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(goal, no_consec, cmp_sym, only_init)| EncodeOptions {
            goal,
            no_consecutive_cmps: no_consec,
            cmp_symmetry: cmp_sym,
            first_cmd_cmp: false,
            only_read_initialized: only_init,
            phase_saving: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the solver returns at the satisfiable length is a genuinely
    /// correct kernel — the encoding's transition semantics agree with the
    /// interpreter for every option combination.
    #[test]
    fn models_decode_to_correct_kernels(opts in arb_options()) {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = sortsynth_isa::permutations(2);
        let mut enc = encode(&machine, 4, &tests, opts);
        // Length 4 is satisfiable under every toggle combination (the
        // standard CAS has no consecutive cmps and reads scratch only after
        // writing it).
        prop_assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let prog = enc.decode();
        prop_assert_eq!(prog.len(), 4);
        prop_assert!(machine.is_correct(&prog), "{}", machine.format_program(&prog));
    }

    /// Shorter-than-optimal lengths stay unsatisfiable regardless of goal
    /// formulation (goals never make wrong programs acceptable).
    #[test]
    fn length_3_is_unsat_under_every_goal(opts in arb_options()) {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let tests = sortsynth_isa::permutations(2);
        let mut enc = encode(&machine, 3, &tests, opts);
        prop_assert_eq!(enc.solver.solve(), SolveResult::Unsat);
    }

    /// The arbitrary-input counterexample oracle agrees with a direct
    /// multiset check on random programs.
    #[test]
    fn counterexample_oracle_is_sound(
        ops in prop::collection::vec(0usize..64, 0..8),
    ) {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        let actions = machine.all_instrs();
        let prog: Vec<_> = ops.iter().map(|&i| actions[i % actions.len()]).collect();
        match find_counterexample(&machine, &prog, CegisDomain::Arbitrary) {
            None => {
                // No counterexample: the program must sort all tuples.
                for a in 1..=2u8 {
                    for b in 1..=2u8 {
                        let out = machine.run(&prog, machine.initial_state(&[a, b]));
                        let got = [out.reg(Reg::new(0)), out.reg(Reg::new(1))];
                        let mut want = [a, b];
                        want.sort_unstable();
                        prop_assert_eq!(got, want);
                    }
                }
            }
            Some(cex) => {
                // The reported tuple genuinely fails.
                let out = machine.run(&prog, machine.initial_state(&cex));
                let got = [out.reg(Reg::new(0)), out.reg(Reg::new(1))];
                let mut want = [cex[0], cex[1]];
                want.sort_unstable();
                prop_assert_ne!(got, want);
            }
        }
    }
}
