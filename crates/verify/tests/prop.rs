//! Property tests: the analyzer never contradicts ground truth.
//!
//! Four families, both ISA modes, n = 2..4:
//!
//! - certificates imply `Machine::is_correct`, refutations carry an input
//!   the machine oracle confirms failing;
//! - dead-code elimination is semantics-preserving (checked against the
//!   ISA's `equivalent` oracle) and idempotent;
//! - every removability lint (dead write, write-after-write, redundant mov,
//!   unread flags, dead conditional write) points at an instruction whose
//!   deletion leaves an equivalent program;
//! - randomly generated comparator networks round-trip through rendering
//!   and extraction, and are certified exactly when they are correct.

use proptest::prelude::*;
use sortsynth_isa::{equivalent, Instr, IsaMode, Machine, Op, Program, Reg};
use sortsynth_verify::{dce, gate, verify, Comparator, LintKind, Verdict};

fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        2u8..=4,
        1u8..=2,
        prop_oneof![Just(IsaMode::Cmov), Just(IsaMode::MinMax)],
    )
        .prop_map(|(n, s, mode)| Machine::new(n, s, mode))
}

fn arb_program(machine: Machine, max_len: usize) -> impl Strategy<Value = Program> {
    let instrs = machine.all_instrs();
    prop::collection::vec((0..instrs.len()).prop_map(move |i| instrs[i]), 0..max_len)
}

fn machine_and_program(max_len: usize) -> impl Strategy<Value = (Machine, Program)> {
    arb_machine().prop_flat_map(move |m| {
        let mc = m.clone();
        arb_program(mc, max_len).prop_map(move |p| (m.clone(), p))
    })
}

/// A comparator spec: exchanged registers plus block-shape choices
/// (mirrored save side, guard polarity / op order).
type CompSpec = (u8, u8, bool, bool);

fn network_cases() -> impl Strategy<Value = (Machine, Vec<CompSpec>)> {
    arb_machine().prop_flat_map(|m| {
        let n = m.n();
        let comp = (0..n, 0..n, any::<bool>(), any::<bool>())
            .prop_filter("distinct registers", |(u, v, _, _)| u != v);
        (Just(m), prop::collection::vec(comp, 0..7))
    })
}

/// Renders comparator specs as the ISA's compare-and-exchange blocks,
/// exercising every recognized block shape.
fn render_network(machine: &Machine, specs: &[CompSpec]) -> (Program, Vec<Comparator>) {
    let t = Reg::new(machine.n());
    let mut prog = Vec::new();
    let mut comps = Vec::new();
    for &(u, v, mirrored, alt) in specs {
        let (u, v) = (Reg::new(u), Reg::new(v));
        match machine.mode() {
            IsaMode::Cmov => {
                // `alt` picks the guard polarity, `mirrored` which side the
                // scratch copy saves.
                let (cmp, k) = if alt {
                    (Instr::new(Op::Cmp, v, u), Op::Cmovl)
                } else {
                    (Instr::new(Op::Cmp, u, v), Op::Cmovg)
                };
                if mirrored {
                    prog.extend([
                        Instr::new(Op::Mov, t, v),
                        cmp,
                        Instr::new(k, v, u),
                        Instr::new(k, u, t),
                    ]);
                } else {
                    prog.extend([
                        Instr::new(Op::Mov, t, u),
                        cmp,
                        Instr::new(k, u, v),
                        Instr::new(k, v, t),
                    ]);
                }
            }
            IsaMode::MinMax => {
                if mirrored {
                    prog.extend([
                        Instr::new(Op::Mov, t, v),
                        Instr::new(Op::Max, v, u),
                        Instr::new(Op::Min, u, t),
                    ]);
                } else {
                    prog.extend([
                        Instr::new(Op::Mov, t, u),
                        Instr::new(Op::Min, u, v),
                        Instr::new(Op::Max, v, t),
                    ]);
                }
            }
        }
        comps.push(Comparator {
            min: u.index(),
            max: v.index(),
        });
    }
    (prog, comps)
}

proptest! {
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn certificates_and_refutations_match_ground_truth(
        (machine, prog) in machine_and_program(24),
    ) {
        let report = verify(&machine, &prog);
        if report.verdict.certified() {
            prop_assert!(
                machine.is_correct(&prog),
                "certified an incorrect program: {:?}",
                report.verdict
            );
        }
        if let Verdict::RefutedZeroOne { witness } = &report.verdict {
            let out = machine.run(&prog, machine.initial_state(witness));
            let result: Vec<u8> = (0..machine.n()).map(|i| out.reg(Reg::new(i))).collect();
            let mut expected = witness.clone();
            expected.sort_unstable();
            prop_assert_ne!(result, expected);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn dce_is_semantics_preserving((machine, prog) in machine_and_program(24)) {
        let slim = dce(&machine, &prog);
        prop_assert!(slim.len() <= prog.len());
        prop_assert!(equivalent(&machine, &prog, &slim));
        prop_assert_eq!(dce(&machine, &slim), slim.clone());
    }

    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn removability_lints_point_at_removable_instructions(
        (machine, prog) in machine_and_program(20),
    ) {
        let report = verify(&machine, &prog);
        for d in &report.diagnostics {
            let removable = matches!(
                d.kind,
                LintKind::DeadWrite
                    | LintKind::WriteAfterWrite
                    | LintKind::RedundantMov
                    | LintKind::UnreadFlags
                    | LintKind::DeadConditionalWrite
            );
            if let (true, Some(i)) = (removable, d.index) {
                let mut without = prog.clone();
                without.remove(i);
                prop_assert!(
                    equivalent(&machine, &prog, &without),
                    "removing the target of `{d}` changed program semantics"
                );
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn networks_round_trip((machine, specs) in network_cases()) {
        let (prog, comps) = render_network(&machine, &specs);
        let report = verify(&machine, &prog);
        prop_assert_eq!(report.network.clone(), Some(comps));
        if machine.is_correct(&prog) {
            prop_assert_eq!(report.verdict.clone(), Verdict::CertifiedNetwork);
            prop_assert!(gate(&machine, &prog).is_ok());
        } else {
            prop_assert!(report.verdict.refuted(), "verdict {:?}", report.verdict);
            prop_assert!(gate(&machine, &prog).is_err());
        }
        // Well-formed networks never draw error-severity lints.
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }
}

/// Minimal deterministic RNG (xorshift64*) so the 1k-program sweeps below
/// are reproducible without any external dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, k: usize) -> usize {
        (self.next() % k as u64) as usize
    }
}

/// Every input vector over `1..=n` (ties included), as full register files
/// with zeroed scratch.
fn all_inputs_with_ties(machine: &Machine) -> Vec<Vec<u8>> {
    let n = machine.n() as usize;
    let mut out = Vec::with_capacity(n.pow(n as u32));
    let mut vals = vec![1u8; n];
    loop {
        let mut file = vals.clone();
        file.resize(machine.num_regs() as usize, 0);
        out.push(file);
        let mut i = 0;
        loop {
            if i == n {
                return out;
            }
            if vals[i] < machine.n() {
                vals[i] += 1;
                break;
            }
            vals[i] = 1;
            i += 1;
        }
    }
}

/// Whether `prog` sorts `input` (the first `n` registers), ties and all.
fn sorts_input(machine: &Machine, prog: &[Instr], input: &[u8]) -> bool {
    let out = machine.run(prog, sortsynth_isa::MachineState::from_values(input));
    let result: Vec<u8> = (0..machine.n()).map(|i| out.reg(Reg::new(i))).collect();
    let mut expected: Vec<u8> = input[..machine.n() as usize].to_vec();
    expected.sort_unstable();
    result == expected
}

/// Satellite acceptance sweep: on 1000 random programs per ISA (n = 2..4,
/// lengths 0..24, with a ~25% admixture of comparator-network programs so
/// certifiable kernels actually occur), the symbolic verdict agrees with
/// the exhaustive oracle:
///
/// - the analysis always decides at these sizes (no bailouts);
/// - `Certified` iff the n!-permutation oracle finds no counterexample;
/// - a `Refuted` witness is confirmed failing by actually running it;
/// - a program correct on *every* input including ties is perm-correct a
///   fortiori, so it must be certified (the converse is deliberately not
///   asserted for cmp/cmov — tie-unsafe kernels are perm-certified by
///   design);
/// - for min/max kernels, whose selections are monotone, certification
///   conversely extends to every tied input (the 0-1 principle argument).
#[test]
#[cfg_attr(
    miri,
    ignore = "1k-program differential sweep is far too slow under miri"
)]
fn symbolic_verdict_agrees_with_exhaustive_oracle_on_random_programs() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let mut rng = XorShift(0x5EED_0000 + mode as u64);
        let mut certified = 0u32;
        for round in 0..1000 {
            let n = 2 + (round % 3) as u8;
            let machine = Machine::new(n, 1, mode);
            let prog = if rng.below(4) == 0 {
                let specs: Vec<CompSpec> = (0..rng.below(5))
                    .map(|_| {
                        let u = rng.below(n as usize) as u8;
                        let mut v = rng.below(n as usize) as u8;
                        if u == v {
                            v = (v + 1) % n;
                        }
                        (u, v, rng.next() & 1 == 0, rng.next() & 1 == 0)
                    })
                    .collect();
                render_network(&machine, &specs).0
            } else {
                let instrs = machine.all_instrs();
                (0..rng.below(24))
                    .map(|_| instrs[rng.below(instrs.len())])
                    .collect()
            };

            let verdict = sortsynth_verify::valueflow::analyze(&machine, &prog);
            let counterexamples = machine.counterexamples(&prog);
            match &verdict {
                sortsynth_verify::Analysis::Certified(cert) => {
                    certified += 1;
                    assert!(
                        counterexamples.is_empty(),
                        "certified but oracle refutes: {}",
                        machine.format_program(&prog)
                    );
                    assert!(cert.classes >= 1 && cert.blocks == 1);
                    if mode == IsaMode::MinMax {
                        for input in all_inputs_with_ties(&machine) {
                            assert!(
                                sorts_input(&machine, &prog, &input),
                                "min/max certificate must extend to ties, failed {input:?}: {}",
                                machine.format_program(&prog)
                            );
                        }
                    }
                }
                sortsynth_verify::Analysis::Refuted { witness, .. } => {
                    assert!(
                        !counterexamples.is_empty(),
                        "refuted but oracle accepts: {}",
                        machine.format_program(&prog)
                    );
                    let mut file = witness.clone();
                    file.resize(machine.num_regs() as usize, 0);
                    assert!(
                        !sorts_input(&machine, &prog, &file),
                        "refutation witness {witness:?} actually sorts: {}",
                        machine.format_program(&prog)
                    );
                }
                sortsynth_verify::Analysis::Bailout { .. } => {
                    panic!(
                        "analysis must decide at n <= 4: {}",
                        machine.format_program(&prog)
                    );
                }
            }
            // Tie-correct ⟹ perm-correct ⟹ certified, for either ISA.
            if !verdict.certified() && prog.len() <= 12 {
                let tie_correct = all_inputs_with_ties(&machine)
                    .iter()
                    .all(|input| sorts_input(&machine, &prog, input));
                assert!(
                    !tie_correct,
                    "sorts every tied input yet not certified: {}",
                    machine.format_program(&prog)
                );
            }
        }
        assert!(
            certified >= 20,
            "sweep must exercise certifiable programs, got {certified} for {mode:?}"
        );
    }
}

proptest! {
    /// Composition agrees with the monolithic analysis: concatenating two
    /// comparator blocks and stitching their per-block certificates accepts
    /// exactly when the whole-program symbolic walk (and the ground-truth
    /// oracle) accepts.
    #[test]
    #[cfg_attr(miri, ignore = "differential composition sweep is too slow under miri")]
    fn composition_agrees_with_monolithic_on_concatenated_pairs(
        (machine, specs) in arb_machine().prop_flat_map(|m| {
            let n = m.n();
            let comp = (0..n, 0..n, any::<bool>(), any::<bool>())
                .prop_filter("distinct registers", |(u, v, _, _)| u != v);
            (Just(m), prop::collection::vec(comp, 2..=2))
        })
    ) {
        use sortsynth_verify::{valueflow, Analysis, BlockSpec, StitchError};

        let (first, _) = render_network(&machine, &specs[..1]);
        let (prog, _) = render_network(&machine, &specs);
        let blocks: Vec<BlockSpec> = [(0usize, first.len(), specs[0]), (first.len(), prog.len(), specs[1])]
            .iter()
            .map(|&(start, end, (u, v, _, _))| BlockSpec {
                start,
                end,
                sorts: vec![Reg::new(u), Reg::new(v)],
            })
            .collect();

        let stitched = valueflow::verify_stitched(&machine, &prog, &blocks);
        let monolithic = valueflow::analyze(&machine, &prog);
        match stitched {
            Ok(cert) => {
                prop_assert_eq!(cert.blocks, 2);
                prop_assert!(monolithic.certified(), "stitched Ok but monolithic {:?}", monolithic);
                prop_assert!(machine.is_correct(&prog));
            }
            Err(StitchError::Refuted { witness }) => {
                prop_assert!(!monolithic.certified(), "stitched refuted but monolithic certified");
                prop_assert!(!machine.is_correct(&prog));
                let mut file = witness.clone();
                file.resize(machine.num_regs() as usize, 0);
                prop_assert!(
                    !sorts_input(&machine, &prog, &file),
                    "stitch witness {:?} actually sorts", witness
                );
            }
            Err(e) => {
                // Comparator blocks are well-formed and individually
                // certifiable; the stitcher must never fail structurally.
                prop_assert!(matches!(e, StitchError::Refuted { .. }), "unexpected {:?}", e);
            }
        }
        // And the monolithic verdict itself matches ground truth.
        prop_assert_eq!(
            matches!(monolithic, Analysis::Certified(_)),
            machine.is_correct(&prog)
        );
    }
}

/// The cache gate must never reject a correct kernel. Exhaustive evidence
/// at n = 2: every permutation-correct program over the full instruction
/// alphabet (length <= 3) passes the 0-1 gate.
#[test]
#[cfg_attr(miri, ignore = "exhaustive alphabet sweep is too slow under miri")]
fn gate_admits_every_correct_program_exhaustively_n2() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(2, 1, mode);
        let actions = machine.all_instrs();
        let k = actions.len();
        for len in 0..=3u32 {
            for idx in 0..k.pow(len) {
                let mut prog = Vec::with_capacity(len as usize);
                let mut x = idx;
                for _ in 0..len {
                    prog.push(actions[x % k]);
                    x /= k;
                }
                if machine.is_correct(&prog) {
                    assert_eq!(
                        gate(&machine, &prog),
                        Ok(()),
                        "gate rejected a correct kernel: {}",
                        machine.format_program(&prog)
                    );
                }
            }
        }
    }
}
