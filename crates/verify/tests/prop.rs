//! Property tests: the analyzer never contradicts ground truth.
//!
//! Four families, both ISA modes, n = 2..4:
//!
//! - certificates imply `Machine::is_correct`, refutations carry an input
//!   the machine oracle confirms failing;
//! - dead-code elimination is semantics-preserving (checked against the
//!   ISA's `equivalent` oracle) and idempotent;
//! - every removability lint (dead write, write-after-write, redundant mov,
//!   unread flags, dead conditional write) points at an instruction whose
//!   deletion leaves an equivalent program;
//! - randomly generated comparator networks round-trip through rendering
//!   and extraction, and are certified exactly when they are correct.

use proptest::prelude::*;
use sortsynth_isa::{equivalent, Instr, IsaMode, Machine, Op, Program, Reg};
use sortsynth_verify::{dce, gate, verify, Comparator, LintKind, Verdict};

fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        2u8..=4,
        1u8..=2,
        prop_oneof![Just(IsaMode::Cmov), Just(IsaMode::MinMax)],
    )
        .prop_map(|(n, s, mode)| Machine::new(n, s, mode))
}

fn arb_program(machine: Machine, max_len: usize) -> impl Strategy<Value = Program> {
    let instrs = machine.all_instrs();
    prop::collection::vec((0..instrs.len()).prop_map(move |i| instrs[i]), 0..max_len)
}

fn machine_and_program(max_len: usize) -> impl Strategy<Value = (Machine, Program)> {
    arb_machine().prop_flat_map(move |m| {
        let mc = m.clone();
        arb_program(mc, max_len).prop_map(move |p| (m.clone(), p))
    })
}

/// A comparator spec: exchanged registers plus block-shape choices
/// (mirrored save side, guard polarity / op order).
type CompSpec = (u8, u8, bool, bool);

fn network_cases() -> impl Strategy<Value = (Machine, Vec<CompSpec>)> {
    arb_machine().prop_flat_map(|m| {
        let n = m.n();
        let comp = (0..n, 0..n, any::<bool>(), any::<bool>())
            .prop_filter("distinct registers", |(u, v, _, _)| u != v);
        (Just(m), prop::collection::vec(comp, 0..7))
    })
}

/// Renders comparator specs as the ISA's compare-and-exchange blocks,
/// exercising every recognized block shape.
fn render_network(machine: &Machine, specs: &[CompSpec]) -> (Program, Vec<Comparator>) {
    let t = Reg::new(machine.n());
    let mut prog = Vec::new();
    let mut comps = Vec::new();
    for &(u, v, mirrored, alt) in specs {
        let (u, v) = (Reg::new(u), Reg::new(v));
        match machine.mode() {
            IsaMode::Cmov => {
                // `alt` picks the guard polarity, `mirrored` which side the
                // scratch copy saves.
                let (cmp, k) = if alt {
                    (Instr::new(Op::Cmp, v, u), Op::Cmovl)
                } else {
                    (Instr::new(Op::Cmp, u, v), Op::Cmovg)
                };
                if mirrored {
                    prog.extend([
                        Instr::new(Op::Mov, t, v),
                        cmp,
                        Instr::new(k, v, u),
                        Instr::new(k, u, t),
                    ]);
                } else {
                    prog.extend([
                        Instr::new(Op::Mov, t, u),
                        cmp,
                        Instr::new(k, u, v),
                        Instr::new(k, v, t),
                    ]);
                }
            }
            IsaMode::MinMax => {
                if mirrored {
                    prog.extend([
                        Instr::new(Op::Mov, t, v),
                        Instr::new(Op::Max, v, u),
                        Instr::new(Op::Min, u, t),
                    ]);
                } else {
                    prog.extend([
                        Instr::new(Op::Mov, t, u),
                        Instr::new(Op::Min, u, v),
                        Instr::new(Op::Max, v, t),
                    ]);
                }
            }
        }
        comps.push(Comparator {
            min: u.index(),
            max: v.index(),
        });
    }
    (prog, comps)
}

proptest! {
    #[test]
    fn certificates_and_refutations_match_ground_truth(
        (machine, prog) in machine_and_program(24),
    ) {
        let report = verify(&machine, &prog);
        if report.verdict.certified() {
            prop_assert!(
                machine.is_correct(&prog),
                "certified an incorrect program: {:?}",
                report.verdict
            );
        }
        if let Verdict::RefutedZeroOne { witness } = &report.verdict {
            let out = machine.run(&prog, machine.initial_state(witness));
            let result: Vec<u8> = (0..machine.n()).map(|i| out.reg(Reg::new(i))).collect();
            let mut expected = witness.clone();
            expected.sort_unstable();
            prop_assert_ne!(result, expected);
        }
    }

    #[test]
    fn dce_is_semantics_preserving((machine, prog) in machine_and_program(24)) {
        let slim = dce(&machine, &prog);
        prop_assert!(slim.len() <= prog.len());
        prop_assert!(equivalent(&machine, &prog, &slim));
        prop_assert_eq!(dce(&machine, &slim), slim.clone());
    }

    #[test]
    fn removability_lints_point_at_removable_instructions(
        (machine, prog) in machine_and_program(20),
    ) {
        let report = verify(&machine, &prog);
        for d in &report.diagnostics {
            let removable = matches!(
                d.kind,
                LintKind::DeadWrite
                    | LintKind::WriteAfterWrite
                    | LintKind::RedundantMov
                    | LintKind::UnreadFlags
                    | LintKind::DeadConditionalWrite
            );
            if let (true, Some(i)) = (removable, d.index) {
                let mut without = prog.clone();
                without.remove(i);
                prop_assert!(
                    equivalent(&machine, &prog, &without),
                    "removing the target of `{d}` changed program semantics"
                );
            }
        }
    }

    #[test]
    fn networks_round_trip((machine, specs) in network_cases()) {
        let (prog, comps) = render_network(&machine, &specs);
        let report = verify(&machine, &prog);
        prop_assert_eq!(report.network.clone(), Some(comps));
        if machine.is_correct(&prog) {
            prop_assert_eq!(report.verdict.clone(), Verdict::CertifiedNetwork);
            prop_assert!(gate(&machine, &prog).is_ok());
        } else {
            prop_assert!(report.verdict.refuted(), "verdict {:?}", report.verdict);
            prop_assert!(gate(&machine, &prog).is_err());
        }
        // Well-formed networks never draw error-severity lints.
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }
}

/// The cache gate must never reject a correct kernel. Exhaustive evidence
/// at n = 2: every permutation-correct program over the full instruction
/// alphabet (length <= 3) passes the 0-1 gate.
#[test]
fn gate_admits_every_correct_program_exhaustively_n2() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(2, 1, mode);
        let actions = machine.all_instrs();
        let k = actions.len();
        for len in 0..=3u32 {
            for idx in 0..k.pow(len) {
                let mut prog = Vec::with_capacity(len as usize);
                let mut x = idx;
                for _ in 0..len {
                    prog.push(actions[x % k]);
                    x /= k;
                }
                if machine.is_correct(&prog) {
                    assert_eq!(
                        gate(&machine, &prog),
                        Ok(()),
                        "gate rejected a correct kernel: {}",
                        machine.format_program(&prog)
                    );
                }
            }
        }
    }
}
