//! The flag-taint domain for cmp/cmov kernels.
//!
//! Flags on this machine are persistent state: a `cmp` starts a *flag epoch*
//! and every later `cmovl`/`cmovg` reads whatever epoch happens to be
//! current. The §2.3 counterexample exploits exactly this — delete one `cmp`
//! and the following conditional block silently consumes the previous
//! epoch's flags while still passing every 0-1 test.
//!
//! The domain tracks, per epoch: which registers the guard actually compared,
//! whether a `mov` has since overwritten one of them (a *stale* guard), and
//! the set of conditional writes whose value has not been observed yet. Two
//! same-guard conditional writes to the same destination with no intervening
//! read make the first one dead — under the guard the second overwrites it,
//! and against the guard neither fires. That structural signature is
//! precisely what truncating the §2.3 kernel produces, so the bug class is
//! caught statically, with no permutation running.

use sortsynth_isa::{Instr, Machine, Op, Reg};

use crate::absint::{interpret, AbstractDomain};
use crate::{Diagnostic, LintKind};

/// A conditional write whose value has not been read yet.
#[derive(Debug, Clone, Copy)]
struct Pending {
    dst: Reg,
    guard: Op,
    index: usize,
}

/// One flag epoch: the live `cmp` and everything that happened under it.
#[derive(Debug, Clone)]
struct Epoch {
    cmp_index: usize,
    a: Reg,
    b: Reg,
    /// A compared register unconditionally overwritten since the `cmp`
    /// (register, overwriting index) — makes later guard reads suspicious.
    clobbered: Option<(Reg, usize)>,
    pending: Vec<Pending>,
}

/// Abstract state: the current epoch (none before the first `cmp`) plus the
/// diagnostics accumulated so far.
#[derive(Debug, Clone, Default)]
pub struct FlagState {
    epoch: Option<Epoch>,
    diagnostics: Vec<Diagnostic>,
}

impl FlagState {
    fn observe(&mut self, reg: Reg) {
        if let Some(epoch) = &mut self.epoch {
            epoch.pending.retain(|p| p.dst != reg);
        }
    }

    fn drop_pending(&mut self, reg: Reg) {
        if let Some(epoch) = &mut self.epoch {
            epoch.pending.retain(|p| p.dst != reg);
        }
    }
}

/// The flag-taint abstract domain. Only meaningful for the cmov ISA; on
/// min/max programs every transfer is a no-op that observes operands.
pub struct FlagTaintDomain;

impl AbstractDomain for FlagTaintDomain {
    type State = FlagState;

    fn entry(&self, _machine: &Machine) -> FlagState {
        // Flags are unset in the initial machine state: no epoch yet.
        FlagState::default()
    }

    fn transfer(&self, machine: &Machine, state: &mut FlagState, instr: Instr, index: usize) {
        match instr.op {
            Op::Mov => {
                state.observe(instr.src);
                state.drop_pending(instr.dst);
                if let Some(epoch) = &mut state.epoch {
                    if instr.dst == epoch.a || instr.dst == epoch.b {
                        epoch.clobbered = Some((instr.dst, index));
                    }
                }
            }
            Op::Cmp => {
                state.observe(instr.dst);
                state.observe(instr.src);
                // A new epoch; surviving pending writes are conservatively
                // assumed observable later.
                state.epoch = Some(Epoch {
                    cmp_index: index,
                    a: instr.dst,
                    b: instr.src,
                    clobbered: None,
                    pending: Vec::new(),
                });
            }
            Op::Cmovl | Op::Cmovg => {
                let Some(epoch) = &mut state.epoch else {
                    state.diagnostics.push(Diagnostic::at(
                        LintKind::CmovWithoutCmp,
                        index,
                        format!(
                            "{} at {index} reads a flag but no cmp has executed",
                            instr.op
                        ),
                    ));
                    return;
                };
                if let Some((reg, mov_index)) = epoch.clobbered.take() {
                    let cmp_index = epoch.cmp_index;
                    state.diagnostics.push(Diagnostic::at(
                        LintKind::StaleFlagRead,
                        index,
                        format!(
                            "{} at {index} reads flags of cmp at {cmp_index}, but {} was \
                             overwritten by the mov at {mov_index}",
                            instr.op,
                            machine.reg_name(reg),
                        ),
                    ));
                }
                state.observe(instr.src);
                let epoch = state.epoch.as_mut().expect("epoch checked above");
                match epoch.pending.iter().position(|p| p.dst == instr.dst) {
                    Some(pos) if epoch.pending[pos].guard == instr.op => {
                        // Same destination, same guard, value never read:
                        // the earlier write can be deleted.
                        let prev = epoch.pending[pos].index;
                        state.diagnostics.push(Diagnostic::at(
                            LintKind::DeadConditionalWrite,
                            prev,
                            format!(
                                "conditional write to {} at {prev} is overwritten by the {} at \
                                 {index} under the same guard with no intervening read",
                                machine.reg_name(instr.dst),
                                instr.op,
                            ),
                        ));
                        epoch.pending[pos] = Pending {
                            dst: instr.dst,
                            guard: instr.op,
                            index,
                        };
                    }
                    Some(pos) => {
                        // Opposite guard: the old value survives whenever
                        // this cmov does not fire, so it counts as observed.
                        epoch.pending.remove(pos);
                        epoch.pending.push(Pending {
                            dst: instr.dst,
                            guard: instr.op,
                            index,
                        });
                    }
                    None => epoch.pending.push(Pending {
                        dst: instr.dst,
                        guard: instr.op,
                        index,
                    }),
                }
            }
            Op::Min | Op::Max => {
                state.observe(instr.src);
                state.observe(instr.dst);
                state.drop_pending(instr.dst);
            }
        }
    }
}

/// Runs the flag-taint domain and returns its diagnostics. Min/max programs
/// have no flags, so the result is empty by construction for that ISA.
pub fn flag_lints(machine: &Machine, prog: &[Instr]) -> Vec<Diagnostic> {
    interpret(&FlagTaintDomain, machine, prog).diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn m3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    #[test]
    fn section_2_3_stale_kernel_is_flagged_statically() {
        // The exact program from equiv.rs: passes all 0-1 inputs, fails on
        // [1, 3, 2]. Instruction 7's conditional write dies under the same
        // gt guard at instruction 8 — the static signature of the deleted
        // cmp.
        let m = m3();
        let stale = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        let diags = flag_lints(&m, &stale);
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::DeadConditionalWrite)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].index, Some(7));
    }

    #[test]
    fn the_correct_kernel_is_clean() {
        let m = m3();
        let full = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert!(m.is_correct(&full));
        assert!(flag_lints(&m, &full).is_empty());
    }

    #[test]
    fn cmov_before_any_cmp_is_an_error() {
        let m = m3();
        let prog = m.parse_program("cmovg r1 r2; cmp r1 r2").unwrap();
        let diags = flag_lints(&m, &prog);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, LintKind::CmovWithoutCmp);
        assert_eq!(diags[0].index, Some(0));
    }

    #[test]
    fn mov_clobbering_a_compared_register_taints_later_reads() {
        let m = m3();
        let prog = m
            .parse_program("cmp r1 r2; mov r1 r3; cmovg r1 r2")
            .unwrap();
        let diags = flag_lints(&m, &prog);
        assert!(
            diags.iter().any(|d| d.kind == LintKind::StaleFlagRead),
            "{diags:?}"
        );
    }

    #[test]
    fn opposite_guards_are_not_dead() {
        // cmovl then cmovg on the same destination: on equal inputs neither
        // fires, otherwise exactly one does — the first write is observable.
        let m = m3();
        let prog = m
            .parse_program("cmp r1 r2; cmovl r3 r1; cmovg r3 r2")
            .unwrap();
        assert!(flag_lints(&m, &prog).is_empty());
    }

    #[test]
    fn standard_cas_blocks_are_clean() {
        let m = m3();
        let network = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r2; cmp r2 r3; cmovg r2 r3; cmovg r3 s1; \
                 mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1",
            )
            .unwrap();
        assert!(flag_lints(&m, &network).is_empty());
    }
}
