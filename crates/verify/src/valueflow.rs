//! Symbolic value-flow analysis: exact permutation-correctness certificates.
//!
//! The 0-1 pipeline in [`crate::zero_one`] is inconclusive on the
//! `tie-unsafe` class (§2.3): a cmp/cmov kernel can sort every duplicate-free
//! permutation yet fail tied 0-1 vectors, and a clean 0-1 run over a cmp/cmov
//! kernel proves nothing. Today's gate falls back to the `n!` permutation
//! oracle for both cases. This module closes the gap statically.
//!
//! # The domain
//!
//! Run the program forward over *symbolic* inputs `v_0 .. v_{n-1}` (the
//! initial contents of the value registers) plus the distinguished constant
//! `Zero` (initial scratch). On the paper's input domain — permutations of
//! `1..=n` — the symbolic values are pairwise distinct and all exceed `Zero`,
//! so the only information a comparison instruction can extract is an
//! *ordering fact* `t_a < t_b`. The abstract state of one execution path is
//! therefore
//!
//! - a map from registers to selection terms (which symbolic input each
//!   register currently holds), packed one nibble per register exactly like
//!   [`sortsynth_isa::MachineState`],
//! - the concrete flag condition of the last `cmp` on this path, and
//! - a **guard**: the strict partial order over terms accumulated so far,
//!   kept transitively closed as a 16×16 bit-matrix.
//!
//! `cmp`/`min`/`max` refine the guard: when the guard already decides the
//! operand order the transfer is deterministic; otherwise the path *splits*
//! into the `<` and `>` worlds (operands holding distinct symbolic values
//! can never be equal, so there is no third world). `cmov` never splits —
//! the flag condition is concrete on each path. Every concrete permutation
//! input follows exactly one path, so the leaves partition the input space
//! into *order classes*.
//!
//! # The decision procedure
//!
//! At a leaf, the output is sorted for **every** input in the class iff each
//! value register holds a symbolic input (not `Zero`), and the guard implies
//! `out_0 < out_1 < … < out_{n-1}`. The chain forces the outputs to be `n`
//! pairwise-distinct terms drawn from `n` inputs, i.e. a permutation of the
//! inputs in ascending guard order — exactly "position `k` holds the `k`-th
//! order statistic". If every leaf passes, the program sorts every
//! permutation: an exact [`PermCertificate`], no enumeration of inputs. If a
//! leaf fails, any linear extension of its (possibly augmented) guard yields
//! a concrete failing permutation — an exact refutation witness.
//!
//! For a *correct* kernel the class tree has exactly `n!` leaves (each leaf
//! applies one fixed rearrangement, and correctness forces its guard to
//! totally order the inputs), so the asymptotics match the oracle — but each
//! class shares its prefix with its neighbours and the walk is
//! allocation-free, which is what the `verify_cost` bench measures.
//!
//! # Composition
//!
//! Certificates compose: a contiguous block that (a) only touches a set of
//! value registers plus scratch, (b) never reads scratch or flags it did not
//! itself initialise, and (c) is perm-certified as a standalone kernel over
//! its touched registers, acts on *every* input as "sort these positions"
//! (comparison programs are order-isomorphism invariant). A program tiled by
//! such blocks is a composition of subset-sort operators — monotone, so the
//! 0-1 principle applies and [`verify_stitched`] decides it with `2^n` model
//! evaluations instead of `n!` executions: linear in program length, never
//! enumerating the composed machine's permutations.

use sortsynth_isa::{Instr, IsaMode, Machine, Op, Reg};

/// Term id held by a register nibble: `0..n` are the symbolic inputs
/// `v_0..v_{n-1}`; [`ZERO`] is the initial scratch constant.
const ZERO: u8 = 15;

/// Per-register term nibbles, same layout as the packed machine state.
const NIBBLE: u64 = 0xF;

/// Flag condition of one path: no `cmp` yet (or compared-equal, which the
/// term domain rules out for distinct terms), or the concrete outcome of the
/// last `cmp`.
const FLAG_NONE: u8 = 0;
const FLAG_LT: u8 = 1;
const FLAG_GT: u8 = 2;

/// A strict partial order over the 16 term ids, transitively closed.
/// `rows[a]` bit `b` set means `t_a < t_b`.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Guard {
    rows: [u16; 16],
}

impl Guard {
    /// The base facts for an `n`-input machine: `Zero` is below every
    /// symbolic input (scratch starts at 0, inputs are `1..=n`).
    fn base(n: u8) -> Self {
        let mut rows = [0u16; 16];
        rows[ZERO as usize] = (1u16 << n) - 1;
        Guard { rows }
    }

    /// Whether `t_a < t_b` is implied.
    #[inline]
    fn lt(&self, a: u8, b: u8) -> bool {
        self.rows[a as usize] & (1 << b) != 0
    }

    /// Adds the fact `t_a < t_b`, maintaining transitive closure. The caller
    /// guarantees consistency (`b < a` must not already hold).
    fn add(&mut self, a: u8, b: u8) {
        debug_assert!(!self.lt(b, a), "inconsistent guard fact");
        let below_b = self.rows[b as usize] | (1 << b);
        self.rows[a as usize] |= below_b;
        for row in &mut self.rows {
            if *row & (1 << a) != 0 {
                *row |= below_b;
            }
        }
    }
}

/// One execution path: term assignment, flag condition, guard, and the
/// instruction index to resume from. 40 bytes, no heap.
#[derive(Clone, Copy)]
struct Path {
    regs: u64,
    flags: u8,
    guard: Guard,
    pc: u32,
}

#[inline]
fn term(regs: u64, reg: Reg) -> u8 {
    ((regs >> (4 * reg.index())) & NIBBLE) as u8
}

#[inline]
fn set_term(regs: &mut u64, reg: Reg, t: u8) {
    let shift = 4 * reg.index();
    *regs = (*regs & !(NIBBLE << shift)) | ((t as u64) << shift);
}

/// Resource limits for the class-tree walk.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum completed order classes before bailing out. The tree of a
    /// correct kernel has exactly `n!` leaves, so the default covers `n ≤ 8`
    /// directly.
    pub max_classes: u64,
    /// Maximum symbolic instruction evaluations before bailing out.
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_classes: 1 << 16,
            max_steps: 1 << 24,
        }
    }
}

/// An exact static proof that the program sorts every permutation of
/// `1..=n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermCertificate {
    /// Order classes discharged (`n!` for a monolithic proof of a correct
    /// kernel; the 0-1 model evaluations for a composed proof).
    pub classes: u64,
    /// Symbolic instruction evaluations performed.
    pub steps: u64,
    /// Block summaries composed (`1` for a monolithic proof).
    pub blocks: u64,
}

/// Outcome of the symbolic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Analysis {
    /// Every order class reaches a sorted final state: the program provably
    /// sorts every permutation of `1..=n`.
    Certified(PermCertificate),
    /// A concrete permutation of `1..=n` the program fails to sort.
    Refuted {
        /// The failing input.
        witness: Vec<u8>,
        /// Classes completed before the refuting one was found.
        classes: u64,
    },
    /// Resource limits were hit before the class tree was exhausted;
    /// correctness is undetermined.
    Bailout {
        /// Classes completed before bailing out.
        classes: u64,
    },
}

impl Analysis {
    /// Whether the analysis proved perm-correctness.
    pub fn certified(&self) -> bool {
        matches!(self, Analysis::Certified(_))
    }
}

/// Full analysis result: the verdict plus per-instruction effect
/// information for the `redundant-selection` lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueFlow {
    /// The sortedness verdict.
    pub analysis: Analysis,
    /// Indices of selection instructions (`cmovl`/`cmovg`/`min`/`max`) that
    /// never changed the abstract state on any path. Only populated when the
    /// walk completed the whole tree (i.e. [`Analysis::Certified`]) — a
    /// truncated walk can't prove an instruction useless.
    pub ineffective: Vec<usize>,
}

/// Symbolic value-flow analysis of `prog` with default [`Limits`].
///
/// Requires a well-formed program (in-ISA ops, in-range registers) — run
/// the malformed check first, as [`crate::verify`] and [`crate::gate`] do.
pub fn analyze(machine: &Machine, prog: &[Instr]) -> Analysis {
    analyze_with(machine, prog, Limits::default()).analysis
}

/// [`analyze`] with explicit limits, also reporting effect information.
pub fn analyze_with(machine: &Machine, prog: &[Instr], limits: Limits) -> ValueFlow {
    let n = machine.n();
    let mut regs = 0u64;
    for i in 0..machine.num_regs() {
        set_term(&mut regs, Reg::new(i), if i < n { i } else { ZERO });
    }
    let mut stack = vec![Path {
        regs,
        flags: FLAG_NONE,
        guard: Guard::base(n),
        pc: 0,
    }];
    let mut classes = 0u64;
    let mut steps = 0u64;
    let mut effective = vec![false; prog.len()];

    while let Some(mut path) = stack.pop() {
        let mut pc = path.pc as usize;
        while pc < prog.len() {
            steps += 1;
            if steps > limits.max_steps {
                return bailout(classes);
            }
            let instr = prog[pc];
            let a = term(path.regs, instr.dst);
            let b = term(path.regs, instr.src);
            match instr.op {
                Op::Mov => {
                    if a != b {
                        effective[pc] = true;
                        set_term(&mut path.regs, instr.dst, b);
                    }
                }
                Op::Cmp => {
                    path.flags = if a == b {
                        FLAG_NONE
                    } else if path.guard.lt(a, b) {
                        FLAG_LT
                    } else if path.guard.lt(b, a) {
                        FLAG_GT
                    } else {
                        // Unknown order: split into the two worlds. Distinct
                        // terms hold distinct values, so there is no third.
                        let mut other = path;
                        other.guard.add(b, a);
                        other.flags = FLAG_GT;
                        other.pc = (pc + 1) as u32;
                        stack.push(other);
                        path.guard.add(a, b);
                        FLAG_LT
                    };
                }
                Op::Cmovl | Op::Cmovg => {
                    let fires = path.flags
                        == if instr.op == Op::Cmovl {
                            FLAG_LT
                        } else {
                            FLAG_GT
                        };
                    if fires && a != b {
                        effective[pc] = true;
                        set_term(&mut path.regs, instr.dst, b);
                    }
                }
                Op::Min | Op::Max => {
                    // `min` keeps the guard-smaller term in dst; `max` the
                    // larger. Splits exactly like `cmp` when undecided.
                    let keep_src_if_lt = instr.op == Op::Max;
                    if a != b {
                        let src_wins = if path.guard.lt(a, b) {
                            keep_src_if_lt
                        } else if path.guard.lt(b, a) {
                            !keep_src_if_lt
                        } else {
                            let mut other = path;
                            other.guard.add(b, a);
                            if keep_src_if_lt {
                                other.pc = (pc + 1) as u32;
                            } else {
                                effective[pc] = true;
                                set_term(&mut other.regs, instr.dst, b);
                                other.pc = (pc + 1) as u32;
                            }
                            stack.push(other);
                            path.guard.add(a, b);
                            keep_src_if_lt
                        };
                        if src_wins {
                            effective[pc] = true;
                            set_term(&mut path.regs, instr.dst, b);
                        }
                    }
                }
            }
            pc += 1;
        }
        classes += 1;
        if classes > limits.max_classes {
            return bailout(classes - 1);
        }
        if let Some(witness) = class_failure(machine, &path) {
            debug_assert!(
                !machine.is_sorted(machine.run(prog, machine.initial_state(&witness))),
                "value-flow refutation witness {witness:?} does not fail"
            );
            return ValueFlow {
                analysis: Analysis::Refuted { witness, classes },
                ineffective: Vec::new(),
            };
        }
    }

    let ineffective = prog
        .iter()
        .enumerate()
        .filter(|&(i, instr)| {
            matches!(instr.op, Op::Cmovl | Op::Cmovg | Op::Min | Op::Max) && !effective[i]
        })
        .map(|(i, _)| i)
        .collect();
    ValueFlow {
        analysis: Analysis::Certified(PermCertificate {
            classes,
            steps,
            blocks: 1,
        }),
        ineffective,
    }
}

fn bailout(classes: u64) -> ValueFlow {
    ValueFlow {
        analysis: Analysis::Bailout { classes },
        ineffective: Vec::new(),
    }
}

/// Decides one completed class. `None` means every input in the class sorts;
/// otherwise returns a concrete permutation of `1..=n` in the class that the
/// program fails to sort.
fn class_failure(machine: &Machine, path: &Path) -> Option<Vec<u8>> {
    let n = machine.n();
    let mut guard = path.guard;
    for k in 0..n {
        let out = term(path.regs, Reg::new(k));
        if out >= n {
            // A value register ends holding `Zero`: every input fails.
            return Some(extension(n, &guard));
        }
        if k + 1 == n {
            continue;
        }
        let next = term(path.regs, Reg::new(k + 1));
        if out == next || guard.lt(next, out) {
            // Duplicate outputs, or provably descending: every input fails.
            return Some(extension(n, &guard));
        }
        if next < n && !guard.lt(out, next) {
            // Order unproved: the class contains inputs realising
            // `next < out`, all of which fail. Pin that sub-class.
            guard.add(next, out);
            return Some(extension(n, &guard));
        }
    }
    None
}

/// A concrete permutation consistent with `guard`: topologically sort the
/// input terms (Kahn, smallest id first) and assign ranks `1..=n`.
fn extension(n: u8, guard: &Guard) -> Vec<u8> {
    let mut placed = 0u16;
    let mut witness = vec![0u8; n as usize];
    for rank in 1..=n {
        // The next value goes to an unplaced input with no unplaced input
        // below it: `rows[v]` lists what v is *below*, so v is minimal iff
        // no unplaced u has v in its row.
        let v = (0..n)
            .find(|&v| {
                placed & (1 << v) == 0
                    && (0..n).all(|u| placed & (1 << u) != 0 || u == v || !guard.lt(u, v))
            })
            .expect("guard is acyclic");
        witness[v as usize] = rank;
        placed |= 1 << v;
    }
    witness
}

/// A contiguous instruction range claimed to sort a set of value registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    /// First instruction index of the block.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// The value registers the block sorts, ascending into this listed
    /// order: after the block, `sorts[0] ≤ sorts[1] ≤ …` holding the same
    /// multiset the registers held before.
    pub sorts: Vec<Reg>,
}

/// Why a stitched proof could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// The block tiling or a block's shape is unusable (gap in the tiling,
    /// out-of-range or duplicate sort registers, writes escaping the block's
    /// footprint, scratch or flags read before initialisation).
    BadSpec {
        /// Index of the offending block.
        block: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// A block's standalone symbolic analysis did not certify it.
    Unproved {
        /// Index of the offending block.
        block: usize,
        /// The block's analysis outcome.
        analysis: Analysis,
    },
    /// All blocks certified, but their composition provably mis-sorts the
    /// contained permutation.
    Refuted {
        /// A failing permutation of `1..=n`.
        witness: Vec<u8>,
    },
}

/// Proves a whole program correct from per-block certificates.
///
/// `blocks` must tile `prog` contiguously. Each block is independently
/// perm-certified over its own registers (cost `k!` symbolic classes for a
/// `k`-register block), then the composition is decided as a chain of
/// subset-sort operators via the 0-1 principle (`2^n` model evaluations) —
/// never running the composed machine on its `n!` permutations.
pub fn verify_stitched(
    machine: &Machine,
    prog: &[Instr],
    blocks: &[BlockSpec],
) -> Result<PermCertificate, StitchError> {
    let n = machine.n();
    let mut expected_start = 0usize;
    let mut cert = PermCertificate {
        classes: 0,
        steps: 0,
        blocks: blocks.len() as u64,
    };
    for (bi, block) in blocks.iter().enumerate() {
        let bad = |reason: String| StitchError::BadSpec { block: bi, reason };
        if block.start != expected_start {
            return Err(bad(format!(
                "block starts at {} but the previous block ended at {expected_start}",
                block.start
            )));
        }
        if block.end <= block.start || block.end > prog.len() {
            return Err(bad(format!(
                "empty or out-of-range instruction span {}..{}",
                block.start, block.end
            )));
        }
        expected_start = block.end;
        let summary = summarize_block(machine, prog, block).map_err(|e| match e {
            BlockError::BadSpec(reason) => bad(reason),
            BlockError::Unproved(analysis) => StitchError::Unproved {
                block: bi,
                analysis,
            },
        })?;
        cert.classes += summary.classes;
        cert.steps += summary.steps;
    }
    if expected_start != prog.len() {
        return Err(StitchError::BadSpec {
            block: blocks.len().saturating_sub(1),
            reason: format!(
                "blocks cover only {expected_start} of {} instructions",
                prog.len()
            ),
        });
    }

    // Model check: each block acts as "sort these positions" on every input
    // (order-isomorphism invariance of comparison programs), so the program
    // equals a composition of subset-sort operators. Those are monotone, so
    // sorting all 2^n 0-1 vectors proves sorting on every input.
    let mut model = vec![0u8; n as usize];
    for bits in 0..(1u32 << n) {
        for (i, v) in model.iter_mut().enumerate() {
            *v = ((bits >> i) & 1) as u8;
        }
        for block in blocks {
            sort_positions(&mut model, &block.sorts);
        }
        cert.classes += 1;
        if model.windows(2).any(|w| w[0] > w[1]) {
            return Err(StitchError::Refuted {
                witness: zero_one_to_permutation(n, bits),
            });
        }
    }
    Ok(cert)
}

/// Applies "sort these positions ascending" in place.
fn sort_positions(model: &mut [u8], sorts: &[Reg]) {
    let mut vals: Vec<u8> = sorts.iter().map(|r| model[r.index() as usize]).collect();
    vals.sort_unstable();
    for (r, v) in sorts.iter().zip(vals) {
        model[r.index() as usize] = v;
    }
}

/// Lifts a failing 0-1 vector to a failing permutation: zeros get the low
/// values (in position order), ones the high values. The subset-sort model
/// commutes with this monotone relabelling, so the permutation fails at the
/// same position the 0-1 vector did.
fn zero_one_to_permutation(n: u8, bits: u32) -> Vec<u8> {
    let mut witness = vec![0u8; n as usize];
    let mut next = 1u8;
    for (i, w) in witness.iter_mut().enumerate() {
        if bits >> i & 1 == 0 {
            *w = next;
            next += 1;
        }
    }
    for (i, w) in witness.iter_mut().enumerate() {
        if bits >> i & 1 == 1 {
            *w = next;
            next += 1;
        }
    }
    witness
}

enum BlockError {
    BadSpec(String),
    Unproved(Analysis),
}

/// Checks a block's footprint discipline and certifies it standalone on a
/// sub-machine over its sort registers.
fn summarize_block(
    machine: &Machine,
    prog: &[Instr],
    block: &BlockSpec,
) -> Result<PermCertificate, BlockError> {
    let n = machine.n();
    let k = block.sorts.len();
    let bad = |reason: String| Err(BlockError::BadSpec(reason));
    if k < 2 {
        return bad("a block must sort at least two registers".into());
    }
    let mut rename = [None::<u8>; 16];
    for (i, r) in block.sorts.iter().enumerate() {
        if r.index() >= n {
            return bad(format!("sort register {r} is not a value register"));
        }
        if rename[r.index() as usize].is_some() {
            return bad(format!("duplicate sort register {r}"));
        }
        rename[r.index() as usize] = Some(i as u8);
    }

    // Footprint scan: reads and writes confined to sorts ∪ scratch; scratch
    // and flags never read before the block itself wrote them (the
    // sub-machine analysis assumes zeroed scratch and unset flags, which is
    // only faithful if the block cannot observe what an earlier block left
    // behind).
    let mut scratch_written = 0u16;
    let mut flags_written = false;
    let mut scratch_count = k as u8;
    let body = &prog[block.start..block.end];
    for (off, instr) in body.iter().enumerate() {
        let idx = block.start + off;
        let touch = |r: Reg, is_read: bool, scratch_written: &u16| -> Result<(), BlockError> {
            if r.index() >= n {
                if is_read && *scratch_written & (1 << (r.index() - n)) == 0 {
                    return Err(BlockError::BadSpec(format!(
                        "instruction {idx} reads scratch {r} before the block writes it"
                    )));
                }
                return Ok(());
            }
            if rename[r.index() as usize].is_none() {
                return Err(BlockError::BadSpec(format!(
                    "instruction {idx} touches {r}, outside the block's sort set"
                )));
            }
            Ok(())
        };
        match instr.op {
            Op::Mov => {
                touch(instr.src, true, &scratch_written)?;
                touch(instr.dst, false, &scratch_written)?;
            }
            Op::Cmp => {
                touch(instr.dst, true, &scratch_written)?;
                touch(instr.src, true, &scratch_written)?;
                flags_written = true;
            }
            Op::Cmovl | Op::Cmovg => {
                if !flags_written {
                    return bad(format!(
                        "instruction {idx} reads flags before the block sets them"
                    ));
                }
                touch(instr.dst, true, &scratch_written)?;
                touch(instr.src, true, &scratch_written)?;
            }
            Op::Min | Op::Max => {
                touch(instr.dst, true, &scratch_written)?;
                touch(instr.src, true, &scratch_written)?;
            }
        }
        // Writes: assign fresh sub-machine indices to scratch on first use.
        if instr.op != Op::Cmp && instr.dst.index() >= n {
            scratch_written |= 1 << (instr.dst.index() - n);
            if rename[instr.dst.index() as usize].is_none() {
                rename[instr.dst.index() as usize] = Some(scratch_count);
                scratch_count += 1;
            }
        }
    }

    let sub = Machine::new(k as u8, scratch_count - k as u8, machine.mode());
    let renamed: Vec<Instr> = body
        .iter()
        .map(|i| {
            Instr::new(
                i.op,
                Reg::new(rename[i.dst.index() as usize].expect("footprint checked")),
                Reg::new(rename[i.src.index() as usize].expect("footprint checked")),
            )
        })
        .collect();
    match analyze(&sub, &renamed) {
        Analysis::Certified(cert) => Ok(cert),
        other => Err(BlockError::Unproved(other)),
    }
}

/// Builds the block tiling for a kernel assembled from sliding
/// window-sorting blocks: the instruction counts in `spans` paired with the
/// register windows in `windows`.
pub fn window_blocks(spans: &[usize], windows: &[Vec<Reg>]) -> Vec<BlockSpec> {
    assert_eq!(spans.len(), windows.len());
    let mut start = 0;
    spans
        .iter()
        .zip(windows)
        .map(|(&len, w)| {
            let spec = BlockSpec {
                start,
                end: start + len,
                sorts: w.clone(),
            };
            start += len;
            spec
        })
        .collect()
}

/// Whether the mode's selection instructions make the analysis worthwhile
/// as a gate stage: for min/max kernels the 0-1 certificate is already
/// exact, so the symbolic walk only ever runs on cmp/cmov programs.
pub fn decides(mode: IsaMode) -> bool {
    mode == IsaMode::Cmov
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn cmov(n: u8, scratch: u8) -> Machine {
        Machine::new(n, scratch, IsaMode::Cmov)
    }

    fn minmax(n: u8, scratch: u8) -> Machine {
        Machine::new(n, scratch, IsaMode::MinMax)
    }

    /// AlphaDev's sort3 (perm-correct, tie-unsafe): the kernel the 0-1 gate
    /// cannot decide without the oracle.
    const ALPHADEV_3: &str = "mov s1 r2; cmp r1 r2; cmovg s1 r1; cmovl r2 r1; \
                              mov r1 r2; cmp r1 r3; cmovl r2 r3; cmovg r1 r3; \
                              cmp r2 s1; cmovl r3 s1; cmovg r2 s1";

    /// The §2.3 stale-flag kernel: passes every 0-1 vector but fails the
    /// permutation [1, 3, 2].
    const STALE_2_3: &str = "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                             mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                             cmovg r2 r1; cmovg r1 s1";

    #[test]
    fn certifies_alphadev_sort3_with_factorial_classes() {
        let m = cmov(3, 1);
        let prog = m.parse_program(ALPHADEV_3).unwrap();
        let Analysis::Certified(cert) = analyze(&m, &prog) else {
            panic!("alphadev sort3 must certify");
        };
        // A correct kernel's class tree has exactly n! leaves.
        assert_eq!(cert.classes, 6);
        assert_eq!(cert.blocks, 1);
    }

    #[test]
    fn refutes_the_stale_flag_kernel_with_a_concrete_witness() {
        // This kernel passes every 0-1 vector — the 0-1 pipeline is blind to
        // it. The symbolic walk finds the failing permutation statically.
        let m = cmov(3, 1);
        let prog = m.parse_program(STALE_2_3).unwrap();
        let Analysis::Refuted { witness, .. } = analyze(&m, &prog) else {
            panic!("stale-flag kernel must be refuted");
        };
        assert!(!m.is_sorted(m.run(&prog, m.initial_state(&witness))));
    }

    #[test]
    fn refutes_garbage_and_empty_programs() {
        let m = cmov(3, 1);
        let prog = m.parse_program("mov r1 r2").unwrap();
        let Analysis::Refuted { witness, .. } = analyze(&m, &prog) else {
            panic!("garbage must be refuted");
        };
        assert!(!m.is_sorted(m.run(&prog, m.initial_state(&witness))));
        let Analysis::Refuted { witness, .. } = analyze(&m, &[]) else {
            panic!("the empty program must be refuted");
        };
        assert!(!m.is_sorted(m.run(&[], m.initial_state(&witness))));
    }

    #[test]
    fn certifies_minmax_networks() {
        let m = minmax(3, 1);
        let prog = m
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; \
                 mov s1 r2; min r2 r3; max r3 s1; \
                 mov s1 r1; min r1 r2; max r2 s1",
            )
            .unwrap();
        let Analysis::Certified(cert) = analyze(&m, &prog) else {
            panic!("minmax network must certify");
        };
        assert_eq!(cert.classes, 6);
    }

    #[test]
    fn agreement_with_the_oracle_on_all_two_instruction_programs() {
        // Exhaustive differential check on a small program space.
        for machine in [cmov(2, 1), minmax(2, 1)] {
            let actions = machine.actions();
            for a in &actions {
                for b in &actions {
                    let prog = vec![*a, *b];
                    let correct = machine.is_correct(&prog);
                    match analyze(&machine, &prog) {
                        Analysis::Certified(_) => assert!(correct, "{prog:?}"),
                        Analysis::Refuted { witness, .. } => {
                            assert!(!correct, "{prog:?}");
                            assert!(!machine
                                .is_sorted(machine.run(&prog, machine.initial_state(&witness))));
                        }
                        Analysis::Bailout { .. } => panic!("no bailout at n=2: {prog:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn bailout_on_tiny_limits() {
        let m = cmov(3, 1);
        let prog = m.parse_program(ALPHADEV_3).unwrap();
        let vf = analyze_with(
            &m,
            &prog,
            Limits {
                max_classes: 2,
                max_steps: u64::MAX,
            },
        );
        assert!(matches!(vf.analysis, Analysis::Bailout { .. }));
        let vf = analyze_with(
            &m,
            &prog,
            Limits {
                max_classes: u64::MAX,
                max_steps: 10,
            },
        );
        assert!(matches!(vf.analysis, Analysis::Bailout { .. }));
    }

    #[test]
    fn ineffective_selections_are_reported() {
        let m = cmov(2, 1);
        // A correct n=2 CAS with its last cmov duplicated: on the gt path
        // the duplicate copies s1 into r2, which already holds that term;
        // on the lt path it does not fire. Never an effect on any path.
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; cmovg r2 s1")
            .unwrap();
        let vf = analyze_with(&m, &prog, Limits::default());
        let Analysis::Certified(_) = vf.analysis else {
            panic!("CAS plus no-op must certify, got {:?}", vf.analysis);
        };
        assert_eq!(vf.ineffective, vec![4]);
    }

    #[test]
    fn stitched_n4_from_two_cas_windows_certifies() {
        // Two overlapping 3-windows don't sort n=4; use the bubble tiling
        // (0,1,2),(1,2,3),(0,1,2) of full 3-sorters... built from the n=3
        // network block mapped onto register windows.
        let m = cmov(4, 1);
        let net3 = |a: u8, b: u8, c: u8| {
            let cas = |i: u8, j: u8| {
                format!("mov s1 r{i}; cmp r{i} r{j}; cmovg r{i} r{j}; cmovg r{j} s1")
            };
            format!("{}; {}; {}", cas(a, b), cas(b, c), cas(a, b))
        };
        let text = format!("{}; {}; {}", net3(1, 2, 3), net3(2, 3, 4), net3(1, 2, 3));
        let prog = m.parse_program(&text).unwrap();
        assert!(m.is_correct(&prog));
        let windows = vec![
            vec![Reg::new(0), Reg::new(1), Reg::new(2)],
            vec![Reg::new(1), Reg::new(2), Reg::new(3)],
            vec![Reg::new(0), Reg::new(1), Reg::new(2)],
        ];
        let blocks = window_blocks(&[12, 12, 12], &windows);
        let cert = verify_stitched(&m, &prog, &blocks).expect("stitched proof");
        assert_eq!(cert.blocks, 3);
        // 3 blocks × 3! classes + 2^4 model checks.
        assert_eq!(cert.classes, 3 * 6 + 16);
    }

    #[test]
    fn stitched_proof_rejects_an_insufficient_tiling() {
        // Sorting (0,1,2) then (1,2,3) is not enough for n=4: the model
        // check must refute with a permutation witness.
        let m = cmov(4, 1);
        let cas =
            |i: u8, j: u8| format!("mov s1 r{i}; cmp r{i} r{j}; cmovg r{i} r{j}; cmovg r{j} s1");
        let net3 = |a: u8, b: u8, c: u8| format!("{}; {}; {}", cas(a, b), cas(b, c), cas(a, b));
        let text = format!("{}; {}", net3(1, 2, 3), net3(2, 3, 4));
        let prog = m.parse_program(&text).unwrap();
        let windows = vec![
            vec![Reg::new(0), Reg::new(1), Reg::new(2)],
            vec![Reg::new(1), Reg::new(2), Reg::new(3)],
        ];
        let blocks = window_blocks(&[12, 12], &windows);
        let Err(StitchError::Refuted { witness }) = verify_stitched(&m, &prog, &blocks) else {
            panic!("two windows cannot sort four values");
        };
        assert!(!m.is_sorted(m.run(&prog, m.initial_state(&witness))));
    }

    #[test]
    fn stitched_proof_rejects_footprint_escapes() {
        let m = cmov(4, 1);
        // Block claims to sort (r1, r2) but touches r3.
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r3; cmovg r1 r3; cmovg r3 s1")
            .unwrap();
        let blocks = vec![BlockSpec {
            start: 0,
            end: 4,
            sorts: vec![Reg::new(0), Reg::new(1)],
        }];
        assert!(matches!(
            verify_stitched(&m, &prog, &blocks),
            Err(StitchError::BadSpec { .. })
        ));
        // Reading scratch before writing it is rejected (the previous block
        // may have left anything there).
        let prog = m
            .parse_program("cmp r1 r2; cmovg r1 s1; cmovg r2 r1")
            .unwrap();
        let blocks = vec![BlockSpec {
            start: 0,
            end: 3,
            sorts: vec![Reg::new(0), Reg::new(1)],
        }];
        assert!(matches!(
            verify_stitched(&m, &prog, &blocks),
            Err(StitchError::BadSpec { .. })
        ));
    }
}
