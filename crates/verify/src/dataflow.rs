//! Backward def-use/liveness dataflow over registers **and** flags.
//!
//! The analysis treats the `lt`/`gt` comparison flags as two extra dataflow
//! locations next to the register file. This is what makes flag-level bugs
//! (an unread `cmp`, a `cmovg` whose guard nobody established) visible to a
//! classical liveness pass: a `cmp` *defines* `lt` and `gt`, a `cmovl`/`cmovg`
//! *uses* one of them, and the usual backward equations do the rest.
//!
//! Conditional moves get the standard partial-definition treatment: a `cmov`
//! writes its destination only when the guard flag is set, so the old value
//! can survive — the destination is therefore both a *use* and a *def*, and
//! the def never kills liveness (the use regenerates it immediately).

use sortsynth_isa::{Instr, Machine, Op, Reg};

/// Bit index of the `lt` flag in a [`LocSet`].
const LT_BIT: u32 = 16;
/// Bit index of the `gt` flag in a [`LocSet`].
const GT_BIT: u32 = 17;

/// A set of dataflow locations: register-file indices `0..16` plus the two
/// comparison flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocSet(u32);

impl LocSet {
    /// The empty set.
    pub const fn empty() -> Self {
        LocSet(0)
    }

    /// The singleton set holding register `r`.
    pub fn reg(r: Reg) -> Self {
        LocSet(1 << r.index())
    }

    /// The singleton set holding the `lt` flag.
    pub const fn lt() -> Self {
        LocSet(1 << LT_BIT)
    }

    /// The singleton set holding the `gt` flag.
    pub const fn gt() -> Self {
        LocSet(1 << GT_BIT)
    }

    /// Both flags.
    pub const fn flags() -> Self {
        LocSet(1 << LT_BIT | 1 << GT_BIT)
    }

    /// Set union.
    pub fn union(self, other: LocSet) -> Self {
        LocSet(self.0 | other.0)
    }

    /// Set difference.
    pub fn minus(self, other: LocSet) -> Self {
        LocSet(self.0 & !other.0)
    }

    /// Whether the two sets share any location.
    pub fn intersects(self, other: LocSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether register `r` is in the set.
    pub fn contains_reg(self, r: Reg) -> bool {
        self.intersects(LocSet::reg(r))
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// The locations `instr` reads.
pub fn uses(instr: Instr) -> LocSet {
    let src = LocSet::reg(instr.src);
    let dst = LocSet::reg(instr.dst);
    match instr.op {
        Op::Mov => src,
        Op::Cmp => dst.union(src),
        // The guard flag plus the conditionally surviving old destination.
        Op::Cmovl => src.union(dst).union(LocSet::lt()),
        Op::Cmovg => src.union(dst).union(LocSet::gt()),
        Op::Min | Op::Max => dst.union(src),
    }
}

/// The locations `instr` writes (possibly conditionally, for `cmov`).
pub fn defs(instr: Instr) -> LocSet {
    match instr.op {
        Op::Cmp => LocSet::flags(),
        _ => LocSet::reg(instr.dst),
    }
}

/// Per-instruction liveness for one straight-line program.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_after[i]`: locations live immediately after instruction `i`.
    live_after: Vec<LocSet>,
    /// Locations live at program entry.
    entry: LocSet,
}

/// Runs the backward liveness analysis. At exit exactly the value registers
/// `r1..rn` are live (scratch registers and flags are dead at kernel exit,
/// matching the §3.6 observational-equivalence notion).
pub fn liveness(machine: &Machine, prog: &[Instr]) -> Liveness {
    let mut live = LocSet::empty();
    for i in 0..machine.n() {
        live = live.union(LocSet::reg(Reg::new(i)));
    }
    let mut live_after = vec![LocSet::empty(); prog.len()];
    for (i, &instr) in prog.iter().enumerate().rev() {
        live_after[i] = live;
        live = live.minus(defs(instr)).union(uses(instr));
    }
    Liveness {
        live_after,
        entry: live,
    }
}

impl Liveness {
    /// Locations live immediately after instruction `i`.
    pub fn live_after(&self, i: usize) -> LocSet {
        self.live_after[i]
    }

    /// Locations live at program entry.
    pub fn entry(&self) -> LocSet {
        self.entry
    }

    /// Whether instruction `i` of `prog` is dead: nothing it writes is live
    /// afterwards, so removing it cannot change the observable result.
    ///
    /// Self-operand instructions other than `cmp` (e.g. `mov r1 r1`,
    /// `min r1 r1`, `cmovg r1 r1`) are no-ops and dead regardless of
    /// liveness. `cmp r r` is *not* a no-op — it clears both flags — so it
    /// only dies through flag liveness like any other compare.
    pub fn is_dead(&self, prog: &[Instr], i: usize) -> bool {
        let instr = prog[i];
        if instr.op != Op::Cmp && instr.dst == instr.src {
            return true;
        }
        !defs(instr).intersects(self.live_after[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn m3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    #[test]
    fn flags_are_locations() {
        let m = m3();
        let prog = m.parse_program("cmp r1 r2; cmovg r2 r1").unwrap();
        let lv = liveness(&m, &prog);
        // The cmp's gt flag is read by the cmovg, so flags are live after it.
        assert!(lv.live_after(0).intersects(LocSet::gt()));
        assert!(!lv.is_dead(&prog, 0));
        // Without the reader the cmp is dead.
        let prog = m.parse_program("cmp r1 r2").unwrap();
        let lv = liveness(&m, &prog);
        assert!(lv.is_dead(&prog, 0));
    }

    #[test]
    fn scratch_writes_die_at_exit() {
        let m = m3();
        let prog = m.parse_program("mov s1 r1").unwrap();
        let lv = liveness(&m, &prog);
        assert!(lv.is_dead(&prog, 0));
        // A later reader keeps it alive.
        let prog = m.parse_program("mov s1 r1; mov r1 s1").unwrap();
        let lv = liveness(&m, &prog);
        assert!(!lv.is_dead(&prog, 0));
    }

    #[test]
    fn cmov_destination_is_a_use() {
        let m = m3();
        // The cmov may keep r1's old value, so the mov writing r1 is live.
        let prog = m
            .parse_program("mov r1 r2; cmp r2 r3; cmovg r1 r3")
            .unwrap();
        let lv = liveness(&m, &prog);
        assert!(!lv.is_dead(&prog, 0));
        // An unconditional overwrite kills it.
        let prog = m.parse_program("mov r1 r2; mov r1 r3").unwrap();
        let lv = liveness(&m, &prog);
        assert!(lv.is_dead(&prog, 0));
        assert!(!lv.is_dead(&prog, 1));
    }

    #[test]
    fn value_registers_live_at_entry_and_exit() {
        let m = m3();
        let lv = liveness(&m, &[]);
        for i in 0..3 {
            assert!(lv.entry().contains_reg(Reg::new(i)));
        }
        assert!(!lv.entry().contains_reg(Reg::new(3)));
    }

    #[test]
    fn self_ops_are_dead() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let prog = vec![
            Instr::new(Op::Mov, Reg::new(0), Reg::new(0)),
            Instr::new(Op::Min, Reg::new(1), Reg::new(1)),
        ];
        let lv = liveness(&m, &prog);
        assert!(lv.is_dead(&prog, 0));
        assert!(lv.is_dead(&prog, 1));
    }
}
