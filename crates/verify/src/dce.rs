//! Liveness-driven dead-code elimination.
//!
//! Deletes instructions whose definitions are dead under the backward
//! liveness analysis of [`crate::dataflow`], iterating to a fixpoint so that
//! chains (`mov s1 r1` feeding only another dead write) collapse fully.
//! Every deleted instruction writes only locations provably unread before
//! being overwritten or reaching exit, so the result is observationally
//! equivalent to the input on all inputs — the property tests check this
//! against the ISA's `equivalent` oracle.

use sortsynth_isa::{Instr, Machine};

use crate::dataflow::liveness;

/// Returns `prog` with all liveness-dead instructions removed.
pub fn dce(machine: &Machine, prog: &[Instr]) -> Vec<Instr> {
    let mut prog = prog.to_vec();
    loop {
        let lv = liveness(machine, &prog);
        let kept: Vec<Instr> = prog
            .iter()
            .enumerate()
            .filter(|&(i, _)| !lv.is_dead(&prog, i))
            .map(|(_, &instr)| instr)
            .collect();
        if kept.len() == prog.len() {
            return prog;
        }
        prog = kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{equivalent, IsaMode, Machine};

    #[test]
    fn removes_dead_chains() {
        let m = Machine::new(2, 2, IsaMode::Cmov);
        // s2 <- r1 is read only by the dead write s1 <- s2: both go.
        let prog = m
            .parse_program("mov s2 r1; mov s1 s2; cmp r1 r2; cmovg r1 r2")
            .unwrap();
        let out = dce(&m, &prog);
        assert_eq!(out.len(), 2);
        assert!(equivalent(&m, &prog, &out));
    }

    #[test]
    fn keeps_minimal_kernels_intact() {
        let m = Machine::new(3, 1, IsaMode::MinMax);
        let prog = m
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; \
                 mov s1 r2; min r2 r3; max r3 s1; \
                 mov s1 r1; min r1 r2; max r2 s1",
            )
            .unwrap();
        assert_eq!(dce(&m, &prog), prog);
    }

    #[test]
    fn dead_cmp_is_removed() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m
            .parse_program("cmp r1 r2; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        let out = dce(&m, &prog);
        assert_eq!(out.len(), 2);
        assert!(equivalent(&m, &prog, &out));
    }
}
