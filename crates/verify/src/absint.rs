//! A tiny abstract interpreter for straight-line kernel programs.
//!
//! Straight-line code needs no fixpoint: an abstract run is a single fold of
//! the domain's transfer function over the instruction sequence. The value of
//! the framework is the shared shape — a domain packages an entry state and a
//! transfer function, and every analysis (the 0-1 collecting domain in
//! [`crate::zero_one`], the flag-taint domain in [`crate::flags`]) plugs into
//! the same driver instead of re-implementing the walk.

use sortsynth_isa::{Instr, Machine};

/// An abstract domain: an entry state plus a transfer function.
///
/// `State` is the domain's abstract element. Diagnosing domains accumulate
/// findings inside their state; proving domains carry the abstraction of all
/// reachable concrete states.
pub trait AbstractDomain {
    /// The abstract state threaded through the program.
    type State;

    /// The abstract state before the first instruction.
    fn entry(&self, machine: &Machine) -> Self::State;

    /// The effect of executing `instr` (at position `index`) on `state`.
    fn transfer(&self, machine: &Machine, state: &mut Self::State, instr: Instr, index: usize);
}

/// Runs `domain` over `prog` and returns the abstract state at program exit.
pub fn interpret<D: AbstractDomain>(domain: &D, machine: &Machine, prog: &[Instr]) -> D::State {
    let mut state = domain.entry(machine);
    for (index, &instr) in prog.iter().enumerate() {
        domain.transfer(machine, &mut state, instr, index);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    /// A trivial counting domain: the abstract state is the number of
    /// instructions seen.
    struct Count;

    impl AbstractDomain for Count {
        type State = usize;

        fn entry(&self, _machine: &Machine) -> usize {
            0
        }

        fn transfer(&self, _machine: &Machine, state: &mut usize, _instr: Instr, index: usize) {
            assert_eq!(*state, index);
            *state += 1;
        }
    }

    #[test]
    fn interpret_folds_in_order() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r1 r2")
            .unwrap();
        assert_eq!(interpret(&Count, &m, &prog), 3);
        assert_eq!(interpret(&Count, &m, &[]), 0);
    }
}
