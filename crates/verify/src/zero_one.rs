//! The 0-1 collecting domain.
//!
//! The abstract element is the set of machine states reachable from the 2^n
//! inputs drawn from {0,1}^n — a finite under-approximation of the full input
//! space tracked *exactly* (every element is a concrete state, transferred by
//! concrete execution). Two readings of the exit state:
//!
//! - **min/max mode**: every instruction computes a lattice polynomial
//!   (composition of `min`/`max`/copy), and lattice polynomials over a
//!   distributive lattice are determined by their values on {0,1}^n. Sorting
//!   all 0-1 vectors therefore *proves* the kernel sorts every input — the
//!   0-1 lemma applies soundly, and the exit state is a certificate.
//! - **cmp/cmov mode**: flags are persistent state that `cmov` can consume
//!   long after the `cmp` that set them, so a program need not be monotone
//!   and the lemma cuts in *neither* direction. A clean 0-1 run upgrades to
//!   nothing (§2.3's stale-flag kernel passes every 0-1 vector yet fails on
//!   `[1, 3, 2]`), and a failure on a *tied* 0-1 vector does not refute
//!   correctness on the paper's duplicate-free permutation domain either:
//!   AlphaDev's sort3 sorts every permutation yet sends `[1, 1, 0]` to
//!   `[0, 1, 0]`. Only a tie-free witness transfers.

use sortsynth_isa::{Instr, Machine, Reg};

use crate::absint::{interpret, AbstractDomain};

/// One tracked 0-1 input and the machine state it has reached.
#[derive(Debug, Clone)]
pub struct ZeroOneRun {
    /// The original {0,1}^n input vector.
    pub input: Vec<u8>,
    /// The state after the instructions executed so far.
    pub state: sortsynth_isa::MachineState,
}

/// The 0-1 collecting domain: runs all 2^n 0-1 inputs in lockstep.
pub struct ZeroOneDomain;

impl AbstractDomain for ZeroOneDomain {
    type State = Vec<ZeroOneRun>;

    fn entry(&self, machine: &Machine) -> Self::State {
        let n = machine.n();
        (0u32..1 << n)
            .map(|bits| {
                let input: Vec<u8> = (0..n).map(|i| ((bits >> i) & 1) as u8).collect();
                ZeroOneRun {
                    state: machine.initial_state(&input),
                    input,
                }
            })
            .collect()
    }

    fn transfer(&self, _machine: &Machine, state: &mut Self::State, instr: Instr, _index: usize) {
        for run in state.iter_mut() {
            run.state.exec(instr);
        }
    }
}

/// Runs the 0-1 domain over `prog` and returns the first 0-1 input the
/// program fails to sort, or `None` when every 0-1 vector ends up sorted.
pub fn zero_one_witness(machine: &Machine, prog: &[Instr]) -> Option<Vec<u8>> {
    let exit = interpret(&ZeroOneDomain, machine, prog);
    let n = machine.n();
    exit.into_iter()
        .find(|run| {
            let result: Vec<u8> = (0..n).map(|i| run.state.reg(Reg::new(i))).collect();
            let mut expected = run.input.clone();
            expected.sort_unstable();
            result != expected
        })
        .map(|run| run.input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{sorts_all_zero_one, IsaMode};

    #[test]
    fn witness_agrees_with_isa_oracle() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let good = m.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        assert_eq!(zero_one_witness(&m, &good), None);
        assert!(sorts_all_zero_one(&m, &good));

        let bad = m.parse_program("mov r1 r2").unwrap();
        let witness = zero_one_witness(&m, &bad).expect("refutation");
        assert!(!sorts_all_zero_one(&m, &bad));
        // The witness really is a failing 0-1 input.
        let out = m.run(&bad, m.initial_state(&witness));
        assert!(!m.is_sorted(m.run(&bad, m.initial_state(&[2, 1]))) || !m.is_sorted(out));
    }

    #[test]
    fn stale_flags_program_passes_zero_one() {
        // §2.3: the 0-1 domain alone cannot refute the stale-flag kernel.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let stale = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert_eq!(zero_one_witness(&m, &stale), None);
        assert!(!m.is_correct(&stale));
    }
}
