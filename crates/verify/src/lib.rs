//! Static analysis for synthesized sorting kernels.
//!
//! The paper's correctness story is exhaustive permutation testing, plus the
//! §2.3 observation that 0-1 testing alone is unsound for cmp/cmov programs.
//! This crate adds the complementary static story:
//!
//! - [`dataflow`]: backward def-use/liveness over registers *and* flags.
//! - [`absint`]: a tiny abstract interpreter; [`zero_one`] instantiates it
//!   with the 0-1 collecting domain (a sound sortedness proof for min/max
//!   kernels, a necessary check for cmov kernels), [`flags`] with a
//!   flag-taint domain that catches the §2.3 stale-flag bug class
//!   statically.
//! - [`network`]: comparator-network extraction; a whole-program network
//!   that sorts all 2^n boolean vectors is certified correct on all inputs.
//! - [`dce`]: liveness-driven dead-code elimination.
//!
//! [`verify`] bundles everything into a [`Report`] — a [`Verdict`] plus a
//! catalog of structured [`Diagnostic`]s — and [`gate`] is the cheap
//! malformed/0-1 admission check used by the kernel cache.

pub mod absint;
pub mod dataflow;
mod dce;
pub mod flags;
pub mod network;
pub mod zero_one;

use std::error::Error;
use std::fmt;

use serde::{Serialize, Value};
use sortsynth_isa::{Instr, IsaMode, Machine, Op};

pub use dce::dce;
pub use network::{extract_network, network_witness, Comparator};
pub use zero_one::zero_one_witness;

use dataflow::{defs, liveness, Liveness, LocSet};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/canonicalization notes; never affects correctness.
    Info,
    /// Removable or suspicious code; the kernel may still be correct.
    Warning,
    /// The program is malformed or almost certainly wrong.
    Error,
}

impl Severity {
    /// Stable lowercase name for wire formats and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Instruction outside the machine's ISA or register out of range.
    Malformed,
    /// A `cmov` executes before any `cmp` has set the flags.
    CmovWithoutCmp,
    /// A conditional write killed by a same-guard write with no read in
    /// between — the static signature of the §2.3 stale-flag bug.
    DeadConditionalWrite,
    /// A register write that is never read before being overwritten or
    /// reaching exit.
    DeadWrite,
    /// A dead write specifically killed by a later unconditional write.
    WriteAfterWrite,
    /// A `cmp` whose flags are never read.
    UnreadFlags,
    /// A flag read after an operand of the guarding `cmp` was overwritten.
    StaleFlagRead,
    /// A `mov` that copies a value already in place.
    RedundantMov,
    /// A `cmp` outside the enumerator's canonical `dst < src` operand order.
    NonCanonicalCompare,
    /// A scratch register the machine provides but the program never touches.
    UnusedScratch,
    /// A cmp/cmov program that fails a *tied* 0-1 input. Strict-comparison
    /// tie-breaking is not monotone, so this does not refute correctness on
    /// the paper's duplicate-free permutation domain — but the kernel is not
    /// a total sorting function.
    TieUnsafe,
}

impl LintKind {
    /// Stable kebab-case name for wire formats and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::Malformed => "malformed",
            LintKind::CmovWithoutCmp => "cmov-without-cmp",
            LintKind::DeadConditionalWrite => "dead-conditional-write",
            LintKind::DeadWrite => "dead-write",
            LintKind::WriteAfterWrite => "write-after-write",
            LintKind::UnreadFlags => "unread-flags",
            LintKind::StaleFlagRead => "stale-flag-read",
            LintKind::RedundantMov => "redundant-mov",
            LintKind::NonCanonicalCompare => "non-canonical-compare",
            LintKind::UnusedScratch => "unused-scratch",
            LintKind::TieUnsafe => "tie-unsafe",
        }
    }

    /// The fixed severity of this lint kind.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::Malformed | LintKind::CmovWithoutCmp | LintKind::DeadConditionalWrite => {
                Severity::Error
            }
            LintKind::DeadWrite
            | LintKind::WriteAfterWrite
            | LintKind::UnreadFlags
            | LintKind::StaleFlagRead
            | LintKind::RedundantMov
            | LintKind::TieUnsafe => Severity::Warning,
            LintKind::NonCanonicalCompare | LintKind::UnusedScratch => Severity::Info,
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub kind: LintKind,
    /// The instruction it anchors to (`None` for whole-program findings).
    pub index: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A finding anchored at instruction `index`.
    pub fn at(kind: LintKind, index: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            index: Some(index),
            message: message.into(),
        }
    }

    /// A whole-program finding.
    pub fn program(kind: LintKind, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            index: None,
            message: message.into(),
        }
    }

    /// The severity inherited from the lint kind.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(
                f,
                "{}[{}] at {}: {}",
                self.severity().name(),
                self.kind.name(),
                i,
                self.message
            ),
            None => write!(
                f,
                "{}[{}]: {}",
                self.severity().name(),
                self.kind.name(),
                self.message
            ),
        }
    }
}

/// What the analyzer can say about sortedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The whole program is a comparator network that sorts all 0-1
    /// vectors: **proved correct on every input** (0-1 principle for
    /// networks; both ISAs).
    CertifiedNetwork,
    /// Every 0-1 vector sorts and the program is min/max-mode: **proved
    /// correct on every input** (min/max programs are lattice polynomials,
    /// determined by their 0-1 behaviour).
    CertifiedZeroOne,
    /// Every 0-1 vector sorts, but the program is free-form cmp/cmov, where
    /// the 0-1 lemma is only necessary (§2.3): *not* a proof.
    PassedZeroOne,
    /// An input the program fails to sort that also transfers to the
    /// paper's duplicate-free permutation domain: **proved incorrect**.
    /// Sound in three cases: the program is a comparator network (exact
    /// min/max semantics, monotone), the ISA is min/max mode (likewise
    /// monotone), or the witness itself has no ties.
    RefutedZeroOne {
        /// The failing {0,1}^n input.
        witness: Vec<u8>,
    },
    /// A cmp/cmov program that sorts every duplicate-free input tested but
    /// fails a *tied* 0-1 vector. Strict-comparison tie-breaking is not
    /// monotone, so the failure does not project back to a permutation:
    /// correctness on the paper's test domain is **undetermined**, but the
    /// kernel provably mis-sorts inputs with equal keys.
    TieUnsafe {
        /// The failing tied {0,1}^n input.
        witness: Vec<u8>,
    },
    /// The program is malformed; no semantic analysis ran.
    Unchecked,
}

impl Verdict {
    /// Stable kebab-case name for wire formats and CLI output.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Verdict::CertifiedNetwork => "certified-network",
            Verdict::CertifiedZeroOne => "certified-zero-one",
            Verdict::PassedZeroOne => "passed-zero-one",
            Verdict::RefutedZeroOne { .. } => "refuted-zero-one",
            Verdict::TieUnsafe { .. } => "tie-unsafe",
            Verdict::Unchecked => "unchecked",
        }
    }

    /// Whether this verdict proves the program sorts every input.
    pub fn certified(&self) -> bool {
        matches!(self, Verdict::CertifiedNetwork | Verdict::CertifiedZeroOne)
    }

    /// Whether this verdict proves the program incorrect.
    pub fn refuted(&self) -> bool {
        matches!(self, Verdict::RefutedZeroOne { .. })
    }
}

/// The full analysis result for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Sortedness verdict.
    pub verdict: Verdict,
    /// The extracted comparator network, when the whole program is one.
    pub network: Option<Vec<Comparator>>,
    /// All findings, ordered by instruction index.
    pub diagnostics: Vec<Diagnostic>,
    /// Program length in instructions.
    pub len: usize,
    /// Length after dead-code elimination (`< len` means removable code).
    pub dce_len: usize,
}

impl Report {
    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }
}

/// Runs the whole analysis pipeline over `prog`.
pub fn verify(machine: &Machine, prog: &[Instr]) -> Report {
    let bad = malformed(machine, prog);
    if !bad.is_empty() {
        // Semantic passes assume a well-formed program (out-of-range
        // registers would corrupt the packed state); stop here.
        return Report {
            verdict: Verdict::Unchecked,
            network: None,
            diagnostics: bad,
            len: prog.len(),
            dce_len: prog.len(),
        };
    }

    let lv = liveness(machine, prog);
    let mut diagnostics = liveness_lints(machine, prog, &lv);
    diagnostics.extend(redundant_movs(machine, prog, &lv));
    diagnostics.extend(style_lints(machine, prog));
    diagnostics.extend(flags::flag_lints(machine, prog));

    let network = extract_network(machine, prog);
    let verdict = match &network {
        // A recognized network computes exact min/max per comparator (ties
        // included), so a network refutation is sound on every domain.
        Some(net) => match network_witness(machine.n(), net) {
            None => Verdict::CertifiedNetwork,
            Some(witness) => Verdict::RefutedZeroOne { witness },
        },
        None => match zero_one_witness(machine, prog) {
            Some(witness) if refutation_transfers(machine.mode(), &witness) => {
                Verdict::RefutedZeroOne { witness }
            }
            Some(witness) => Verdict::TieUnsafe { witness },
            None => match machine.mode() {
                IsaMode::MinMax => Verdict::CertifiedZeroOne,
                IsaMode::Cmov => Verdict::PassedZeroOne,
            },
        },
    };
    if let Verdict::TieUnsafe { witness } = &verdict {
        diagnostics.push(Diagnostic::program(
            LintKind::TieUnsafe,
            format!(
                "fails tied 0-1 input {witness:?}; correct on distinct keys at most \
                 (strict comparisons are not monotone, so this is not a refutation)"
            ),
        ));
    }
    diagnostics.sort_by_key(|d| (d.index.unwrap_or(usize::MAX), d.kind.name()));

    Report {
        verdict,
        network,
        dce_len: dce(machine, prog).len(),
        diagnostics,
        len: prog.len(),
    }
}

/// Whether a failing 0-1 input refutes correctness on the duplicate-free
/// permutation domain the paper tests. Min/max programs are monotone, so
/// any 0-1 failure projects back to a failing permutation; for cmp/cmov the
/// projection argument needs a tie-free witness (order-isomorphic to a
/// permutation, on which a comparison-based program behaves identically).
fn refutation_transfers(mode: IsaMode, witness: &[u8]) -> bool {
    if mode == IsaMode::MinMax {
        return true;
    }
    let mut sorted = witness.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// Why [`gate`] rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// Not a valid program for the machine.
    Malformed(String),
    /// Fails to sort the contained input — provably not a sorting kernel.
    /// The witness is a 0-1 vector when the cheap static paths decided, or
    /// a permutation of `1..=n` when the exhaustive fallback did.
    Refuted(Vec<u8>),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Malformed(msg) => write!(f, "malformed kernel: {msg}"),
            GateError::Refuted(witness) => {
                write!(f, "kernel fails to sort input {witness:?}")
            }
        }
    }
}

impl Error for GateError {}

/// The admission check for cached/served kernels. Never rejects a kernel
/// that sorts every permutation (the paper's correctness bar), and never
/// admits one that does not.
///
/// Cheap static paths decide almost always: malformed programs are
/// rejected outright; a recognized comparator network is decided by its
/// 0-1 network certificate; otherwise the 0-1 run decides whenever its
/// answer transfers to the permutation domain (clean run, min/max mode, or
/// a tie-free witness). The one inconclusive case — a cmp/cmov program
/// whose only 0-1 failures are on tied inputs, which a permutation-correct
/// kernel like AlphaDev's sort3 can legitimately produce — falls back to
/// the exhaustive permutation oracle.
pub fn gate(machine: &Machine, prog: &[Instr]) -> Result<(), GateError> {
    if let Some(d) = malformed(machine, prog).into_iter().next() {
        return Err(GateError::Malformed(d.message));
    }
    if let Some(net) = extract_network(machine, prog) {
        return match network_witness(machine.n(), &net) {
            Some(witness) => Err(GateError::Refuted(witness)),
            None => Ok(()),
        };
    }
    match zero_one_witness(machine, prog) {
        None => Ok(()),
        Some(witness) if refutation_transfers(machine.mode(), &witness) => {
            Err(GateError::Refuted(witness))
        }
        Some(_) => match machine.counterexamples(prog).into_iter().next() {
            Some(witness) => Err(GateError::Refuted(witness)),
            None => Ok(()),
        },
    }
}

/// Structural validity: every op in the machine's ISA, every register in
/// range.
fn malformed(machine: &Machine, prog: &[Instr]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, instr) in prog.iter().enumerate() {
        if !machine.mode().ops().contains(&instr.op) {
            out.push(Diagnostic::at(
                LintKind::Malformed,
                i,
                format!(
                    "`{}` is not in the {} instruction set",
                    instr.op,
                    machine.mode().wire_name()
                ),
            ));
        } else if instr.dst.index() >= machine.num_regs() || instr.src.index() >= machine.num_regs()
        {
            out.push(Diagnostic::at(
                LintKind::Malformed,
                i,
                format!(
                    "register index out of range (dst {}, src {}, machine has {})",
                    instr.dst.index(),
                    instr.src.index(),
                    machine.num_regs()
                ),
            ));
        }
    }
    out
}

/// Dead-instruction findings from the liveness pass.
fn liveness_lints(machine: &Machine, prog: &[Instr], lv: &Liveness) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if !lv.is_dead(prog, i) {
            continue;
        }
        let rendered = machine.format_instr(instr);
        if instr.op == Op::Cmp {
            out.push(Diagnostic::at(
                LintKind::UnreadFlags,
                i,
                format!("flags set by `{rendered}` are never read"),
            ));
        } else if instr.dst == instr.src {
            let kind = if instr.op == Op::Mov {
                LintKind::RedundantMov
            } else {
                LintKind::DeadWrite
            };
            out.push(Diagnostic::at(
                kind,
                i,
                format!("`{rendered}` is a self-operand no-op"),
            ));
        } else {
            // A dead write is only *killed* by a later non-reading
            // overwrite, which on this ISA is exactly `mov dst, _`; any
            // other reference would have kept it live.
            let killed = prog[i + 1..]
                .iter()
                .any(|later| later.op == Op::Mov && later.dst == instr.dst);
            let kind = if killed {
                LintKind::WriteAfterWrite
            } else {
                LintKind::DeadWrite
            };
            let target = machine.reg_name(instr.dst);
            let why = if killed {
                "overwritten before any read"
            } else {
                "never read before exit"
            };
            out.push(Diagnostic::at(
                kind,
                i,
                format!("`{rendered}` writes {target} but the value is {why}"),
            ));
        }
    }
    out
}

/// Live `mov`s that copy a value already in place.
fn redundant_movs(machine: &Machine, prog: &[Instr], lv: &Liveness) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if instr.op != Op::Mov || instr.dst == instr.src || lv.is_dead(prog, i) {
            continue;
        }
        let pair = LocSet::reg(instr.dst).union(LocSet::reg(instr.src));
        // Walk backwards to the most recent write touching either register:
        // if it is the same copy (either direction), dst == src already
        // holds here and this mov does nothing.
        for j in (0..i).rev() {
            if !defs(prog[j]).intersects(pair) {
                continue;
            }
            let same_copy = prog[j].op == Op::Mov
                && ((prog[j].dst, prog[j].src) == (instr.dst, instr.src)
                    || (prog[j].dst, prog[j].src) == (instr.src, instr.dst));
            if same_copy {
                out.push(Diagnostic::at(
                    LintKind::RedundantMov,
                    i,
                    format!(
                        "`{}` copies a value already moved at {j}",
                        machine.format_instr(instr)
                    ),
                ));
            }
            break;
        }
    }
    out
}

/// Canonical-form and machine-shape notes.
fn style_lints(machine: &Machine, prog: &[Instr]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if instr.op == Op::Cmp && instr.dst.index() >= instr.src.index() {
            out.push(Diagnostic::at(
                LintKind::NonCanonicalCompare,
                i,
                format!(
                    "`{}` is outside the enumerator's canonical dst < src operand order",
                    machine.format_instr(instr)
                ),
            ));
        }
    }
    for s in machine.n()..machine.num_regs() {
        let reg = sortsynth_isa::Reg::new(s);
        let touched = prog.iter().any(|i| i.dst == reg || i.src == reg);
        if !touched {
            out.push(Diagnostic::program(
                LintKind::UnusedScratch,
                format!(
                    "scratch register {} is available but never used",
                    machine.reg_name(reg)
                ),
            ));
        }
    }
    out
}

impl Serialize for Severity {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Serialize for Diagnostic {
    fn serialize(&self) -> Value {
        Value::map([
            ("kind", Value::Str(self.kind.name().to_string())),
            ("severity", self.severity().serialize()),
            (
                "index",
                match self.index {
                    Some(i) => Value::Int(i as i64),
                    None => Value::Null,
                },
            ),
            ("message", Value::Str(self.message.clone())),
        ])
    }
}

impl Serialize for Comparator {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            Value::Int(self.min as i64),
            Value::Int(self.max as i64),
        ])
    }
}

impl Serialize for Report {
    fn serialize(&self) -> Value {
        Value::map([
            ("verdict", Value::Str(self.verdict.wire_name().to_string())),
            (
                "witness",
                match &self.verdict {
                    Verdict::RefutedZeroOne { witness } | Verdict::TieUnsafe { witness } => {
                        Value::Seq(witness.iter().map(|&v| Value::Int(v as i64)).collect())
                    }
                    _ => Value::Null,
                },
            ),
            (
                "network",
                match &self.network {
                    Some(net) => Value::Seq(net.iter().map(|c| c.serialize()).collect()),
                    None => Value::Null,
                },
            ),
            ("len", Value::Int(self.len as i64)),
            ("dce_len", Value::Int(self.dce_len as i64)),
            (
                "diagnostics",
                Value::Seq(self.diagnostics.iter().map(|d| d.serialize()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::Reg;

    fn cmov3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    const STALE_2_3: &str = "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                             mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                             cmovg r2 r1; cmovg r1 s1";

    #[test]
    fn stale_flags_program_is_flagged_without_permutations() {
        // Acceptance criterion: the §2.3 kernel draws an error-severity
        // diagnostic even though it passes every 0-1 vector.
        let m = cmov3();
        let prog = m.parse_program(STALE_2_3).unwrap();
        let report = verify(&m, &prog);
        assert!(report.has_errors(), "{:?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::DeadConditionalWrite && d.index == Some(7)));
        // And the 0-1 verdict alone would have let it through.
        assert_eq!(report.verdict, Verdict::PassedZeroOne);
        assert!(!report.verdict.certified());
    }

    #[test]
    fn minmax_network_is_certified() {
        // Acceptance criterion: a known-correct n = 3 min/max network is
        // certified via the network path.
        let m = Machine::new(3, 1, IsaMode::MinMax);
        let prog = m
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; \
                 mov s1 r2; min r2 r3; max r3 s1; \
                 mov s1 r1; min r1 r2; max r2 s1",
            )
            .unwrap();
        let report = verify(&m, &prog);
        assert_eq!(report.verdict, Verdict::CertifiedNetwork);
        assert!(report.verdict.certified());
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(report.network.as_ref().map(Vec::len), Some(3));
        assert_eq!(report.dce_len, report.len);
    }

    #[test]
    fn free_form_minmax_still_certifies_via_zero_one() {
        // Not in network shape (no scratch round-trip) but min/max-mode, so
        // a clean 0-1 run is still a proof.
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let prog = m.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        assert_eq!(verify(&m, &prog).verdict, Verdict::CertifiedNetwork);
        // Same semantics with an interleaved unrelated copy, so the block
        // matcher fails: falls back to the 0-1 certificate.
        let m2 = Machine::new(2, 2, IsaMode::MinMax);
        let prog = m2
            .parse_program("mov s1 r1; mov s2 r2; min r1 r2; max r2 s1")
            .unwrap();
        let report = verify(&m2, &prog);
        assert_eq!(report.verdict, Verdict::CertifiedZeroOne);
    }

    #[test]
    fn wrong_programs_are_refuted_with_a_witness() {
        // n = 2: the failing 0-1 input is tie-free, so the static verdict
        // is a sound refutation.
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m.parse_program("mov r1 r2").unwrap();
        let report = verify(&m, &prog);
        let Verdict::RefutedZeroOne { witness } = &report.verdict else {
            panic!("expected refutation, got {:?}", report.verdict);
        };
        assert_eq!(witness.len(), 2);
        assert!(report.verdict.refuted());
    }

    #[test]
    fn tied_witnesses_on_cmov_programs_are_not_refutations() {
        // n = 3: every 0-1 vector has tied entries, so the same garbage
        // program only earns the tie-unsafe verdict statically — but the
        // gate's exhaustive fallback still keeps it out of the cache.
        let m = cmov3();
        let prog = m.parse_program("mov r1 r2").unwrap();
        let report = verify(&m, &prog);
        let Verdict::TieUnsafe { witness } = &report.verdict else {
            panic!("expected tie-unsafe, got {:?}", report.verdict);
        };
        assert_eq!(witness.len(), 3);
        assert!(!report.verdict.refuted());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::TieUnsafe));
        let Err(GateError::Refuted(perm)) = gate(&m, &prog) else {
            panic!("gate must fall back to the permutation oracle");
        };
        assert_eq!(perm.len(), 3);
    }

    #[test]
    fn malformed_programs_are_unchecked() {
        let m = cmov3();
        let prog = vec![Instr::new(Op::Min, Reg::new(0), Reg::new(1))];
        let report = verify(&m, &prog);
        assert_eq!(report.verdict, Verdict::Unchecked);
        assert!(report.has_errors());
        let prog = vec![Instr::new(Op::Mov, Reg::new(12), Reg::new(0))];
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.kind == LintKind::Malformed));
    }

    #[test]
    fn gate_admits_correct_and_rejects_garbage() {
        let m = cmov3();
        let good = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert_eq!(gate(&m, &good), Ok(()));
        let garbage = m.parse_program("mov r1 r2; mov r2 r3").unwrap();
        assert!(matches!(gate(&m, &garbage), Err(GateError::Refuted(_))));
        let foreign = vec![Instr::new(Op::Max, Reg::new(0), Reg::new(1))];
        assert!(matches!(gate(&m, &foreign), Err(GateError::Malformed(_))));
        // The gate never rejects the §2.3 program (it passes 0-1) — that is
        // exactly the lemma's blind spot; `verify` is the stronger check.
        let stale = m.parse_program(STALE_2_3).unwrap();
        assert_eq!(gate(&m, &stale), Ok(()));
    }

    #[test]
    fn lint_catalog_examples() {
        let m = cmov3();
        // Dead write: the scratch copy is never read.
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::DeadWrite && d.index == Some(0)));
        // Write-after-write.
        let prog = m.parse_program("mov s1 r1; mov s1 r2; mov r1 s1").unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::WriteAfterWrite && d.index == Some(0)));
        // Unread flags.
        let prog = m
            .parse_program("cmp r1 r2; cmp r1 r3; cmovg r3 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::UnreadFlags && d.index == Some(0)));
        // Redundant mov (copy-back of an unmodified value).
        let prog = m
            .parse_program("mov s1 r1; mov r1 s1; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == LintKind::RedundantMov && d.index == Some(1)),
            "{:?}",
            report.diagnostics
        );
        // Non-canonical compare + unused scratch.
        let prog = m.parse_program("cmp r2 r1; cmovl r1 r2").unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::NonCanonicalCompare && d.index == Some(0)));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::UnusedScratch && d.index.is_none()));
    }

    #[test]
    fn dce_length_reported() {
        let m = cmov3();
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r2 r1; mov s1 r3")
            .unwrap();
        let report = verify(&m, &prog);
        assert_eq!(report.len, 4);
        assert_eq!(report.dce_len, 2);
    }

    #[test]
    fn report_serializes() {
        let m = cmov3();
        let prog = m.parse_program(STALE_2_3).unwrap();
        let report = verify(&m, &prog);
        let value = report.serialize();
        assert_eq!(
            value.required("verdict").ok().cloned(),
            Some(Value::Str("passed-zero-one".to_string()))
        );
        let Some(Value::Seq(diags)) = value.get("diagnostics") else {
            panic!("diagnostics should serialize as a sequence");
        };
        assert_eq!(diags.len(), report.diagnostics.len());
    }
}
