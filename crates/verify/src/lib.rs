//! Static analysis for synthesized sorting kernels.
//!
//! The paper's correctness story is exhaustive permutation testing, plus the
//! §2.3 observation that 0-1 testing alone is unsound for cmp/cmov programs.
//! This crate adds the complementary static story:
//!
//! - [`dataflow`]: backward def-use/liveness over registers *and* flags.
//! - [`absint`]: a tiny abstract interpreter; [`zero_one`] instantiates it
//!   with the 0-1 collecting domain (a sound sortedness proof for min/max
//!   kernels, a necessary check for cmov kernels), [`flags`] with a
//!   flag-taint domain that catches the §2.3 stale-flag bug class
//!   statically.
//! - [`network`]: comparator-network extraction; a whole-program network
//!   that sorts all 2^n boolean vectors is certified correct on all inputs.
//! - [`valueflow`]: symbolic value-flow analysis — exact
//!   permutation-correctness certificates ([`PermCertificate`]) that decide
//!   the cmp/cmov programs the 0-1 pipeline cannot, and compose across
//!   stitched blocks ([`verify_stitched`]).
//! - [`dce`]: liveness-driven dead-code elimination.
//!
//! [`verify`] bundles everything into a [`Report`] — a [`Verdict`] plus a
//! catalog of structured [`Diagnostic`]s — and [`gate`] is the static
//! admission check used by the kernel cache ([`gate_detail`] additionally
//! reports which analysis stage decided).

pub mod absint;
pub mod dataflow;
mod dce;
pub mod flags;
pub mod network;
pub mod valueflow;
pub mod zero_one;

use std::error::Error;
use std::fmt;
use std::time::Instant;

use serde::{Serialize, Value};
use sortsynth_isa::{Instr, IsaMode, Machine, Op};

pub use dce::dce;
pub use network::{extract_network, network_witness, Comparator};
pub use valueflow::{
    analyze as value_flow, verify_stitched, Analysis, BlockSpec, PermCertificate, StitchError,
};
pub use zero_one::zero_one_witness;

use dataflow::{defs, liveness, Liveness, LocSet};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/canonicalization notes; never affects correctness.
    Info,
    /// Removable or suspicious code; the kernel may still be correct.
    Warning,
    /// The program is malformed or almost certainly wrong.
    Error,
}

impl Severity {
    /// Stable lowercase name for wire formats and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Instruction outside the machine's ISA or register out of range.
    Malformed,
    /// A `cmov` executes before any `cmp` has set the flags.
    CmovWithoutCmp,
    /// A conditional write killed by a same-guard write with no read in
    /// between — the static signature of the §2.3 stale-flag bug.
    DeadConditionalWrite,
    /// A register write that is never read before being overwritten or
    /// reaching exit.
    DeadWrite,
    /// A dead write specifically killed by a later unconditional write.
    WriteAfterWrite,
    /// A `cmp` whose flags are never read.
    UnreadFlags,
    /// A flag read after an operand of the guarding `cmp` was overwritten.
    StaleFlagRead,
    /// A `mov` that copies a value already in place.
    RedundantMov,
    /// A `cmp` outside the enumerator's canonical `dst < src` operand order.
    NonCanonicalCompare,
    /// A scratch register the machine provides but the program never touches.
    UnusedScratch,
    /// A cmp/cmov program that fails a *tied* 0-1 input. Strict-comparison
    /// tie-breaking is not monotone, so this does not refute correctness on
    /// the paper's duplicate-free permutation domain — but the kernel is not
    /// a total sorting function.
    TieUnsafe,
    /// The symbolic value-flow analyzer exceeded its budget before
    /// exhausting the order-class tree: permutation correctness is neither
    /// proved nor refuted statically.
    UnprovablePerm,
    /// A selection instruction (`cmov`/`min`/`max`) that never changes the
    /// machine state on any input, per the symbolic value-flow analysis.
    RedundantSelection,
}

impl LintKind {
    /// Stable kebab-case name for wire formats and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::Malformed => "malformed",
            LintKind::CmovWithoutCmp => "cmov-without-cmp",
            LintKind::DeadConditionalWrite => "dead-conditional-write",
            LintKind::DeadWrite => "dead-write",
            LintKind::WriteAfterWrite => "write-after-write",
            LintKind::UnreadFlags => "unread-flags",
            LintKind::StaleFlagRead => "stale-flag-read",
            LintKind::RedundantMov => "redundant-mov",
            LintKind::NonCanonicalCompare => "non-canonical-compare",
            LintKind::UnusedScratch => "unused-scratch",
            LintKind::TieUnsafe => "tie-unsafe",
            LintKind::UnprovablePerm => "unprovable-perm",
            LintKind::RedundantSelection => "redundant-selection",
        }
    }

    /// The fixed severity of this lint kind.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::Malformed | LintKind::CmovWithoutCmp | LintKind::DeadConditionalWrite => {
                Severity::Error
            }
            LintKind::DeadWrite
            | LintKind::WriteAfterWrite
            | LintKind::UnreadFlags
            | LintKind::StaleFlagRead
            | LintKind::RedundantMov
            | LintKind::TieUnsafe
            | LintKind::UnprovablePerm
            | LintKind::RedundantSelection => Severity::Warning,
            LintKind::NonCanonicalCompare | LintKind::UnusedScratch => Severity::Info,
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub kind: LintKind,
    /// The instruction it anchors to (`None` for whole-program findings).
    pub index: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A finding anchored at instruction `index`.
    pub fn at(kind: LintKind, index: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            index: Some(index),
            message: message.into(),
        }
    }

    /// A whole-program finding.
    pub fn program(kind: LintKind, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            index: None,
            message: message.into(),
        }
    }

    /// The severity inherited from the lint kind.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(
                f,
                "{}[{}] at {}: {}",
                self.severity().name(),
                self.kind.name(),
                i,
                self.message
            ),
            None => write!(
                f,
                "{}[{}]: {}",
                self.severity().name(),
                self.kind.name(),
                self.message
            ),
        }
    }
}

/// What the analyzer can say about sortedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The whole program is a comparator network that sorts all 0-1
    /// vectors: **proved correct on every input** (0-1 principle for
    /// networks; both ISAs).
    CertifiedNetwork,
    /// Every 0-1 vector sorts and the program is min/max-mode: **proved
    /// correct on every input** (min/max programs are lattice polynomials,
    /// determined by their 0-1 behaviour).
    CertifiedZeroOne,
    /// Every 0-1 vector sorts, but the program is free-form cmp/cmov, where
    /// the 0-1 lemma is only necessary (§2.3): *not* a proof. Only reached
    /// when the symbolic value-flow analyzer also bailed out.
    PassedZeroOne,
    /// The symbolic value-flow analyzer discharged every order class:
    /// **proved correct on every permutation of `1..=n`** (the paper's test
    /// domain). Says nothing about inputs with tied keys — a separate
    /// `tie-unsafe` diagnostic records a tied failure when one exists.
    CertifiedPermutations {
        /// Order classes discharged (`n!` for a monolithic certificate).
        classes: u64,
    },
    /// The symbolic value-flow analyzer found a permutation of `1..=n` the
    /// program fails to sort: **proved incorrect** on the paper's test
    /// domain, with no enumeration of inputs.
    RefutedPermutation {
        /// The failing permutation.
        witness: Vec<u8>,
    },
    /// An input the program fails to sort that also transfers to the
    /// paper's duplicate-free permutation domain: **proved incorrect**.
    /// Sound in three cases: the program is a comparator network (exact
    /// min/max semantics, monotone), the ISA is min/max mode (likewise
    /// monotone), or the witness itself has no ties.
    RefutedZeroOne {
        /// The failing {0,1}^n input.
        witness: Vec<u8>,
    },
    /// A cmp/cmov program that sorts every duplicate-free input tested but
    /// fails a *tied* 0-1 vector. Strict-comparison tie-breaking is not
    /// monotone, so the failure does not project back to a permutation:
    /// correctness on the paper's test domain is **undetermined**, but the
    /// kernel provably mis-sorts inputs with equal keys.
    TieUnsafe {
        /// The failing tied {0,1}^n input.
        witness: Vec<u8>,
    },
    /// The program is malformed; no semantic analysis ran.
    Unchecked,
}

impl Verdict {
    /// Stable kebab-case name for wire formats and CLI output.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Verdict::CertifiedNetwork => "certified-network",
            Verdict::CertifiedZeroOne => "certified-zero-one",
            Verdict::PassedZeroOne => "passed-zero-one",
            Verdict::CertifiedPermutations { .. } => "certified-perm",
            Verdict::RefutedPermutation { .. } => "refuted-perm",
            Verdict::RefutedZeroOne { .. } => "refuted-zero-one",
            Verdict::TieUnsafe { .. } => "tie-unsafe",
            Verdict::Unchecked => "unchecked",
        }
    }

    /// Whether this verdict proves the program sorts every input, tied
    /// keys included.
    pub fn certified(&self) -> bool {
        matches!(self, Verdict::CertifiedNetwork | Verdict::CertifiedZeroOne)
    }

    /// Whether this verdict proves the program sorts every permutation of
    /// `1..=n` — the paper's correctness bar. Implied by [`Self::certified`].
    pub fn perm_certified(&self) -> bool {
        self.certified() || matches!(self, Verdict::CertifiedPermutations { .. })
    }

    /// Whether this verdict proves the program incorrect on the paper's
    /// permutation test domain.
    pub fn refuted(&self) -> bool {
        matches!(
            self,
            Verdict::RefutedZeroOne { .. } | Verdict::RefutedPermutation { .. }
        )
    }
}

/// The full analysis result for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Sortedness verdict.
    pub verdict: Verdict,
    /// The extracted comparator network, when the whole program is one.
    pub network: Option<Vec<Comparator>>,
    /// All findings, ordered by instruction index.
    pub diagnostics: Vec<Diagnostic>,
    /// Program length in instructions.
    pub len: usize,
    /// Length after dead-code elimination (`< len` means removable code).
    pub dce_len: usize,
}

impl Report {
    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }
}

/// Runs the whole analysis pipeline over `prog`.
pub fn verify(machine: &Machine, prog: &[Instr]) -> Report {
    let bad = malformed(machine, prog);
    if !bad.is_empty() {
        // Semantic passes assume a well-formed program (out-of-range
        // registers would corrupt the packed state); stop here.
        return Report {
            verdict: Verdict::Unchecked,
            network: None,
            diagnostics: bad,
            len: prog.len(),
            dce_len: prog.len(),
        };
    }

    let lv = liveness(machine, prog);
    let mut diagnostics = liveness_lints(machine, prog, &lv);
    diagnostics.extend(redundant_movs(machine, prog, &lv));
    diagnostics.extend(style_lints(machine, prog));
    diagnostics.extend(flags::flag_lints(machine, prog));

    let network = extract_network(machine, prog);
    let verdict = match &network {
        // A recognized network computes exact min/max per comparator (ties
        // included), so a network refutation is sound on every domain.
        Some(net) => match network_witness(machine.n(), net) {
            None => Verdict::CertifiedNetwork,
            Some(witness) => Verdict::RefutedZeroOne { witness },
        },
        None => match zero_one_witness(machine, prog) {
            Some(witness) if refutation_transfers(machine.mode(), &witness) => {
                Verdict::RefutedZeroOne { witness }
            }
            // A tied-only witness on a cmp/cmov program: inconclusive for
            // the 0-1 pipeline, decided exactly by the symbolic analyzer.
            Some(witness) => symbolic_verdict(machine, prog, Some(witness), &mut diagnostics),
            None => match machine.mode() {
                IsaMode::MinMax => Verdict::CertifiedZeroOne,
                // A clean 0-1 run proves nothing for cmp/cmov (§2.3); the
                // symbolic analyzer closes exactly that gap.
                IsaMode::Cmov => symbolic_verdict(machine, prog, None, &mut diagnostics),
            },
        },
    };
    diagnostics.sort_by_key(|d| (d.index.unwrap_or(usize::MAX), d.kind.name()));

    Report {
        verdict,
        network,
        dce_len: dce(machine, prog).len(),
        diagnostics,
        len: prog.len(),
    }
}

/// Decides a cmp/cmov program the 0-1 pipeline left open (clean run, or a
/// tied-only witness) with the symbolic value-flow analyzer, attaching the
/// analysis-derived diagnostics.
fn symbolic_verdict(
    machine: &Machine,
    prog: &[Instr],
    tied: Option<Vec<u8>>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Verdict {
    let vf = valueflow::analyze_with(machine, prog, valueflow::Limits::default());
    match vf.analysis {
        Analysis::Certified(cert) => {
            for i in vf.ineffective {
                diagnostics.push(Diagnostic::at(
                    LintKind::RedundantSelection,
                    i,
                    format!(
                        "`{}` never changes the machine state on any input \
                         (all {} symbolic order classes)",
                        machine.format_instr(prog[i]),
                        cert.classes
                    ),
                ));
            }
            if let Some(witness) = tied {
                diagnostics.push(Diagnostic::program(
                    LintKind::TieUnsafe,
                    format!(
                        "fails tied 0-1 input {witness:?}; perm-certified, so the kernel \
                         sorts every duplicate-free input but mis-sorts equal keys"
                    ),
                ));
            }
            Verdict::CertifiedPermutations {
                classes: cert.classes,
            }
        }
        Analysis::Refuted { witness, .. } => Verdict::RefutedPermutation { witness },
        Analysis::Bailout { classes } => {
            diagnostics.push(Diagnostic::program(
                LintKind::UnprovablePerm,
                format!(
                    "symbolic value-flow analysis exceeded its budget after {classes} \
                     order classes; permutation correctness undetermined statically"
                ),
            ));
            match tied {
                Some(witness) => {
                    diagnostics.push(Diagnostic::program(
                        LintKind::TieUnsafe,
                        format!(
                            "fails tied 0-1 input {witness:?}; correct on distinct keys at \
                             most (strict comparisons are not monotone, so this is not a \
                             refutation)"
                        ),
                    ));
                    Verdict::TieUnsafe { witness }
                }
                None => Verdict::PassedZeroOne,
            }
        }
    }
}

/// Whether a failing 0-1 input refutes correctness on the duplicate-free
/// permutation domain the paper tests. Min/max programs are monotone, so
/// any 0-1 failure projects back to a failing permutation; for cmp/cmov the
/// projection argument needs a tie-free witness (order-isomorphic to a
/// permutation, on which a comparison-based program behaves identically).
fn refutation_transfers(mode: IsaMode, witness: &[u8]) -> bool {
    if mode == IsaMode::MinMax {
        return true;
    }
    let mut sorted = witness.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// Why [`gate`] rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// Not a valid program for the machine.
    Malformed(String),
    /// Fails to sort the contained input — provably not a sorting kernel.
    /// The witness is a 0-1 vector when the network/0-1 paths decided, or
    /// a permutation of `1..=n` when the symbolic analyzer (or the oracle
    /// fallback) did.
    Refuted(Vec<u8>),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Malformed(msg) => write!(f, "malformed kernel: {msg}"),
            GateError::Refuted(witness) => {
                write!(f, "kernel fails to sort input {witness:?}")
            }
        }
    }
}

impl Error for GateError {}

/// Version of the [`gate`] decision procedure. Bump on any change to what
/// the gate accepts or rejects — consumers that checksum "this program
/// passed the gate" records (the kernel cache) key their stamps on it, so a
/// bump forces every stamped record to be re-analyzed.
pub const GATE_VERSION: u32 = 2;

/// Which analysis stage decided a [`gate_detail`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatePath {
    /// Rejected before any semantic analysis ran.
    Malformed,
    /// Decided by the comparator-network 0-1 certificate.
    Network,
    /// Decided by the 0-1 run (clean min/max run, or a transferring
    /// witness).
    ZeroOne,
    /// Decided by the symbolic value-flow analyzer — no input enumeration.
    Symbolic,
    /// The symbolic analyzer bailed out; the exhaustive permutation oracle
    /// decided.
    Oracle,
}

impl GatePath {
    /// Stable lowercase name for logs and test assertions.
    pub fn name(self) -> &'static str {
        match self {
            GatePath::Malformed => "malformed",
            GatePath::Network => "network",
            GatePath::ZeroOne => "zero-one",
            GatePath::Symbolic => "symbolic",
            GatePath::Oracle => "oracle",
        }
    }
}

/// The admission check for cached/served kernels. Never rejects a kernel
/// that sorts every permutation (the paper's correctness bar), and never
/// admits one that does not.
///
/// Static paths decide in order of cost: malformed programs are rejected
/// outright; a recognized comparator network is decided by its 0-1 network
/// certificate; the 0-1 run decides whenever its answer transfers to the
/// permutation domain (min/max mode, or a tie-free witness). Every
/// remaining cmp/cmov case — a clean 0-1 run, which the §2.3 stale-flag
/// kernel shows is *not* a proof, or a tied-only witness, which a
/// permutation-correct kernel like AlphaDev's sort3 legitimately produces —
/// is decided exactly by the symbolic value-flow analyzer. The exhaustive
/// permutation oracle only runs if the analyzer exhausts its budget first.
pub fn gate(machine: &Machine, prog: &[Instr]) -> Result<(), GateError> {
    gate_detail(machine, prog).0
}

/// [`gate`] plus the [`GatePath`] that decided. Maintains the
/// `sortsynth_verify_*` counters and the gate-latency histogram.
pub fn gate_detail(machine: &Machine, prog: &[Instr]) -> (Result<(), GateError>, GatePath) {
    let started = Instant::now();
    let decided = gate_stages(machine, prog);
    let registry = sortsynth_obs::registry();
    sortsynth_obs::names::verify_gate_seconds().observe(started.elapsed().as_secs_f64());
    match decided {
        (Ok(()), GatePath::Symbolic) => registry
            .counter(
                sortsynth_obs::names::VERIFY_SYMBOLIC_CERTIFIED_TOTAL,
                "Gate admissions decided by a symbolic permutation certificate.",
            )
            .inc(),
        (Err(_), GatePath::Symbolic) => registry
            .counter(
                sortsynth_obs::names::VERIFY_SYMBOLIC_REFUTED_TOTAL,
                "Gate rejections decided by a symbolic permutation refutation.",
            )
            .inc(),
        (_, GatePath::Oracle) => {
            registry
                .counter(
                    sortsynth_obs::names::VERIFY_SYMBOLIC_BAILOUT_TOTAL,
                    "Symbolic analyses that exceeded their budget inside the gate.",
                )
                .inc();
            registry
                .counter(
                    sortsynth_obs::names::VERIFY_ORACLE_TOTAL,
                    "Gate decisions that fell back to the exhaustive permutation oracle.",
                )
                .inc();
        }
        _ => {}
    }
    decided
}

fn gate_stages(machine: &Machine, prog: &[Instr]) -> (Result<(), GateError>, GatePath) {
    if let Some(d) = malformed(machine, prog).into_iter().next() {
        return (Err(GateError::Malformed(d.message)), GatePath::Malformed);
    }
    if let Some(net) = extract_network(machine, prog) {
        let result = match network_witness(machine.n(), &net) {
            Some(witness) => Err(GateError::Refuted(witness)),
            None => Ok(()),
        };
        return (result, GatePath::Network);
    }
    match zero_one_witness(machine, prog) {
        Some(witness) if refutation_transfers(machine.mode(), &witness) => {
            return (Err(GateError::Refuted(witness)), GatePath::ZeroOne)
        }
        None if machine.mode() == IsaMode::MinMax => return (Ok(()), GatePath::ZeroOne),
        _ => {}
    }
    match valueflow::analyze(machine, prog) {
        Analysis::Certified(_) => (Ok(()), GatePath::Symbolic),
        Analysis::Refuted { witness, .. } => (Err(GateError::Refuted(witness)), GatePath::Symbolic),
        Analysis::Bailout { .. } => {
            let result = match machine.counterexamples(prog).into_iter().next() {
                Some(witness) => Err(GateError::Refuted(witness)),
                None => Ok(()),
            };
            (result, GatePath::Oracle)
        }
    }
}

/// Structural validity: every op in the machine's ISA, every register in
/// range.
fn malformed(machine: &Machine, prog: &[Instr]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, instr) in prog.iter().enumerate() {
        if !machine.mode().ops().contains(&instr.op) {
            out.push(Diagnostic::at(
                LintKind::Malformed,
                i,
                format!(
                    "`{}` is not in the {} instruction set",
                    instr.op,
                    machine.mode().wire_name()
                ),
            ));
        } else if instr.dst.index() >= machine.num_regs() || instr.src.index() >= machine.num_regs()
        {
            out.push(Diagnostic::at(
                LintKind::Malformed,
                i,
                format!(
                    "register index out of range (dst {}, src {}, machine has {})",
                    instr.dst.index(),
                    instr.src.index(),
                    machine.num_regs()
                ),
            ));
        }
    }
    out
}

/// Dead-instruction findings from the liveness pass.
fn liveness_lints(machine: &Machine, prog: &[Instr], lv: &Liveness) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if !lv.is_dead(prog, i) {
            continue;
        }
        let rendered = machine.format_instr(instr);
        if instr.op == Op::Cmp {
            out.push(Diagnostic::at(
                LintKind::UnreadFlags,
                i,
                format!("flags set by `{rendered}` are never read"),
            ));
        } else if instr.dst == instr.src {
            let kind = if instr.op == Op::Mov {
                LintKind::RedundantMov
            } else {
                LintKind::DeadWrite
            };
            out.push(Diagnostic::at(
                kind,
                i,
                format!("`{rendered}` is a self-operand no-op"),
            ));
        } else {
            // A dead write is only *killed* by a later non-reading
            // overwrite, which on this ISA is exactly `mov dst, _`; any
            // other reference would have kept it live.
            let killed = prog[i + 1..]
                .iter()
                .any(|later| later.op == Op::Mov && later.dst == instr.dst);
            let kind = if killed {
                LintKind::WriteAfterWrite
            } else {
                LintKind::DeadWrite
            };
            let target = machine.reg_name(instr.dst);
            let why = if killed {
                "overwritten before any read"
            } else {
                "never read before exit"
            };
            out.push(Diagnostic::at(
                kind,
                i,
                format!("`{rendered}` writes {target} but the value is {why}"),
            ));
        }
    }
    out
}

/// Live `mov`s that copy a value already in place.
fn redundant_movs(machine: &Machine, prog: &[Instr], lv: &Liveness) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if instr.op != Op::Mov || instr.dst == instr.src || lv.is_dead(prog, i) {
            continue;
        }
        let pair = LocSet::reg(instr.dst).union(LocSet::reg(instr.src));
        // Walk backwards to the most recent write touching either register:
        // if it is the same copy (either direction), dst == src already
        // holds here and this mov does nothing.
        for j in (0..i).rev() {
            if !defs(prog[j]).intersects(pair) {
                continue;
            }
            let same_copy = prog[j].op == Op::Mov
                && ((prog[j].dst, prog[j].src) == (instr.dst, instr.src)
                    || (prog[j].dst, prog[j].src) == (instr.src, instr.dst));
            if same_copy {
                out.push(Diagnostic::at(
                    LintKind::RedundantMov,
                    i,
                    format!(
                        "`{}` copies a value already moved at {j}",
                        machine.format_instr(instr)
                    ),
                ));
            }
            break;
        }
    }
    out
}

/// Canonical-form and machine-shape notes.
fn style_lints(machine: &Machine, prog: &[Instr]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, &instr) in prog.iter().enumerate() {
        if instr.op == Op::Cmp && instr.dst.index() >= instr.src.index() {
            out.push(Diagnostic::at(
                LintKind::NonCanonicalCompare,
                i,
                format!(
                    "`{}` is outside the enumerator's canonical dst < src operand order",
                    machine.format_instr(instr)
                ),
            ));
        }
    }
    for s in machine.n()..machine.num_regs() {
        let reg = sortsynth_isa::Reg::new(s);
        let touched = prog.iter().any(|i| i.dst == reg || i.src == reg);
        if !touched {
            out.push(Diagnostic::program(
                LintKind::UnusedScratch,
                format!(
                    "scratch register {} is available but never used",
                    machine.reg_name(reg)
                ),
            ));
        }
    }
    out
}

impl Serialize for Severity {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Serialize for Diagnostic {
    fn serialize(&self) -> Value {
        Value::map([
            ("kind", Value::Str(self.kind.name().to_string())),
            ("severity", self.severity().serialize()),
            (
                "index",
                match self.index {
                    Some(i) => Value::Int(i as i64),
                    None => Value::Null,
                },
            ),
            ("message", Value::Str(self.message.clone())),
        ])
    }
}

impl Serialize for Comparator {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            Value::Int(self.min as i64),
            Value::Int(self.max as i64),
        ])
    }
}

impl Serialize for Report {
    fn serialize(&self) -> Value {
        Value::map([
            ("verdict", Value::Str(self.verdict.wire_name().to_string())),
            (
                "witness",
                match &self.verdict {
                    Verdict::RefutedZeroOne { witness }
                    | Verdict::RefutedPermutation { witness }
                    | Verdict::TieUnsafe { witness } => {
                        Value::Seq(witness.iter().map(|&v| Value::Int(v as i64)).collect())
                    }
                    _ => Value::Null,
                },
            ),
            (
                "classes",
                match &self.verdict {
                    Verdict::CertifiedPermutations { classes } => Value::Int(*classes as i64),
                    _ => Value::Null,
                },
            ),
            (
                "network",
                match &self.network {
                    Some(net) => Value::Seq(net.iter().map(|c| c.serialize()).collect()),
                    None => Value::Null,
                },
            ),
            ("len", Value::Int(self.len as i64)),
            ("dce_len", Value::Int(self.dce_len as i64)),
            (
                "diagnostics",
                Value::Seq(self.diagnostics.iter().map(|d| d.serialize()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::Reg;

    fn cmov3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    const STALE_2_3: &str = "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                             mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                             cmovg r2 r1; cmovg r1 s1";

    #[test]
    fn stale_flags_program_is_flagged_without_permutations() {
        // Acceptance criterion: the §2.3 kernel draws an error-severity
        // diagnostic even though it passes every 0-1 vector.
        let m = cmov3();
        let prog = m.parse_program(STALE_2_3).unwrap();
        let report = verify(&m, &prog);
        assert!(report.has_errors(), "{:?}", report.diagnostics);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::DeadConditionalWrite && d.index == Some(7)));
        // The 0-1 run alone would have let it through (it passes every 0-1
        // vector); the symbolic analyzer refutes it outright with a
        // concrete failing permutation.
        let Verdict::RefutedPermutation { witness } = &report.verdict else {
            panic!("expected a symbolic refutation, got {:?}", report.verdict);
        };
        assert!(!m.is_sorted(m.run(&prog, m.initial_state(witness))));
        assert!(report.verdict.refuted());
        assert!(!report.verdict.certified());
    }

    #[test]
    fn minmax_network_is_certified() {
        // Acceptance criterion: a known-correct n = 3 min/max network is
        // certified via the network path.
        let m = Machine::new(3, 1, IsaMode::MinMax);
        let prog = m
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; \
                 mov s1 r2; min r2 r3; max r3 s1; \
                 mov s1 r1; min r1 r2; max r2 s1",
            )
            .unwrap();
        let report = verify(&m, &prog);
        assert_eq!(report.verdict, Verdict::CertifiedNetwork);
        assert!(report.verdict.certified());
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(report.network.as_ref().map(Vec::len), Some(3));
        assert_eq!(report.dce_len, report.len);
    }

    #[test]
    fn free_form_minmax_still_certifies_via_zero_one() {
        // Not in network shape (no scratch round-trip) but min/max-mode, so
        // a clean 0-1 run is still a proof.
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let prog = m.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        assert_eq!(verify(&m, &prog).verdict, Verdict::CertifiedNetwork);
        // Same semantics with an interleaved unrelated copy, so the block
        // matcher fails: falls back to the 0-1 certificate.
        let m2 = Machine::new(2, 2, IsaMode::MinMax);
        let prog = m2
            .parse_program("mov s1 r1; mov s2 r2; min r1 r2; max r2 s1")
            .unwrap();
        let report = verify(&m2, &prog);
        assert_eq!(report.verdict, Verdict::CertifiedZeroOne);
    }

    #[test]
    fn wrong_programs_are_refuted_with_a_witness() {
        // n = 2: the failing 0-1 input is tie-free, so the static verdict
        // is a sound refutation.
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m.parse_program("mov r1 r2").unwrap();
        let report = verify(&m, &prog);
        let Verdict::RefutedZeroOne { witness } = &report.verdict else {
            panic!("expected refutation, got {:?}", report.verdict);
        };
        assert_eq!(witness.len(), 2);
        assert!(report.verdict.refuted());
    }

    #[test]
    fn tied_witnesses_on_cmov_programs_are_not_refutations() {
        // n = 3: every 0-1 vector has tied entries, so the 0-1 pipeline
        // cannot refute the garbage program — the symbolic analyzer decides
        // it exactly, with a concrete failing permutation and no oracle.
        let m = cmov3();
        let prog = m.parse_program("mov r1 r2").unwrap();
        let report = verify(&m, &prog);
        let Verdict::RefutedPermutation { witness } = &report.verdict else {
            panic!("expected a symbolic refutation, got {:?}", report.verdict);
        };
        assert_eq!(witness.len(), 3);
        assert!(report.verdict.refuted());
        let (result, path) = gate_detail(&m, &prog);
        assert_eq!(path, GatePath::Symbolic);
        let Err(GateError::Refuted(perm)) = result else {
            panic!("gate must reject via the symbolic path");
        };
        assert_eq!(perm.len(), 3);
    }

    #[test]
    fn tie_unsafe_kernels_are_perm_certified_without_the_oracle() {
        // AlphaDev's sort3: perm-correct but fails tied 0-1 inputs — the
        // case that used to force the n! oracle. The symbolic certificate
        // decides it, keeps the tie-unsafe diagnostic, and the gate admits
        // it on the symbolic path.
        let m = cmov3();
        let prog = m
            .parse_program(
                "mov s1 r2; cmp r1 r2; cmovg s1 r1; cmovl r2 r1; \
                 mov r1 r2; cmp r1 r3; cmovl r2 r3; cmovg r1 r3; \
                 cmp r2 s1; cmovl r3 s1; cmovg r2 s1",
            )
            .unwrap();
        let report = verify(&m, &prog);
        let Verdict::CertifiedPermutations { classes } = report.verdict else {
            panic!(
                "expected a permutation certificate, got {:?}",
                report.verdict
            );
        };
        assert_eq!(classes, 6);
        assert!(report.verdict.perm_certified());
        assert!(!report.verdict.certified());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::TieUnsafe));
        assert_eq!(gate_detail(&m, &prog), (Ok(()), GatePath::Symbolic));
    }

    #[test]
    fn malformed_programs_are_unchecked() {
        let m = cmov3();
        let prog = vec![Instr::new(Op::Min, Reg::new(0), Reg::new(1))];
        let report = verify(&m, &prog);
        assert_eq!(report.verdict, Verdict::Unchecked);
        assert!(report.has_errors());
        let prog = vec![Instr::new(Op::Mov, Reg::new(12), Reg::new(0))];
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.kind == LintKind::Malformed));
    }

    #[test]
    fn gate_admits_correct_and_rejects_garbage() {
        let m = cmov3();
        let good = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert_eq!(gate(&m, &good), Ok(()));
        let garbage = m.parse_program("mov r1 r2; mov r2 r3").unwrap();
        assert!(matches!(gate(&m, &garbage), Err(GateError::Refuted(_))));
        let foreign = vec![Instr::new(Op::Max, Reg::new(0), Reg::new(1))];
        assert!(matches!(gate(&m, &foreign), Err(GateError::Malformed(_))));
        // The §2.3 program passes every 0-1 vector — the old gate admitted
        // it, violating its own contract. The symbolic stage closes that
        // soundness hole: refuted with a concrete permutation, statically.
        let stale = m.parse_program(STALE_2_3).unwrap();
        let (result, path) = gate_detail(&m, &stale);
        assert_eq!(path, GatePath::Symbolic);
        let Err(GateError::Refuted(witness)) = result else {
            panic!("the stale-flag kernel must be rejected");
        };
        assert!(!m.is_sorted(m.run(&stale, m.initial_state(&witness))));
    }

    #[test]
    fn gate_paths_for_cheap_static_decisions() {
        // A recognized network: decided on the network path.
        let m = cmov3();
        let net = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r2; cmp r2 r3; cmovg r2 r3; cmovg r3 s1; \
                 mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1",
            )
            .unwrap();
        assert_eq!(gate_detail(&m, &net), (Ok(()), GatePath::Network));
        // Clean min/max 0-1 run: decided on the 0-1 path, no symbolic walk.
        let mm = Machine::new(2, 2, IsaMode::MinMax);
        let prog = mm
            .parse_program("mov s1 r1; mov s2 r2; min r1 r2; max r2 s1")
            .unwrap();
        assert_eq!(gate_detail(&mm, &prog), (Ok(()), GatePath::ZeroOne));
    }

    #[test]
    fn lint_catalog_examples() {
        let m = cmov3();
        // Dead write: the scratch copy is never read.
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::DeadWrite && d.index == Some(0)));
        // Write-after-write.
        let prog = m.parse_program("mov s1 r1; mov s1 r2; mov r1 s1").unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::WriteAfterWrite && d.index == Some(0)));
        // Unread flags.
        let prog = m
            .parse_program("cmp r1 r2; cmp r1 r3; cmovg r3 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::UnreadFlags && d.index == Some(0)));
        // Redundant mov (copy-back of an unmodified value).
        let prog = m
            .parse_program("mov s1 r1; mov r1 s1; cmp r1 r2; cmovg r2 r1")
            .unwrap();
        let report = verify(&m, &prog);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.kind == LintKind::RedundantMov && d.index == Some(1)),
            "{:?}",
            report.diagnostics
        );
        // Non-canonical compare + unused scratch.
        let prog = m.parse_program("cmp r2 r1; cmovl r1 r2").unwrap();
        let report = verify(&m, &prog);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::NonCanonicalCompare && d.index == Some(0)));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == LintKind::UnusedScratch && d.index.is_none()));
    }

    #[test]
    fn dce_length_reported() {
        let m = cmov3();
        let prog = m
            .parse_program("mov s1 r1; cmp r1 r2; cmovg r2 r1; mov s1 r3")
            .unwrap();
        let report = verify(&m, &prog);
        assert_eq!(report.len, 4);
        assert_eq!(report.dce_len, 2);
    }

    #[test]
    fn report_serializes() {
        let m = cmov3();
        let prog = m.parse_program(STALE_2_3).unwrap();
        let report = verify(&m, &prog);
        let value = report.serialize();
        assert_eq!(
            value.required("verdict").ok().cloned(),
            Some(Value::Str("refuted-perm".to_string()))
        );
        let Some(Value::Seq(diags)) = value.get("diagnostics") else {
            panic!("diagnostics should serialize as a sequence");
        };
        assert_eq!(diags.len(), report.diagnostics.len());
    }
}
