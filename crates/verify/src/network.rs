//! Comparator-network extraction and the network sortedness certificate.
//!
//! Both ISAs express a compare-and-exchange on registers `(u, v)` — "put
//! min(u, v) in u and max(u, v) in v" — as a short fixed idiom through one
//! scratch register:
//!
//! - cmov, 4 instructions: `mov t u; cmp u v; cmovg u v; cmovg v t` (or the
//!   mirrored save-the-other-side form, or `cmovl` with the swapped compare)
//! - min/max, 3 instructions: `mov t u; min u v; max v t` (or the mirrored
//!   `max`-first form)
//!
//! When an entire program is a concatenation of such blocks its semantics
//! *on every input* equals the comparator network's — each block's scratch
//! and flags are produced and consumed inside the block. The 0-1 principle
//! holds unconditionally for comparator networks, so simulating the 2^n
//! boolean vectors through the extracted network certifies the program
//! sorts all inputs. This is the strongest and cheapest certificate the
//! analyzer can issue.

use sortsynth_isa::{Instr, Machine, Op, Reg};

/// A compare-and-exchange: after it, `min` holds the smaller value and
/// `max` the larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Value-register index receiving the minimum.
    pub min: u8,
    /// Value-register index receiving the maximum.
    pub max: u8,
}

/// Tries to read `prog` as a whole-program comparator network. Returns the
/// comparator sequence when every instruction belongs to a recognized
/// compare-and-exchange block, `None` otherwise.
pub fn extract_network(machine: &Machine, prog: &[Instr]) -> Option<Vec<Comparator>> {
    if prog.is_empty() {
        // The empty program is the empty network (sorts only n where every
        // input is already sorted — i.e. never, for n >= 2; the certificate
        // check below will refute it).
        return Some(Vec::new());
    }
    let mut comparators = Vec::new();
    let mut i = 0;
    while i < prog.len() {
        let cmov = prog
            .get(i..i + 4)
            .and_then(|block| match_cmov_block(machine, block));
        let minmax = prog
            .get(i..i + 3)
            .and_then(|block| match_minmax_block(machine, block));
        if let Some(c) = cmov {
            comparators.push(c);
            i += 4;
        } else if let Some(c) = minmax {
            comparators.push(c);
            i += 3;
        } else {
            return None;
        }
    }
    Some(comparators)
}

/// Whether `t` can serve as the block-local scratch for exchanging `u`, `v`:
/// distinct from both and not a value register (a value register's content
/// would be destroyed by the save).
fn valid_block(machine: &Machine, u: Reg, v: Reg, t: Reg) -> bool {
    u != v
        && t != u
        && t != v
        && u.index() < machine.n()
        && v.index() < machine.n()
        && t.index() >= machine.n()
}

/// Matches the 4-instruction cmov compare-and-exchange.
fn match_cmov_block(machine: &Machine, block: &[Instr]) -> Option<Comparator> {
    let [save, cmp, k1, k2] = block else {
        return None;
    };
    if save.op != Op::Mov || cmp.op != Op::Cmp {
        return None;
    }
    if k1.op != k2.op || !matches!(k1.op, Op::Cmovl | Op::Cmovg) {
        return None;
    }
    // Normalize the guard to "u > v": gt reads the compare as written,
    // lt swaps the operands.
    let (u, v) = match k1.op {
        Op::Cmovg => (cmp.dst, cmp.src),
        Op::Cmovl => (cmp.src, cmp.dst),
        _ => unreachable!(),
    };
    let t = save.dst;
    if !valid_block(machine, u, v, t) {
        return None;
    }
    // Form A saves u (the max side): u <- v, v <- old u.
    let form_a = save.src == u && (k1.dst, k1.src) == (u, v) && (k2.dst, k2.src) == (v, t);
    // Form B saves v (the min side): v <- u, u <- old v.
    let form_b = save.src == v && (k1.dst, k1.src) == (v, u) && (k2.dst, k2.src) == (u, t);
    if form_a || form_b {
        Some(Comparator {
            min: u.index(),
            max: v.index(),
        })
    } else {
        None
    }
}

/// Matches the 3-instruction min/max compare-and-exchange.
fn match_minmax_block(machine: &Machine, block: &[Instr]) -> Option<Comparator> {
    let [save, first, second] = block else {
        return None;
    };
    if save.op != Op::Mov {
        return None;
    }
    // The save preserves the register the first lattice op overwrites; the
    // second op rebuilds the complementary value from the saved copy.
    let complement = matches!(
        (first.op, second.op),
        (Op::Min, Op::Max) | (Op::Max, Op::Min)
    );
    let t = save.dst;
    let a = first.dst;
    let b = first.src;
    if !complement
        || save.src != a
        || second.dst != b
        || second.src != t
        || !valid_block(machine, a, b, t)
    {
        return None;
    }
    // min a b: a gets the minimum, so the comparator is (a, b); max a b
    // mirrors it.
    match first.op {
        Op::Min => Some(Comparator {
            min: a.index(),
            max: b.index(),
        }),
        Op::Max => Some(Comparator {
            min: b.index(),
            max: a.index(),
        }),
        _ => unreachable!(),
    }
}

/// Simulates the network on every {0,1}^n vector. Returns the first input
/// it fails to sort, or `None` when the network sorts all of them — which,
/// by the 0-1 principle for comparator networks, proves it sorts every
/// input.
pub fn network_witness(n: u8, comparators: &[Comparator]) -> Option<Vec<u8>> {
    (0u32..1 << n)
        .map(|bits| -> Vec<u8> { (0..n).map(|i| ((bits >> i) & 1) as u8).collect() })
        .find(|input| {
            let mut vals = input.clone();
            for c in comparators {
                let (lo, hi) = (c.min as usize, c.max as usize);
                if vals[lo] > vals[hi] {
                    vals.swap(lo, hi);
                }
            }
            vals.windows(2).any(|w| w[0] > w[1])
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn extracts_the_canonical_cmov_network() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let prog = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r2; cmp r2 r3; cmovg r2 r3; cmovg r3 s1; \
                 mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1",
            )
            .unwrap();
        let net = extract_network(&m, &prog).expect("network");
        assert_eq!(
            net,
            vec![
                Comparator { min: 0, max: 1 },
                Comparator { min: 1, max: 2 },
                Comparator { min: 0, max: 1 },
            ]
        );
        assert_eq!(network_witness(3, &net), None);
        assert!(m.is_correct(&prog));
    }

    #[test]
    fn extracts_the_minmax_network() {
        let m = Machine::new(3, 1, IsaMode::MinMax);
        let prog = m
            .parse_program(
                "mov s1 r1; min r1 r2; max r2 s1; \
                 mov s1 r2; min r2 r3; max r3 s1; \
                 mov s1 r1; min r1 r2; max r2 s1",
            )
            .unwrap();
        let net = extract_network(&m, &prog).expect("network");
        assert_eq!(
            net,
            vec![
                Comparator { min: 0, max: 1 },
                Comparator { min: 1, max: 2 },
                Comparator { min: 0, max: 1 },
            ]
        );
        assert_eq!(network_witness(3, &net), None);
    }

    #[test]
    fn mirrored_and_lt_forms_are_recognized() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        // Form B with a cmovl guard: save the min side, compare swapped.
        let prog = m
            .parse_program("mov s1 r2; cmp r2 r1; cmovl r2 r1; cmovl r1 s1")
            .unwrap();
        let net = extract_network(&m, &prog).expect("network");
        assert_eq!(net, vec![Comparator { min: 0, max: 1 }]);
        assert!(m.is_correct(&prog));

        let m = Machine::new(2, 1, IsaMode::MinMax);
        // Max-first form.
        let prog = m.parse_program("mov s1 r2; max r2 r1; min r1 s1").unwrap();
        let net = extract_network(&m, &prog).expect("network");
        assert_eq!(net, vec![Comparator { min: 0, max: 1 }]);
        assert!(m.is_correct(&prog));
    }

    #[test]
    fn incomplete_networks_certify_nothing() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        // Missing the final comparator: still a network, but it fails 0-1.
        let prog = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r2; cmp r2 r3; cmovg r2 r3; cmovg r3 s1",
            )
            .unwrap();
        let net = extract_network(&m, &prog).expect("network");
        let witness = network_witness(3, &net).expect("refutation");
        assert!(!m.is_sorted(m.run(&prog, m.initial_state(&witness))) || !m.is_correct(&prog));
    }

    #[test]
    fn free_form_programs_are_not_networks() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        // The §2.3 stale-flag kernel shares flags across blocks — the block
        // matcher must reject it.
        let stale = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert_eq!(extract_network(&m, &stale), None);
        // A paper-style 11-instruction synthesized kernel is correct but not
        // in network shape either.
        let synth = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        assert_eq!(extract_network(&m, &synth), None);
    }

    #[test]
    fn scratch_discipline_is_enforced() {
        // A "network" that routes through a value register is not one.
        let m = Machine::new(3, 0, IsaMode::MinMax);
        let prog = m.parse_program("mov r3 r1; min r1 r2; max r2 r3").unwrap();
        assert_eq!(extract_network(&m, &prog), None);
    }
}
