//! Exact t-distributed stochastic neighbor embedding (t-SNE).
//!
//! The paper's Figure 2 visualizes the n = 3 solution sets under different
//! cut factors with t-SNE. This crate implements the exact (O(N²))
//! algorithm of van der Maaten & Hinton: Gaussian input affinities with
//! per-point bandwidths calibrated to a target perplexity by binary search,
//! Student-t output affinities, and gradient descent with momentum and
//! early exaggeration.
//!
//! # Example
//!
//! ```
//! use sortsynth_tsne::{Tsne, TsneConfig};
//!
//! // Two tight clusters far apart stay apart in the embedding.
//! let mut points = Vec::new();
//! for i in 0..10 {
//!     points.push(vec![0.0 + 0.01 * i as f64, 0.0]);
//!     points.push(vec![100.0 + 0.01 * i as f64, 0.0]);
//! }
//! let embedding = Tsne::new(TsneConfig { perplexity: 5.0, ..TsneConfig::default() })
//!     .embed(&points);
//! assert_eq!(embedding.len(), points.len());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`Tsne`].
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count); the paper's artifact
    /// uses 50 for the 5602-solution plot.
    pub perplexity: f64,
    /// Gradient-descent iterations (the artifact uses 300).
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum after the early-exaggeration phase.
    pub momentum: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 300,
            // Conservative: large rates make small embeddings (tens of
            // points) diverge; hundreds-of-points runs converge fine too,
            // just set a higher rate explicitly if needed.
            learning_rate: 10.0,
            momentum: 0.8,
            exaggeration: 4.0,
            seed: 0x5eed,
        }
    }
}

/// The t-SNE embedder.
#[derive(Debug, Clone, Default)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Creates an embedder with the given configuration.
    pub fn new(config: TsneConfig) -> Self {
        Tsne { config }
    }

    /// Embeds `points` (rows of equal dimension) into 2-D.
    ///
    /// Returns one `[x, y]` per input row. Degenerate inputs (fewer than
    /// two points) embed at the origin.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent dimensions.
    pub fn embed(&self, points: &[Vec<f64>]) -> Vec<[f64; 2]> {
        let n = points.len();
        if n < 2 {
            return vec![[0.0, 0.0]; n];
        }
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all rows must have the same dimension"
        );

        let p = joint_affinities(points, self.config.perplexity);

        // Random initial layout.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut y: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.gen_range(-1e-2..1e-2), rng.gen_range(-1e-2..1e-2)])
            .collect();
        let mut velocity = vec![[0.0f64; 2]; n];

        let exaggerate_until = self.config.iterations / 4;
        for iter in 0..self.config.iterations {
            let exaggeration = if iter < exaggerate_until {
                self.config.exaggeration
            } else {
                1.0
            };
            let momentum = if iter < exaggerate_until {
                0.5
            } else {
                self.config.momentum
            };

            // Student-t output affinities (unnormalized) and their sum.
            let mut q_num = vec![0.0f64; n * n];
            let mut q_sum = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = y[i][0] - y[j][0];
                    let dy = y[i][1] - y[j][1];
                    let num = 1.0 / (1.0 + dx * dx + dy * dy);
                    q_num[i * n + j] = num;
                    q_num[j * n + i] = num;
                    q_sum += 2.0 * num;
                }
            }
            let q_sum = q_sum.max(1e-12);

            // Gradient: 4 Σ_j (p_ij·e − q_ij) num_ij (y_i − y_j).
            let mut grad = vec![[0.0f64; 2]; n];
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let num = q_num[i * n + j];
                    let q = (num / q_sum).max(1e-12);
                    let mult = (p[i * n + j] * exaggeration - q) * num;
                    grad[i][0] += 4.0 * mult * (y[i][0] - y[j][0]);
                    grad[i][1] += 4.0 * mult * (y[i][1] - y[j][1]);
                }
            }

            for i in 0..n {
                for d in 0..2 {
                    velocity[i][d] =
                        momentum * velocity[i][d] - self.config.learning_rate * grad[i][d];
                    y[i][d] += velocity[i][d];
                }
            }
            center(&mut y);
        }
        y
    }

    /// KL divergence of the final embedding (diagnostic; lower is better).
    pub fn kl_divergence(&self, points: &[Vec<f64>], embedding: &[[f64; 2]]) -> f64 {
        let n = points.len();
        if n < 2 {
            return 0.0;
        }
        let p = joint_affinities(points, self.config.perplexity);
        let mut q_num = vec![0.0f64; n * n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = embedding[i][0] - embedding[j][0];
                let dy = embedding[i][1] - embedding[j][1];
                let num = 1.0 / (1.0 + dx * dx + dy * dy);
                q_num[i * n + j] = num;
                q_num[j * n + i] = num;
                q_sum += 2.0 * num;
            }
        }
        let mut kl = 0.0;
        for i in 0..n {
            for j in 0..n {
                let pij = p[i * n + j];
                if pij > 1e-12 {
                    let qij = (q_num[i * n + j] / q_sum).max(1e-12);
                    kl += pij * (pij / qij).ln();
                }
            }
        }
        kl
    }
}

/// Symmetrized input affinities `p_ij` with perplexity-calibrated
/// per-point bandwidths.
fn joint_affinities(points: &[Vec<f64>], perplexity: f64) -> Vec<f64> {
    let n = points.len();
    let target_entropy = perplexity.max(1.01).ln();

    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2σ²) for the target entropy.
        let mut beta = 1.0f64;
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        let mut row = vec![0.0f64; n];
        for _ in 0..64 {
            let mut sum = 0.0;
            for j in 0..n {
                row[j] = if i == j {
                    0.0
                } else {
                    (-beta * d2[i * n + j]).exp()
                };
                sum += row[j];
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the row distribution.
            let mut entropy = 0.0;
            for &r in row.iter() {
                if r > 0.0 {
                    let pr = r / sum;
                    entropy -= pr * pr.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for j in 0..n {
            p[i * n + j] = row[j] / sum;
        }
    }

    // Symmetrize and normalize over all pairs.
    let mut joint = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    for i in 0..n {
        joint[i * n + i] = 0.0;
    }
    joint
}

fn center(y: &mut [[f64; 2]]) {
    let n = y.len() as f64;
    let cx = y.iter().map(|p| p[0]).sum::<f64>() / n;
    let cy = y.iter().map(|p| p[1]).sum::<f64>() / n;
    for p in y.iter_mut() {
        p[0] -= cx;
        p[1] -= cy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..12 {
            points.push(vec![i as f64 * 0.01, 0.0, 0.0]);
            points.push(vec![50.0 + i as f64 * 0.01, 3.0, 1.0]);
        }
        points
    }

    fn centroid(points: &[[f64; 2]]) -> [f64; 2] {
        let n = points.len() as f64;
        [
            points.iter().map(|p| p[0]).sum::<f64>() / n,
            points.iter().map(|p| p[1]).sum::<f64>() / n,
        ]
    }

    #[test]
    fn separated_clusters_stay_separated() {
        let points = two_clusters();
        let tsne = Tsne::new(TsneConfig {
            perplexity: 5.0,
            iterations: 250,
            ..TsneConfig::default()
        });
        let y = tsne.embed(&points);
        let a: Vec<[f64; 2]> = y.iter().step_by(2).copied().collect();
        let b: Vec<[f64; 2]> = y.iter().skip(1).step_by(2).copied().collect();
        let ca = centroid(&a);
        let cb = centroid(&b);
        let between = ((ca[0] - cb[0]).powi(2) + (ca[1] - cb[1]).powi(2)).sqrt();
        // Intra-cluster spread must be smaller than the inter-cluster gap.
        let spread = a
            .iter()
            .map(|p| ((p[0] - ca[0]).powi(2) + (p[1] - ca[1]).powi(2)).sqrt())
            .fold(0.0f64, f64::max);
        assert!(between > 2.0 * spread, "between {between}, spread {spread}");
    }

    #[test]
    fn embedding_is_centered_and_deterministic() {
        let points = two_clusters();
        let tsne = Tsne::new(TsneConfig {
            perplexity: 5.0,
            iterations: 50,
            ..TsneConfig::default()
        });
        let y1 = tsne.embed(&points);
        let y2 = tsne.embed(&points);
        assert_eq!(y1, y2);
        let c = centroid(&y1);
        assert!(c[0].abs() < 1e-6 && c[1].abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        let tsne = Tsne::new(TsneConfig::default());
        assert!(tsne.embed(&[]).is_empty());
        assert_eq!(tsne.embed(&[vec![1.0, 2.0]]), vec![[0.0, 0.0]]);
    }

    #[test]
    fn kl_divergence_improves_with_iterations() {
        let points = two_clusters();
        let short = Tsne::new(TsneConfig {
            perplexity: 5.0,
            iterations: 5,
            ..TsneConfig::default()
        });
        let long = Tsne::new(TsneConfig {
            perplexity: 5.0,
            iterations: 300,
            ..TsneConfig::default()
        });
        let kl_short = short.kl_divergence(&points, &short.embed(&points));
        let kl_long = long.kl_divergence(&points, &long.embed(&points));
        assert!(
            kl_long <= kl_short + 1e-9,
            "short {kl_short}, long {kl_long}"
        );
    }

    #[test]
    fn affinities_are_a_distribution() {
        let points = two_clusters();
        let p = joint_affinities(&points, 5.0);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        let n = points.len();
        for i in 0..n {
            assert_eq!(p[i * n + i], 0.0);
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
