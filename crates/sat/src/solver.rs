//! The CDCL core: watched literals, VSIDS, 1-UIP learning, Luby restarts,
//! and phase saving (with externally seedable polarities for warm starts).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// A conflict or time budget expired first.
    Unknown,
}

const UNASSIGNED: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// For each literal, the clauses watching it.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase per variable for phase-saving: the last polarity each
    /// variable was assigned, kept across backtracking and restarts so
    /// post-restart decisions revisit the same part of the search space.
    /// Seedable from outside via [`Solver::set_phase`] (warm starts).
    phase: Vec<u8>,
    /// Set to disable phase saving: decisions then use the static polarity
    /// left in `phase` (ablation toggle; default off = saving enabled).
    phase_saving_off: bool,
    /// External stop flags, polled cooperatively during search; any set flag
    /// makes the current solve call return [`SolveResult::Unknown`].
    stop_flags: Vec<Arc<AtomicBool>>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (`u32::MAX` for decisions).
    reason: Vec<u32>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail index delimiting each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Set when an added clause is vacuously unsatisfiable.
    unsat: bool,
    conflicts: u64,
    restarts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt (conflict-derived) clauses.
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }

    /// Exports the original (non-learnt) clauses plus the root-level unit
    /// facts, e.g. for translation into another solving paradigm (the ILP
    /// baseline). The export is equisatisfiable with the added formula.
    pub fn clauses_for_export(&self) -> Vec<Vec<Lit>> {
        let mut out: Vec<Vec<Lit>> = self
            .clauses
            .iter()
            .filter(|c| !c.learnt)
            .map(|c| c.lits.clone())
            .collect();
        for &lit in &self.trail {
            if self.level[lit.var().index()] == 0 {
                out.push(vec![lit]);
            }
        }
        out
    }

    /// Total conflicts encountered across solve calls.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total restarts performed across solve calls.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Enables or disables phase saving (enabled by default). With it
    /// disabled, decision polarities fall back to whatever static values
    /// `phase` holds (all-false unless seeded via [`Solver::set_phase`]).
    pub fn set_phase_saving(&mut self, on: bool) {
        self.phase_saving_off = !on;
    }

    /// Seeds the decision polarity of `var`, e.g. from a model of a related
    /// instance (CEGIS warm starts). Purely heuristic: affects which branch
    /// is tried first, never soundness.
    pub fn set_phase(&mut self, var: Var, value: bool) {
        self.phase[var.index()] = value as u8;
    }

    /// Installs external stop flags. The solver polls them cooperatively
    /// (each decision and each conflict); once any is set, the running solve
    /// call returns [`SolveResult::Unknown`] at the next poll. The solver
    /// stays reusable afterwards (assignments are reset to root level).
    pub fn set_stop_flags(&mut self, flags: Vec<Arc<AtomicBool>>) {
        self.stop_flags = flags;
    }

    /// Whether any installed stop flag is set.
    fn should_stop(&self) -> bool {
        self.stop_flags
            .iter()
            .any(|flag| flag.load(Ordering::Relaxed))
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.phase.push(0);
        self.level.push(0);
        self.reason.push(u32::MAX);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Adds a clause. Returns `false` if the clause makes the formula
    /// trivially unsatisfiable (it is empty, or empty after root-level
    /// simplification).
    ///
    /// Clauses must be added before calling `solve` (this solver is not
    /// incremental across conflicting solve calls, but more clauses may be
    /// added between successful calls — assignments are reset).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.backtrack(0);
        // Root-level simplification: drop false literals, detect tautology.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at root
                Some(false) => continue,
                None => {
                    if simplified.contains(&l.negate()) {
                        return true; // tautology
                    }
                    if !simplified.contains(&l) {
                        simplified.push(l);
                    }
                }
            }
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], u32::MAX) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[simplified[0].negate().index()].push(idx);
                self.watches[simplified[1].negate().index()].push(idx);
                self.clauses.push(Clause {
                    lits: simplified,
                    learnt: false,
                });
                true
            }
        }
    }

    /// Convenience: adds the at-most-one constraint over `lits` (pairwise
    /// encoding — fine for the small groups synthesis encodings use).
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause(&[lits[i].negate(), lits[j].negate()]);
            }
        }
    }

    /// Convenience: exactly-one over `lits`.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
        self.add_at_most_one(lits);
    }

    /// Solves without budgets.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_budgeted(None, None)
    }

    /// Solves with optional conflict and wall-clock budgets; returns
    /// [`SolveResult::Unknown`] when a budget expires.
    pub fn solve_budgeted(
        &mut self,
        max_conflicts: Option<u64>,
        timeout: Option<std::time::Duration>,
    ) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        if timeout == Some(std::time::Duration::ZERO) || self.should_stop() {
            return SolveResult::Unknown;
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let start_conflicts = self.conflicts;
        let mut restart_round = 0u32;
        loop {
            let budget = 64 * luby(restart_round);
            restart_round += 1;
            match self.search(budget) {
                // A stop-flag interrupt surfaces as Unknown mid-tree; reset
                // to root level so the solver stays reusable.
                Some(SolveResult::Unknown) => {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                Some(result) => return result,
                None => {
                    // Restart: keep learnt clauses, reset to root level.
                    self.restarts += 1;
                    self.backtrack(0);
                }
            }
            if let Some(max) = max_conflicts {
                if self.conflicts - start_conflicts >= max {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            }
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// The model value of `var` after [`SolveResult::Sat`] (and before the
    /// next solve call); `None` if unassigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    // ------------------------------------------------------------------

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v != lit.is_neg())
    }

    /// Runs CDCL until SAT/UNSAT, or `None` after `conflict_budget`
    /// conflicts (restart signal).
    fn search(&mut self, conflict_budget: u64) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.backtrack(backjump);
                self.learn(learnt);
                self.decay_activity();
                if self.should_stop() {
                    return Some(SolveResult::Unknown);
                }
                if conflicts_here >= conflict_budget {
                    return None;
                }
            } else {
                if self.should_stop() {
                    return Some(SolveResult::Unknown);
                }
                match self.pick_branch_var() {
                    None => return Some(SolveResult::Sat),
                    Some(var) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = if self.phase[var.index()] == 1 {
                            Lit::pos(var)
                        } else {
                            Lit::neg(var)
                        };
                        let ok = self.enqueue(lit, u32::MAX);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching `lit` (i.e. containing ¬lit... we watch the
            // negation): re-establish their watches.
            let mut watchers = std::mem::take(&mut self.watches[lit.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                match self.update_watches(ci, lit) {
                    WatchResult::Kept => i += 1,
                    WatchResult::Moved => {
                        watchers.swap_remove(i);
                    }
                    WatchResult::Conflict => {
                        self.watches[lit.index()] = watchers;
                        return Some(ci);
                    }
                }
            }
            self.watches[lit.index()] = watchers;
        }
        None
    }

    fn update_watches(&mut self, ci: u32, falsified: Lit) -> WatchResult {
        // Field-level split borrow: clause literals mutably, assignments
        // immutably.
        let assign = &self.assign;
        let lit_val = |l: Lit| -> Option<bool> {
            match assign[l.var().index()] {
                0 => Some(l.is_neg()),
                1 => Some(!l.is_neg()),
                _ => None,
            }
        };
        let clause = &mut self.clauses[ci as usize];
        let false_lit = falsified.negate();
        // Normalize: the falsified literal goes to position 1.
        if clause.lits[0] == false_lit {
            clause.lits.swap(0, 1);
        }
        debug_assert_eq!(clause.lits[1], false_lit);
        // Satisfied through the other watch?
        let first = clause.lits[0];
        if lit_val(first) == Some(true) {
            return WatchResult::Kept;
        }
        // Find a replacement watch.
        let mut new_watch = None;
        for k in 2..clause.lits.len() {
            if lit_val(clause.lits[k]) != Some(false) {
                clause.lits.swap(1, k);
                new_watch = Some(clause.lits[1]);
                break;
            }
        }
        if let Some(w) = new_watch {
            self.watches[w.negate().index()].push(ci);
            return WatchResult::Moved;
        }
        // No replacement: clause is unit (or conflicting).
        if self.enqueue(first, ci) {
            WatchResult::Kept
        } else {
            WatchResult::Conflict
        }
    }

    /// Assigns `lit` with the given reason; `false` on contradiction.
    fn enqueue(&mut self, lit: Lit, reason: u32) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var().index();
                self.assign[v] = (!lit.is_neg()) as u8;
                if !self.phase_saving_off {
                    self.phase[v] = self.assign[v];
                }
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// First-UIP conflict analysis; returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, usize) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut reason_clause = conflict;
        let mut asserting: Option<Lit> = None;

        loop {
            let lits: Vec<Lit> = self.clauses[reason_clause as usize].lits.clone();
            let skip_first = asserting.is_some();
            for (pos, &q) in lits.iter().enumerate() {
                if skip_first && pos == 0 {
                    continue; // the propagated literal itself
                }
                let v = q.var().index();
                if seen[v] || self.level[v] == 0 {
                    continue;
                }
                seen[v] = true;
                self.bump_activity(q.var());
                if self.level[v] == current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Walk the trail backwards to the next marked literal of the
            // current level.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var().index()] {
                    asserting = Some(lit);
                    break;
                }
            }
            let lit = asserting.expect("found a literal on the current level");
            counter -= 1;
            seen[lit.var().index()] = false;
            if counter == 0 {
                learnt.insert(0, lit.negate());
                break;
            }
            reason_clause = self.reason[lit.var().index()];
            debug_assert_ne!(reason_clause, u32::MAX, "UIP literal has a reason");
        }

        // Backjump to the second-highest level in the learnt clause.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()] as usize)
            .max()
            .unwrap_or(0);
        (learnt, backjump)
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], u32::MAX);
            debug_assert!(ok, "asserting unit enqueues after backjump");
            return;
        }
        let idx = self.clauses.len() as u32;
        // Watch the asserting literal and one literal from the backjump
        // level (position of the max-level literal among the rest).
        let mut lits = learnt;
        let max_pos = (1..lits.len())
            .max_by_key(|&i| self.level[lits[i].var().index()])
            .expect("learnt clause has at least two literals");
        lits.swap(1, max_pos);
        self.watches[lits[0].negate().index()].push(idx);
        self.watches[lits[1].negate().index()].push(idx);
        let asserting = lits[0];
        self.clauses.push(Clause { lits, learnt: true });
        let ok = self.enqueue(asserting, idx);
        debug_assert!(ok, "asserting literal enqueues after backjump");
    }

    fn backtrack(&mut self, level: usize) {
        while self.trail_lim.len() > level {
            let limit = self.trail_lim.pop().expect("non-root level has a limit");
            while self.trail.len() > limit {
                let lit = self.trail.pop().expect("trail segment is non-empty");
                self.assign[lit.var().index()] = UNASSIGNED;
                self.reason[lit.var().index()] = u32::MAX;
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn pick_branch_var(&self) -> Option<Var> {
        // VSIDS: highest-activity unassigned variable.
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED {
                let a = self.activity[v];
                if best.map(|(b, _)| a > b).unwrap_or(true) {
                    best = Some((a, v));
                }
            }
        }
        best.map(|(_, v)| Var(v as u32))
    }

    fn bump_activity(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }
}

enum WatchResult {
    Kept,
    Moved,
    Conflict,
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …), 0-indexed.
fn luby(x: u32) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    let mut x = x as u64;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_round_trips() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(Lit::pos(v).negate(), Lit::neg(v));
        assert_eq!(Lit::neg(v).negate(), Lit::pos(v));
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn learnt_clauses_are_recorded() {
        // An instance that needs at least one conflict to solve.
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        for i in 0..3 {
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[i + 1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.num_learnt() <= s.num_clauses());
    }

    #[test]
    fn pre_set_stop_flag_interrupts_solve() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        for i in 0..5 {
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[i + 1])]);
        }
        let flag = Arc::new(AtomicBool::new(true));
        s.set_stop_flags(vec![Arc::clone(&flag)]);
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Clearing the flag makes the solver usable again.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn phase_seeding_steers_the_first_model() {
        // An unconstrained variable is decided with its seeded polarity.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.set_phase(a, true);
        s.set_phase(b, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s2 = Solver::new();
        let a2 = s2.new_var();
        let b2 = s2.new_var();
        s2.add_clause(&[Lit::pos(a2), Lit::pos(b2)]);
        // Default polarity is false: the first decision assigns a2 = false,
        // propagating b2 = true.
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert_eq!(s2.value(a2), Some(false));
        assert_eq!(s2.value(b2), Some(true));
    }

    #[test]
    fn phase_saving_toggle_preserves_answers() {
        for on in [true, false] {
            let mut s = Solver::new();
            let v: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
            s.set_phase_saving(on);
            for i in 0..4 {
                s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
                s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[i + 1])]);
            }
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn exactly_one_constraint() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        s.add_exactly_one(&lits);
        assert_eq!(s.solve(), SolveResult::Sat);
        let set = vars.iter().filter(|&&v| s.value(v) == Some(true)).count();
        assert_eq!(set, 1);
    }
}
