//! A CDCL SAT solver, built from scratch as the substrate for the paper's
//! solver-based synthesis baselines (§4).
//!
//! The paper evaluates SMT (z3), CP (MiniZinc/Chuffed), and ILP back-ends on
//! the sorting-kernel synthesis problem. All of those discharge the
//! finite-domain constraints of this problem through clause learning over a
//! boolean core — Chuffed literally is a lazy-clause-generation solver. This
//! crate provides that core: conflict-driven clause learning with two-watched
//! literals, VSIDS branching, phase saving, first-UIP conflict analysis,
//! non-chronological backjumping, and Luby restarts.
//!
//! # Example
//!
//! ```
//! use sortsynth_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! match solver.solve() {
//!     SolveResult::Sat => {
//!         assert_eq!(solver.value(a), Some(false));
//!         assert_eq!(solver.value(b), Some(true));
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

mod solver;

pub use solver::{Lit, SolveResult, Solver, Var};

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::pos(v)]);
        s.add_clause(&[Lit::neg(v)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // x1 ^ x2 ^ x3 = 1 encoded in CNF has solutions.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        s.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        s.add_clause(&[Lit::pos(a), Lit::neg(b), Lit::neg(c)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b), Lit::neg(c)]);
        s.add_clause(&[Lit::neg(a), Lit::neg(b), Lit::pos(c)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let parity = [a, b, c]
            .iter()
            .filter(|&&x| s.value(x) == Some(true))
            .count()
            % 2;
        assert_eq!(parity, 1);
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // PHP(4,3): 4 pigeons, 3 holes — classic CDCL stress test.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| lits(&mut s, 3)).collect();
        for pigeon in &p {
            let clause: Vec<Lit> = pigeon.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                for (&a, &b) in pi.iter().zip(pj) {
                    s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // PHP(7,6) under a conflict budget of 1 cannot finish.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..7).map(|_| lits(&mut s, 6)).collect();
        for pigeon in &p {
            let clause: Vec<Lit> = pigeon.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&clause);
        }
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                for (&a, &b) in pi.iter().zip(pj) {
                    s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        assert_eq!(s.solve_budgeted(Some(1), None), SolveResult::Unknown);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic pseudo-random instances, cross-checked exhaustively.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for instance in 0..50 {
            let num_vars = 6;
            let num_clauses = 3 + (instance % 20);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    clause.push(((next() % num_vars as u64) as usize, next() % 2 == 0));
                }
                clauses.push(clause);
            }
            // Brute force over 2^6 assignments.
            let brute_sat = (0u32..1 << num_vars).any(|bits| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
            });
            let mut s = Solver::new();
            let vars = lits(&mut s, num_vars);
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&(v, pos)| {
                        if pos {
                            Lit::pos(vars[v])
                        } else {
                            Lit::neg(vars[v])
                        }
                    })
                    .collect();
                s.add_clause(&lits);
            }
            let got = s.solve();
            let expected = if brute_sat {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(got, expected, "instance {instance}");
            if got == SolveResult::Sat {
                // The returned model must actually satisfy every clause.
                for c in &clauses {
                    assert!(c.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos)));
                }
            }
        }
    }
}
