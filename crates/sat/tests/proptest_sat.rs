//! Property-based differential testing of the CDCL solver against brute
//! force on random CNF instances.

use proptest::prelude::*;
use sortsynth_sat::{Lit, SolveResult, Solver};

/// A random clause set over `num_vars` variables: each clause is a
/// non-empty list of (variable index, polarity) pairs.
fn arb_cnf(num_vars: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..num_vars, any::<bool>()), 1..5),
        0..30,
    )
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    (0u32..1 << num_vars).any(|bits| {
        clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos))
    })
}

proptest! {
    #[test]
    fn cdcl_matches_brute_force(clauses in arb_cnf(8)) {
        let num_vars = 8;
        let expected = brute_force_sat(num_vars, &clauses);

        let mut solver = Solver::new();
        let vars: Vec<_> = (0..num_vars).map(|_| solver.new_var()).collect();
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { Lit::pos(vars[v]) } else { Lit::neg(vars[v]) })
                .collect();
            solver.add_clause(&lits);
        }
        let got = solver.solve();
        prop_assert_eq!(got == SolveResult::Sat, expected);

        // A reported model must satisfy every clause.
        if got == SolveResult::Sat {
            for clause in &clauses {
                prop_assert!(clause
                    .iter()
                    .any(|&(v, pos)| solver.value(vars[v]) == Some(pos)));
            }
        }
    }

    /// Exactly-one constraints always produce exactly one true literal.
    #[test]
    fn exactly_one_holds_in_models(group_size in 2usize..9, extra in arb_cnf(4)) {
        let mut solver = Solver::new();
        let group: Vec<_> = (0..group_size).map(|_| solver.new_var()).collect();
        let extra_vars: Vec<_> = (0..4).map(|_| solver.new_var()).collect();
        let lits: Vec<Lit> = group.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_exactly_one(&lits);
        for clause in &extra {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| {
                    if pos { Lit::pos(extra_vars[v]) } else { Lit::neg(extra_vars[v]) }
                })
                .collect();
            solver.add_clause(&lits);
        }
        if solver.solve() == SolveResult::Sat {
            let set = group.iter().filter(|&&v| solver.value(v) == Some(true)).count();
            prop_assert_eq!(set, 1);
        }
    }

    /// Adding clauses can only remove models (monotonicity of UNSAT).
    #[test]
    fn adding_clauses_is_monotone(clauses in arb_cnf(6), extra in arb_cnf(6)) {
        let num_vars = 6;
        let build = |sets: &[&[Vec<(usize, bool)>]]| {
            let mut solver = Solver::new();
            let vars: Vec<_> = (0..num_vars).map(|_| solver.new_var()).collect();
            for set in sets {
                for clause in set.iter() {
                    let lits: Vec<Lit> = clause
                        .iter()
                        .map(|&(v, pos)| if pos { Lit::pos(vars[v]) } else { Lit::neg(vars[v]) })
                        .collect();
                    solver.add_clause(&lits);
                }
            }
            solver.solve()
        };
        let base = build(&[&clauses]);
        let more = build(&[&clauses, &extra]);
        if base == SolveResult::Unsat {
            prop_assert_eq!(more, SolveResult::Unsat);
        }
    }
}
