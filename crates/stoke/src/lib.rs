//! A stochastic superoptimizer in the style of STOKE (Schkufza et al.),
//! the paper's §5.2 stochastic-search baseline.
//!
//! The search performs Metropolis–Hastings MCMC over fixed-size programs
//! with *unused* slots: proposal moves mutate an opcode, an operand, swap
//! two instructions, or toggle a slot between used and unused. The cost
//! function counts misplaced outputs over a test suite (all permutations or
//! a random subset — §5.2 tests both) plus a length term, so the sampler
//! can both synthesize from scratch (cold start) and shorten an existing
//! kernel (warm start).
//!
//! The paper's finding, which this implementation reproduces in the
//! harness: stochastic search does not synthesize a correct n = 3 kernel
//! from a cold start, and warm-started optimization fails to reach the
//! optimal length.
//!
//! # Example
//!
//! ```
//! use sortsynth_isa::{IsaMode, Machine};
//! use sortsynth_stoke::{run, Start, StokeConfig, TestSuite};
//!
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let cfg = StokeConfig {
//!     machine: machine.clone(),
//!     start: Start::Cold { slots: 5 },
//!     iterations: 500_000,
//!     beta: 1.0,
//!     seed: 1,
//!     tests: TestSuite::Full,
//!     minimize_length: true,
//!     budget: Default::default(),
//! };
//! let result = run(&cfg);
//! if let Some(prog) = &result.best_correct {
//!     assert!(machine.is_correct(prog));
//! }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortsynth_isa::{Instr, Machine, MachineState, Program, Reg};
use sortsynth_search::SearchBudget;

/// Where the Markov chain starts.
#[derive(Debug, Clone)]
pub enum Start {
    /// Random program over `slots` slots (§5.2 `Stoke-Cold`).
    Cold {
        /// Number of program slots (used + unused).
        slots: usize,
    },
    /// A given correct program to optimize (§5.2 `Stoke-Warm`).
    Warm {
        /// The starting program.
        prog: Program,
        /// Extra unused slots appended beyond the program.
        extra_slots: usize,
    },
}

/// Which inputs the cost function evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestSuite {
    /// All `n!` permutations (sound oracle).
    Full,
    /// A fixed random subset of the permutations (the paper also evaluates
    /// 1000 random subsets; unsound but cheaper per step).
    RandomSubset(usize),
}

/// Configuration for one MCMC run.
#[derive(Debug, Clone)]
pub struct StokeConfig {
    /// The target machine.
    pub machine: Machine,
    /// Cold or warm start.
    pub start: Start,
    /// Proposal steps.
    pub iterations: u64,
    /// Inverse temperature for the Metropolis acceptance test.
    pub beta: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Test suite used in the cost function.
    pub tests: TestSuite,
    /// Add a length term so shorter correct programs win.
    pub minimize_length: bool,
    /// Cooperative budget, polled every few hundred proposals: a portfolio
    /// race (or a deadline) stops the chain at the next poll instead of
    /// waiting out the full iteration count.
    pub budget: SearchBudget,
}

/// Result of [`run`].
#[derive(Debug, Clone)]
pub struct StokeResult {
    /// The best-cost program seen (compacted: unused slots removed).
    pub best: Program,
    /// Its cost.
    pub best_cost: f64,
    /// The shortest *verified-correct* program seen, if any (always
    /// re-checked on the full permutation suite, even when the search cost
    /// used a subset).
    pub best_correct: Option<Program>,
    /// Steps actually executed (lower than configured when the budget
    /// stopped the chain early).
    pub iterations_run: u64,
    /// Proposals accepted.
    pub accepted: u64,
}

/// A program slot: an instruction or unused.
type Slot = Option<Instr>;

/// Runs the MCMC sampler.
pub fn run(cfg: &StokeConfig) -> StokeResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let instrs = cfg.machine.all_instrs();
    let mut slots: Vec<Slot> = match &cfg.start {
        Start::Cold { slots } => (0..*slots)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    Some(instrs[rng.gen_range(0..instrs.len())])
                } else {
                    None
                }
            })
            .collect(),
        Start::Warm { prog, extra_slots } => {
            let mut s: Vec<Slot> = prog.iter().copied().map(Some).collect();
            s.extend(std::iter::repeat_n(None, *extra_slots));
            s
        }
    };

    let tests = make_tests(&cfg.machine, cfg.tests, &mut rng);
    let mut cost = cost_of(cfg, &slots, &tests);
    let mut best = slots.clone();
    let mut best_cost = cost;
    let mut best_correct: Option<Program> = None;
    let mut accepted = 0u64;

    // A warm start may already be correct.
    consider_correct(cfg, &slots, &mut best_correct);

    let mut iterations_run = 0u64;
    for i in 0..cfg.iterations {
        // MCMC steps are cheap; amortize the budget poll (an Instant::now
        // plus a few atomic loads) over 256 of them.
        if i & 0xFF == 0 && cfg.budget.is_exhausted() {
            break;
        }
        iterations_run += 1;
        let backup = propose(&mut slots, &instrs, &mut rng);
        let new_cost = cost_of(cfg, &slots, &tests);
        let accept =
            new_cost <= cost || rng.gen_bool(((cost - new_cost) * cfg.beta).exp().clamp(0.0, 1.0));
        if accept {
            accepted += 1;
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best = slots.clone();
                consider_correct(cfg, &slots, &mut best_correct);
            }
        } else {
            undo(&mut slots, backup);
        }
    }

    StokeResult {
        best: compact(&best),
        best_cost,
        best_correct,
        iterations_run,
        accepted,
    }
}

/// Records the compacted program if it is genuinely correct (full suite)
/// and shorter than the incumbent.
fn consider_correct(cfg: &StokeConfig, slots: &[Slot], best_correct: &mut Option<Program>) {
    let prog = compact(slots);
    if cfg.machine.is_correct(&prog) {
        let better = best_correct
            .as_ref()
            .map(|b| prog.len() < b.len())
            .unwrap_or(true);
        if better {
            *best_correct = Some(prog);
        }
    }
}

fn make_tests(machine: &Machine, suite: TestSuite, rng: &mut StdRng) -> Vec<MachineState> {
    let mut all = machine.initial_states();
    match suite {
        TestSuite::Full => all,
        TestSuite::RandomSubset(k) => {
            // Fisher–Yates prefix shuffle.
            let len = all.len();
            for i in 0..k.min(len) {
                let j = rng.gen_range(i..len);
                all.swap(i, j);
            }
            all.truncate(k.min(len));
            all
        }
    }
}

/// STOKE-style cost: misplaced output positions summed over the tests, plus
/// (optionally) the used-slot count scaled small enough that correctness
/// always dominates.
fn cost_of(cfg: &StokeConfig, slots: &[Slot], tests: &[MachineState]) -> f64 {
    let machine = &cfg.machine;
    let n = machine.n();
    let mut wrong = 0u32;
    for &test in tests {
        let mut st = test;
        for slot in slots.iter().flatten() {
            st.exec(*slot);
        }
        for i in 0..n {
            if st.reg(Reg::new(i)) != i + 1 {
                wrong += 1;
            }
        }
    }
    let mut cost = wrong as f64;
    if cfg.minimize_length {
        let used = slots.iter().flatten().count();
        cost += used as f64 / (slots.len() as f64 + 1.0);
    }
    cost
}

/// One random proposal; returns the undo record.
fn propose(slots: &mut [Slot], instrs: &[Instr], rng: &mut StdRng) -> Undo {
    let i = rng.gen_range(0..slots.len());
    match rng.gen_range(0..4) {
        // Replace the slot with a random instruction.
        0 => {
            let old = slots[i];
            slots[i] = Some(instrs[rng.gen_range(0..instrs.len())]);
            Undo::Slot(i, old)
        }
        // Toggle used/unused.
        1 => {
            let old = slots[i];
            slots[i] = match old {
                Some(_) => None,
                None => Some(instrs[rng.gen_range(0..instrs.len())]),
            };
            Undo::Slot(i, old)
        }
        // Mutate one operand.
        2 => {
            let old = slots[i];
            if let Some(mut instr) = old {
                let regs = instrs
                    .iter()
                    .map(|x| x.dst.index().max(x.src.index()))
                    .max()
                    .unwrap_or(0)
                    + 1;
                let r = Reg::new(rng.gen_range(0..regs));
                if rng.gen_bool(0.5) {
                    instr.dst = r;
                } else {
                    instr.src = r;
                }
                slots[i] = Some(instr);
            }
            Undo::Slot(i, old)
        }
        // Swap two slots.
        _ => {
            let j = rng.gen_range(0..slots.len());
            slots.swap(i, j);
            Undo::Swap(i, j)
        }
    }
}

fn undo(slots: &mut [Slot], backup: Undo) {
    match backup {
        Undo::Slot(i, old) => slots[i] = old,
        Undo::Swap(i, j) => slots.swap(i, j),
    }
}

enum Undo {
    Slot(usize, Slot),
    Swap(usize, usize),
}

/// Drops unused slots.
fn compact(slots: &[Slot]) -> Program {
    slots.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    fn m2() -> Machine {
        Machine::new(2, 1, IsaMode::Cmov)
    }

    fn cas2(machine: &Machine) -> Program {
        machine
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap()
    }

    #[test]
    fn warm_start_keeps_a_correct_program() {
        let machine = m2();
        let cfg = StokeConfig {
            machine: machine.clone(),
            start: Start::Warm {
                prog: cas2(&machine),
                extra_slots: 2,
            },
            iterations: 10_000,
            beta: 2.0,
            seed: 3,
            tests: TestSuite::Full,
            minimize_length: true,
            budget: SearchBudget::unlimited(),
        };
        let result = run(&cfg);
        let best = result.best_correct.expect("warm start is itself correct");
        assert!(machine.is_correct(&best));
        assert!(best.len() <= 4 + 2);
    }

    #[test]
    fn cold_start_synthesizes_the_n2_kernel() {
        // The n = 2 space is small enough for MCMC to hit a correct kernel.
        let machine = m2();
        let cfg = StokeConfig {
            machine: machine.clone(),
            start: Start::Cold { slots: 5 },
            iterations: 2_000_000,
            beta: 1.0,
            seed: 7,
            tests: TestSuite::Full,
            minimize_length: false,
            budget: SearchBudget::unlimited(),
        };
        let result = run(&cfg);
        let best = result
            .best_correct
            .expect("n = 2 cold start finds a kernel within the budget");
        assert!(machine.is_correct(&best));
    }

    #[test]
    fn subset_suite_costs_are_cheaper_but_unsound() {
        // With a single test case the zero-cost program need not be correct;
        // best_correct is still verified on the full suite.
        let machine = m2();
        let cfg = StokeConfig {
            machine: machine.clone(),
            start: Start::Cold { slots: 4 },
            iterations: 50_000,
            beta: 1.0,
            seed: 11,
            tests: TestSuite::RandomSubset(1),
            minimize_length: false,
            budget: SearchBudget::unlimited(),
        };
        let result = run(&cfg);
        if let Some(p) = result.best_correct {
            assert!(machine.is_correct(&p));
        }
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let machine = m2();
        let cfg = StokeConfig {
            machine,
            start: Start::Cold { slots: 5 },
            iterations: 20_000,
            beta: 1.0,
            seed: 42,
            tests: TestSuite::Full,
            minimize_length: true,
            budget: SearchBudget::unlimited(),
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.best_cost - b.best_cost).abs() < 1e-12);
    }

    #[test]
    fn cancelled_budget_stops_the_chain_early() {
        let machine = m2();
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        handle.cancel();
        let cfg = StokeConfig {
            machine,
            start: Start::Cold { slots: 5 },
            iterations: 10_000_000,
            beta: 1.0,
            seed: 7,
            tests: TestSuite::Full,
            minimize_length: false,
            budget,
        };
        let result = run(&cfg);
        assert_eq!(result.iterations_run, 0, "pre-cancelled chain never steps");
    }

    #[test]
    fn compact_drops_unused_slots() {
        let machine = m2();
        let prog = cas2(&machine);
        let slots: Vec<Slot> = vec![Some(prog[0]), None, Some(prog[1]), None];
        assert_eq!(compact(&slots), vec![prog[0], prog[1]]);
    }
}
