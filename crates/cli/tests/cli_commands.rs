//! Integration tests driving the installed `sortsynth` binary end-to-end.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn sortsynth() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sortsynth"))
}

#[test]
fn synth_emits_a_correct_kernel() {
    let out = sortsynth()
        .args(["synth", "--n", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let program = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(
        program.lines().count(),
        4,
        "optimal n = 2 kernel:\n{program}"
    );

    // Feed the synthesized kernel back through `check` via stdin.
    let mut check = sortsynth()
        .args(["check", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn check");
    check
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(program.as_bytes())
        .expect("write program");
    let out = check.wait_with_output().expect("check runs");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
}

#[test]
fn check_rejects_incorrect_kernels() {
    let mut check = sortsynth()
        .args(["check", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn check");
    check
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov r1 r2\n")
        .expect("write program");
    let out = check.wait_with_output().expect("check runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INCORRECT"));
}

#[test]
fn run_sorts_data() {
    let mut run = sortsynth()
        .args(["run", "-", "--n", "2", "--data", "5,-5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn run");
    run.stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\n")
        .expect("write program");
    let out = run.wait_with_output().expect("run runs");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("[-5, 5]"));
}

#[test]
fn analyze_reports_cost_model() {
    let mut analyze = sortsynth()
        .args(["analyze", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn analyze");
    analyze
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\n")
        .expect("write program");
    let out = analyze.wait_with_output().expect("analyze runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("instructions : 4"));
    assert!(text.contains("correct      : yes"));
}

/// The paper's §2.3 stale-flags kernel: passes every 0-1 input but fails
/// [1, 3, 2]. The linter must flag it statically.
const STALE_2_3: &[u8] = b"mov s1 r1\ncmp r1 r2\ncmovg r1 r2\ncmovg r2 s1\nmov s1 r3\ncmp r2 r3\ncmovg r3 r2\ncmovg r2 s1\ncmovg r2 r1\ncmovg r1 s1\n";

fn lint_with_stdin(extra: &[&str], program: &[u8]) -> std::process::Output {
    let mut args = vec!["lint", "-"];
    args.extend_from_slice(extra);
    let mut lint = sortsynth()
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lint");
    lint.stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(program)
        .expect("write program");
    lint.wait_with_output().expect("lint runs")
}

#[test]
fn lint_flags_the_stale_flags_kernel_statically() {
    let out = lint_with_stdin(&["--n", "3"], STALE_2_3);
    assert!(!out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("dead-conditional-write"), "{text}");
    // The symbolic value-flow walk refutes this kernel outright with a
    // concrete witness (it passes every 0-1 input but not [1, 3, 2]).
    assert!(text.contains("refuted-perm"), "{text}");
    assert!(text.contains("witness"), "{text}");
}

#[test]
fn lint_certifies_a_correct_network() {
    let out = lint_with_stdin(
        &["--n", "2"],
        b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\n",
    );
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("certified-network"));
}

#[test]
fn lint_json_is_machine_readable() {
    let out = lint_with_stdin(&["--n", "3", "--json"], STALE_2_3);
    assert!(!out.status.success(), "error severity still exits nonzero");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"verdict\""), "{text}");
    assert!(text.contains("dead-conditional-write"), "{text}");
}

#[test]
fn lint_fix_prints_the_minimized_program() {
    // A correct CAS padded with a dead scratch write: --fix strips it.
    let out = lint_with_stdin(
        &["--n", "2", "--scratch", "2", "--fix"],
        b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\nmov s2 r1\n",
    );
    assert!(out.status.success(), "{out:?}");
    let fixed = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(fixed.lines().count(), 4, "{fixed}");
    assert!(!fixed.contains("s2"), "{fixed}");
}

#[test]
fn prove_certifies_the_n2_bound() {
    let out = sortsynth()
        .args(["prove", "--n", "2", "--len", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("exactly 4"));
}

#[test]
fn synth_all_enumerates_solutions() {
    let out = sortsynth()
        .args(["synth", "--n", "2", "--all", "--limit", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.matches("# solution").count() == 3, "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = sortsynth()
        .args(["frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn impossible_query_returns_a_clean_timeout_error() {
    // n = 4 with a length bound below the lower bound and no pruning aids:
    // the plain layered search can neither find a kernel nor exhaust the
    // space quickly, so the --timeout budget is what ends it.
    let out = sortsynth()
        .args([
            "synth",
            "--n",
            "4",
            "--plain",
            "--max-len",
            "15",
            "--timeout",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("timed out"), "{err}");
}

#[test]
fn synth_cache_dir_round_trip() {
    let dir = std::env::temp_dir().join(format!("sortsynth-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.to_str().expect("utf-8 temp path");

    // Cold: synthesizes and persists.
    let cold = sortsynth()
        .args(["synth", "--n", "3", "--cache-dir", cache_dir])
        .output()
        .expect("binary runs");
    assert!(cold.status.success(), "{cold:?}");
    let cold_program = String::from_utf8_lossy(&cold.stdout).to_string();
    assert_eq!(cold_program.lines().count(), 11, "{cold_program}");

    // Warm: identical program, served from the cache without a search.
    let warm = sortsynth()
        .args(["synth", "--n", "3", "--cache-dir", cache_dir])
        .output()
        .expect("binary runs");
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(String::from_utf8_lossy(&warm.stdout), cold_program);
    assert!(String::from_utf8_lossy(&warm.stderr).contains("from cache"));

    // A different query is a miss, not a collision.
    let other = sortsynth()
        .args([
            "synth",
            "--n",
            "3",
            "--max-len",
            "12",
            "--cache-dir",
            cache_dir,
        ])
        .output()
        .expect("binary runs");
    assert!(other.status.success(), "{other:?}");
    assert!(!String::from_utf8_lossy(&other.stderr).contains("from cache"));

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn serve_and_client_round_trip() {
    use std::io::{BufRead as _, BufReader};

    let mut server = sortsynth()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    // The first stderr line announces the bound address (port 0 → OS pick).
    let mut banner = String::new();
    BufReader::new(server.stderr.as_mut().expect("piped stderr"))
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .trim()
        .to_string();

    let ping = sortsynth()
        .args(["client", "ping", "--addr", &addr])
        .output()
        .expect("binary runs");
    assert!(ping.status.success(), "{ping:?}");
    assert!(String::from_utf8_lossy(&ping.stdout).contains("pong"));

    let synth = sortsynth()
        .args([
            "client",
            "synth",
            "--n",
            "3",
            "--addr",
            &addr,
            "--timeout",
            "60",
        ])
        .output()
        .expect("binary runs");
    assert!(synth.status.success(), "{synth:?}");
    let program = String::from_utf8_lossy(&synth.stdout).to_string();
    assert_eq!(program.lines().count(), 11, "{program}");

    // Round-trip the synthesized kernel through the server-side checker.
    let mut check = sortsynth()
        .args(["client", "check", "-", "--n", "3", "--addr", &addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn client check");
    check
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(program.as_bytes())
        .expect("write program");
    let out = check.wait_with_output().expect("check runs");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    server.kill().expect("kill server");
    let _ = server.wait();
}

#[test]
fn minmax_isa_is_selectable() {
    let out = sortsynth()
        .args(["synth", "--n", "3", "--isa", "minmax"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let program = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(program.lines().count(), 8, "{program}");
    assert!(program.contains("min") || program.contains("max"));
}
