//! Integration tests driving the installed `sortsynth` binary end-to-end.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn sortsynth() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sortsynth"))
}

#[test]
fn synth_emits_a_correct_kernel() {
    let out = sortsynth()
        .args(["synth", "--n", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let program = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(program.lines().count(), 4, "optimal n = 2 kernel:\n{program}");

    // Feed the synthesized kernel back through `check` via stdin.
    let mut check = sortsynth()
        .args(["check", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn check");
    check
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(program.as_bytes())
        .expect("write program");
    let out = check.wait_with_output().expect("check runs");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
}

#[test]
fn check_rejects_incorrect_kernels() {
    let mut check = sortsynth()
        .args(["check", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn check");
    check
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov r1 r2\n")
        .expect("write program");
    let out = check.wait_with_output().expect("check runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INCORRECT"));
}

#[test]
fn run_sorts_data() {
    let mut run = sortsynth()
        .args(["run", "-", "--n", "2", "--data", "5,-5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn run");
    run.stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\n")
        .expect("write program");
    let out = run.wait_with_output().expect("run runs");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("[-5, 5]"));
}

#[test]
fn analyze_reports_cost_model() {
    let mut analyze = sortsynth()
        .args(["analyze", "-", "--n", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn analyze");
    analyze
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"mov s1 r2\ncmp r1 r2\ncmovg r2 r1\ncmovg r1 s1\n")
        .expect("write program");
    let out = analyze.wait_with_output().expect("analyze runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("instructions : 4"));
    assert!(text.contains("correct      : yes"));
}

#[test]
fn prove_certifies_the_n2_bound() {
    let out = sortsynth()
        .args(["prove", "--n", "2", "--len", "4"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("exactly 4"));
}

#[test]
fn synth_all_enumerates_solutions() {
    let out = sortsynth()
        .args(["synth", "--n", "2", "--all", "--limit", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.matches("# solution").count() == 3, "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = sortsynth().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn minmax_isa_is_selectable() {
    let out = sortsynth()
        .args(["synth", "--n", "3", "--isa", "minmax"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let program = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(program.lines().count(), 8, "{program}");
    assert!(program.contains("min") || program.contains("max"));
}
