//! Minimal dependency-free argument parsing for the `sortsynth` binary.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use sortsynth_isa::IsaMode;

/// A parsed command line: subcommand, `--key value` options, and positional
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs (`--flag` without a value maps to `"true"`).
    pub options: HashMap<String, String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError {
    msg: String,
}

impl ArgsError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ArgsError { msg: msg.into() }
    }
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl Error for ArgsError {}

/// Boolean flags (present or absent, no value).
const FLAGS: &[&str] = &[
    "all",
    "plain",
    "json",
    "fix",
    "dead-write-cut",
    "value-flow-cut",
    "metrics",
    "portfolio",
];

/// Options that take a value.
const VALUED: &[&str] = &[
    "n",
    "scratch",
    "isa",
    "max-len",
    "cut",
    "limit",
    "data",
    "len",
    "budget-states",
    "strategy",
    "timeout",
    "cache-dir",
    "addr",
    "workers",
    "queue-depth",
    "cache-capacity",
    "threads",
    "search-threads",
    "backend",
    "trace",
    "log-level",
    "record",
    "record-dir",
    "wait-ms",
    "mem-limit",
    "resume",
    "key-width",
    "spill-dir",
    "search-mem-limit",
];

/// Parses a byte-size value with an optional `K`/`M`/`G` suffix
/// (`256M`, `1G`, `4096`). Case-insensitive; an optional trailing `iB`/`B`
/// is accepted (`256MiB`).
pub fn parse_bytes(value: &str) -> Result<u64, ArgsError> {
    let v = value.trim();
    let lower = v.to_ascii_lowercase();
    let digits_end = lower
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(lower.len());
    let (num, suffix) = lower.split_at(digits_end);
    let base: u64 = num
        .parse()
        .map_err(|_| ArgsError::new(format!("`{value}` is not a byte size")))?;
    let mult = match suffix.trim_end_matches("ib").trim_end_matches('b') {
        "" => 1,
        "k" => 1 << 10,
        "m" => 1 << 20,
        "g" => 1 << 30,
        _ => {
            return Err(ArgsError::new(format!(
                "`{value}` has an unknown size suffix (expected K, M, or G)"
            )))
        }
    };
    base.checked_mul(mult)
        .ok_or_else(|| ArgsError::new(format!("`{value}` overflows a byte count")))
}

/// Parses `args` (without the binary name).
///
/// # Errors
///
/// Returns [`ArgsError`] when no subcommand is present, a valued option is
/// missing its value, or an option is not recognized (so a typo like
/// `--maxlen` fails loudly instead of silently running without the bound).
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let mut command = None;
    let mut options = HashMap::new();
    let mut positional = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if VALUED.contains(&key) {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgsError::new(format!("--{key} needs a value")))?;
                options.insert(key.to_string(), value.clone());
            } else if FLAGS.contains(&key) {
                options.insert(key.to_string(), "true".to_string());
            } else {
                return Err(ArgsError::new(format!("unknown option `--{key}`")));
            }
        } else if command.is_none() {
            command = Some(arg.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(ParsedArgs {
        command: command.ok_or_else(|| ArgsError::new("missing subcommand"))?,
        options,
        positional,
    })
}

impl ParsedArgs {
    /// `--n` (default 3).
    pub fn n(&self) -> Result<u8, ArgsError> {
        self.u8_option("n", 3)
    }

    /// `--scratch` (default 1).
    pub fn scratch(&self) -> Result<u8, ArgsError> {
        self.u8_option("scratch", 1)
    }

    /// `--isa cmov|minmax` (default cmov).
    pub fn isa(&self) -> Result<IsaMode, ArgsError> {
        match self.options.get("isa").map(String::as_str) {
            None | Some("cmov") => Ok(IsaMode::Cmov),
            Some("minmax") => Ok(IsaMode::MinMax),
            Some(other) => Err(ArgsError::new(format!(
                "unknown ISA `{other}` (expected cmov or minmax)"
            ))),
        }
    }

    /// A generic numeric option with a default.
    fn u8_option(&self, key: &str, default: u8) -> Result<u8, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError::new(format!("--{key}: `{v}` is not a number"))),
        }
    }

    /// `--key` numeric option, generic width.
    pub fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgsError> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgsError::new(format!("--{key}: `{v}` is not a number"))),
        }
    }

    /// Whether a boolean flag is set.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_positionals() {
        let parsed = parse(&strings(&["synth", "--n", "4", "--all", "extra"])).unwrap();
        assert_eq!(parsed.command, "synth");
        assert_eq!(parsed.options.get("n").map(String::as_str), Some("4"));
        assert!(parsed.flag("all"));
        assert_eq!(parsed.positional, vec!["extra"]);
        assert_eq!(parsed.n().unwrap(), 4);
        assert_eq!(parsed.scratch().unwrap(), 1);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&strings(&["--n", "3"])).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn valued_option_without_value_is_an_error() {
        assert!(parse(&strings(&["synth", "--n"])).is_err());
    }

    #[test]
    fn isa_parsing() {
        assert_eq!(
            parse(&strings(&["synth", "--isa", "minmax"]))
                .unwrap()
                .isa()
                .unwrap(),
            IsaMode::MinMax
        );
        assert_eq!(
            parse(&strings(&["synth"])).unwrap().isa().unwrap(),
            IsaMode::Cmov
        );
        assert!(parse(&strings(&["synth", "--isa", "avx"]))
            .unwrap()
            .isa()
            .is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        let err = parse(&strings(&["synth", "--maxlen", "9"])).unwrap_err();
        assert!(err.to_string().contains("--maxlen"), "{err}");
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert_eq!(parse_bytes("256M").unwrap(), 256 << 20);
        assert_eq!(parse_bytes("256MiB").unwrap(), 256 << 20);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("8K").unwrap(), 8 << 10);
        assert!(parse_bytes("1T").is_err());
        assert!(parse_bytes("lots").is_err());
    }

    #[test]
    fn bad_numbers_are_errors() {
        let parsed = parse(&strings(&["synth", "--n", "three"])).unwrap();
        assert!(parsed.n().is_err());
        let parsed = parse(&strings(&["synth", "--cut", "abc"])).unwrap();
        assert!(parsed.num::<f64>("cut").is_err());
    }
}
