//! `sortsynth` — synthesize, prove, analyze, and run branchless sorting
//! kernels from the command line.
//!
//! ```text
//! sortsynth synth   --n 3 [--scratch 1] [--isa cmov|minmax] [--all] [--max-len L] [--cut K]
//! sortsynth profile --n 3 [...]             # per-phase time table of one search
//! sortsynth inspect <recording.ssfr>        # post-mortem of a flight recording
//! sortsynth top     [--addr 127.0.0.1:7878] # live view of an in-flight search
//! sortsynth prove   --n 3 --len 11 [--budget-states N]
//! sortsynth check   <file|-> --n 3          # verify a kernel program
//! sortsynth analyze <file|-> --n 3          # cost & pipeline analysis
//! sortsynth lint    <file|-> --n 3          # static analysis & lint report
//! sortsynth run     <file|-> --n 3 --data 3,1,2
//! sortsynth serve   [--addr 127.0.0.1:7878] [--workers 4] [--cache-dir DIR] [--metrics]
//! sortsynth client  ping|synth|check|analyze|metrics|stats|watch [--addr 127.0.0.1:7878]
//! sortsynth stats   [--addr 127.0.0.1:7878]
//! ```
//!
//! Global flags: `--log-level error|warn|info|debug|trace` governs all
//! diagnostic output; `--trace FILE` writes a JSONL event log of every span
//! and progress event the run emits.

mod args;
mod commands;

use std::process::ExitCode;
use std::sync::Arc;

use sortsynth_obs::{error, Level};

/// Applies the global `--log-level` and `--trace` options. Returns the trace
/// subscriber (if any) so `main` can flush it after the command finishes.
fn init_observability(
    parsed: &args::ParsedArgs,
) -> Result<Option<Arc<sortsynth_obs::FileSubscriber>>, args::ArgsError> {
    if let Some(level) = parsed.options.get("log-level") {
        match Level::parse(level) {
            Some(level) => sortsynth_obs::set_log_level(level),
            None => {
                return Err(args::ArgsError::new(format!(
                    "--log-level: `{level}` is not one of error|warn|info|debug|trace"
                )))
            }
        }
    }
    match parsed.options.get("trace") {
        None => Ok(None),
        Some(path) => {
            let subscriber = Arc::new(
                sortsynth_obs::FileSubscriber::create(path)
                    .map_err(|e| args::ArgsError::new(format!("--trace {path}: {e}")))?,
            );
            sortsynth_obs::add_subscriber(subscriber.clone());
            sortsynth_obs::set_enabled(true);
            Ok(Some(subscriber))
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let outcome = args::parse(&raw).and_then(|parsed| {
        let trace = init_observability(&parsed)?;
        let result = commands::dispatch(parsed);
        if let Some(trace) = trace {
            let _ = trace.flush();
        }
        result
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            error!("sortsynth: {err}");
            error!("");
            error!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
