//! `sortsynth` — synthesize, prove, analyze, and run branchless sorting
//! kernels from the command line.
//!
//! ```text
//! sortsynth synth   --n 3 [--scratch 1] [--isa cmov|minmax] [--all] [--max-len L] [--cut K]
//! sortsynth prove   --n 3 --len 11 [--budget-states N]
//! sortsynth check   <file|-> --n 3          # verify a kernel program
//! sortsynth analyze <file|-> --n 3          # cost & pipeline analysis
//! sortsynth lint    <file|-> --n 3          # static analysis & lint report
//! sortsynth run     <file|-> --n 3 --data 3,1,2
//! sortsynth serve   [--addr 127.0.0.1:7878] [--workers 4] [--cache-dir DIR]
//! sortsynth client  ping|synth|check|analyze [--addr 127.0.0.1:7878]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&raw).and_then(commands::dispatch) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("sortsynth: {err}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
