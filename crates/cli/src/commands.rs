//! Subcommand implementations.

use std::io::Read as _;
use std::path::PathBuf;
use std::time::Duration;

use sortsynth_cache::{CacheEntry, CutSpec, KernelCache, KernelQuery};
use sortsynth_isa::{analyze, sampling_score, InstrMix, Machine, Program, ThroughputModel};
use sortsynth_jit::JitKernel;
use sortsynth_kernels::{interpret, Kernel};
use sortsynth_obs::{info, warn};
use sortsynth_portfolio::{
    backend_for, BackendKind, BackendStatus, DispatchPolicy, Portfolio, POLICY_FILE,
};
use sortsynth_search::{
    prove_no_solution, synthesize, try_synthesize, BoundVerdict, Cut, KeyWidth, Outcome,
    SearchBudget, SynthesisConfig,
};
use sortsynth_service::{Client, ReplySource, Response, Server, ServiceConfig};
use sortsynth_verify::{dce, verify, Verdict};

use crate::args::{parse_bytes, ArgsError, ParsedArgs};

/// Help text shown on errors and `sortsynth help`.
pub const USAGE: &str = "usage:
  sortsynth synth   --n N [--scratch M] [--isa cmov|minmax] [--all] [--max-len L] [--cut K]
                    [--plain] [--dead-write-cut] [--value-flow-cut]
                    [--timeout SECS] [--cache-dir DIR]
                    [--threads T]                 T search threads (0 = all cores; default 1)
                    [--backend B]                 astar|astar-par|cegis|smt-min|mcts|stoke|plan,
                                                  or `portfolio` to race them all first-win
                    [--record FILE]               leave a flight recording of the search
                    [--mem-limit BYTES]           spill cold search state to disk past this
                                                  budget (suffixes: K, M, G; sequential engine)
                    [--spill-dir DIR]             where spill segments + journal live
                    [--resume DIR]                resume a killed search from its journal
                    [--key-width 64|128]          closed-set key width (default 64)
  sortsynth profile --n N [--scratch M] [--isa cmov|minmax] [--plain] [--max-len L] [--cut K]
                    [--threads T] [--timeout SECS]   per-phase time table of one search
  sortsynth inspect <recording.ssfr> [--json]    post-mortem summary of a flight recording
  sortsynth top     [--addr HOST:PORT] [--n N ...] [--backend B] [--wait-ms MS]
                                                  live view of an in-flight server search
  sortsynth prove   --n N --len L [--budget-states S]
  sortsynth check   <file|-> --n N [--scratch M] [--isa cmov|minmax]
  sortsynth analyze <file|-> --n N [--scratch M] [--isa cmov|minmax]
  sortsynth lint    <file|-> --n N [--scratch M] [--isa cmov|minmax] [--json|--plain] [--fix]
  sortsynth run     <file|-> --n N [--scratch M] [--isa cmov|minmax] --data V1,V2,...
  sortsynth serve   [--addr HOST:PORT] [--workers W] [--queue-depth D]
                    [--cache-dir DIR] [--cache-capacity C] [--timeout SECS] [--metrics]
                    [--search-threads T]          engine threads per synth job (default 1)
                    [--portfolio]                 race all backends for unrouted synth requests
                    [--record-dir DIR]            flight-record every engine search
                    [--search-mem-limit BYTES]    memory budget per engine search (spills to disk)
  sortsynth client  ping|synth|check|analyze|metrics|stats|watch [<file|->] [--addr HOST:PORT]
                    [--n N ...] [--timeout SECS] [--backend B] [--wait-ms MS]
  sortsynth stats   [--addr HOST:PORT]
  sortsynth help

global flags (any subcommand):
  --log-level error|warn|info|debug|trace   diagnostic verbosity (default info)
  --trace FILE                              write a JSONL span/event log";

/// Dispatches a parsed command line.
pub fn dispatch(args: ParsedArgs) -> Result<(), ArgsError> {
    match args.command.as_str() {
        "synth" => synth(&args),
        "prove" => prove(&args),
        "check" => check(&args),
        "analyze" => analyze_cmd(&args),
        "lint" => lint(&args),
        "run" => run(&args),
        "serve" => serve(&args),
        "client" => client_cmd(&args),
        "stats" => stats_cmd(&args),
        "profile" => profile_cmd(&args),
        "inspect" => inspect_cmd(&args),
        "top" => top_cmd(&args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgsError::new(format!("unknown subcommand `{other}`"))),
    }
}

fn machine_from(args: &ParsedArgs) -> Result<Machine, ArgsError> {
    Ok(Machine::new(args.n()?, args.scratch()?, args.isa()?))
}

/// The [`KernelQuery`] describing what `synth` (without `--all`) will
/// search — the cache key for `--cache-dir` and the `client synth` payload.
fn synth_query(args: &ParsedArgs) -> Result<KernelQuery, ArgsError> {
    let mut query = KernelQuery::best(args.n()?, args.scratch()?, args.isa()?);
    if args.flag("plain") {
        query.optimal_instrs_only = false;
        query.budget_viability = false;
        query.cut = None;
    }
    query.max_len = args.num::<u32>("max-len")?;
    if let Some(k) = args.num::<f64>("cut")? {
        query.cut = Some(CutSpec::Factor {
            millis: (k * 1000.0).round() as u32,
        });
    }
    Ok(query)
}

fn open_cache(dir: &str) -> Result<KernelCache, ArgsError> {
    KernelCache::open(PathBuf::from(dir), 1024)
        .map_err(|e| ArgsError::new(format!("--cache-dir {dir}: {e}")))
}

fn synth(args: &ParsedArgs) -> Result<(), ArgsError> {
    if let Some(name) = args.options.get("backend") {
        if args.flag("all") {
            return Err(ArgsError::new(
                "--backend answers one query; it cannot enumerate with --all",
            ));
        }
        return synth_backend(args, name);
    }
    let machine = machine_from(args)?;
    let mut cfg = if args.flag("plain") {
        SynthesisConfig::new(machine.clone())
    } else {
        SynthesisConfig::best(machine.clone())
    };
    if let Some(max_len) = args.num::<u32>("max-len")? {
        cfg = cfg.max_len(max_len);
    }
    if let Some(k) = args.num::<f64>("cut")? {
        cfg = cfg.cut(Cut::Factor(k));
    }
    // `--all` enumerates rather than answers one query; the cache keys a
    // single canonical kernel per query, so the two are mutually exclusive.
    let cache = match args.options.get("cache-dir") {
        Some(dir) if !args.flag("all") => Some(open_cache(dir)?),
        _ => None,
    };
    if let Some(cache) = &cache {
        let query = synth_query(args)?;
        if let Some(entry) = cache.get(&query) {
            info!("# length {}, from cache", entry.program.len());
            print!("{}", machine.format_program(&entry.program));
            return Ok(());
        }
    }
    if args.flag("all") {
        // All-solutions needs the optimality-preserving configuration.
        cfg = SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .all_solutions(true);
        if let Some(max_len) = args.num::<u32>("max-len")? {
            cfg = cfg.max_len(max_len);
        } else {
            // Find the optimal length first, then enumerate at it.
            let probe = synthesize(&SynthesisConfig::best(machine.clone()));
            let len = probe
                .found_len
                .ok_or_else(|| ArgsError::new("no kernel found"))?;
            cfg = cfg.max_len(len);
        }
        if let Some(k) = args.num::<f64>("cut")? {
            cfg = cfg.cut(Cut::Factor(k));
        }
    }
    if args.flag("dead-write-cut") {
        cfg = cfg.dead_write_cut(true);
    }
    if args.flag("value-flow-cut") {
        cfg = cfg.value_flow_cut(true);
    }
    if let Some(threads) = args.num::<usize>("threads")? {
        // All-solutions enumeration always runs sequentially (the full DAG
        // needs ordered parent edges); the engine ignores `threads` there.
        cfg = cfg.threads(threads);
    }
    if let Some(secs) = args.num::<f64>("timeout")? {
        cfg = cfg.search_budget(SearchBudget::with_timeout(Duration::from_secs_f64(secs)));
    }
    if let Some(limit) = args.options.get("mem-limit") {
        cfg = cfg.mem_budget_bytes(parse_bytes(limit)?);
    }
    if let Some(dir) = args.options.get("spill-dir") {
        cfg = cfg.spill_dir(PathBuf::from(dir));
    }
    if let Some(dir) = args.options.get("resume") {
        cfg = cfg.resume_from(PathBuf::from(dir));
    }
    match args.options.get("key-width").map(String::as_str) {
        None | Some("64") => {}
        Some("128") => cfg = cfg.key_width(KeyWidth::U128),
        Some(other) => {
            return Err(ArgsError::new(format!(
                "--key-width: `{other}` (expected 64 or 128)"
            )))
        }
    }
    // The arena sizing table lives next to the kernel cache so repeat
    // queries pre-size their arenas instead of growing into them.
    if let Some(dir) = args.options.get("cache-dir") {
        cfg = cfg.sizing_path(PathBuf::from(dir).join("sizing.txt"));
    }
    if let Some(recorder) = flight_recorder(args)? {
        cfg = cfg.progress_hook(sortsynth_search::ProgressHook::new(move |p| {
            // Recording is best-effort: a full disk must not fail the synth.
            let _ = recorder.record(&p.recorder_frame());
        }));
    }
    let result = try_synthesize(&cfg).map_err(|e| ArgsError::new(e.to_string()))?;
    if result.stats.distance_table_skipped {
        warn!("# note: machine too large for the distance table; searched with degraded pruning");
    }
    if result.stats.resumed_frontier_states > 0 {
        info!(
            "# resumed {} frontier states from the journal",
            result.stats.resumed_frontier_states
        );
    }
    if result.stats.spilled_bytes > 0 {
        info!(
            "# spilled {} to disk ({} open states, {} closed entries, {} DDD duplicates)",
            fmt_bytes(result.stats.spilled_bytes),
            result.stats.spilled_open,
            result.stats.spilled_closed,
            result.stats.ddd_dedup_hits
        );
    }
    if result.stats.dead_write_pruned > 0 {
        info!(
            "# dead-write cut pruned {} successors",
            result.stats.dead_write_pruned
        );
    }
    if result.stats.value_flow_pruned > 0 {
        info!(
            "# value-flow cut pruned {} successors",
            result.stats.value_flow_pruned
        );
    }
    match result.found_len {
        None => match result.outcome {
            Outcome::TimeLimit | Outcome::Cancelled => Err(ArgsError::new(format!(
                "synthesis timed out after {:?} ({} states generated)",
                result.stats.search_time, result.stats.generated
            ))),
            _ => Err(ArgsError::new(format!(
                "no kernel found (outcome {:?})",
                result.outcome
            ))),
        },
        Some(len) => {
            if args.flag("all") {
                let count = result.solution_count();
                info!(
                    "# {count} kernels of length {len} ({} states, {:?})",
                    result.stats.generated, result.stats.search_time
                );
                let limit = args.num::<usize>("limit")?.unwrap_or(10);
                for (i, prog) in result.dag.programs(limit).iter().enumerate() {
                    println!("# solution {}", i + 1);
                    print!("{}", machine.format_program(prog));
                    println!();
                }
            } else {
                info!(
                    "# length {len}, {} states explored in {:?}",
                    result.stats.generated, result.stats.search_time
                );
                let prog = result.first_program().expect("found_len implies a program");
                print!("{}", machine.format_program(&prog));
                if let Some(cache) = &cache {
                    // A full disk is not a reason to fail the command.
                    let _ = cache.insert(CacheEntry {
                        query: synth_query(args)?,
                        program: prog,
                        minimal_certified: result.minimal_certified,
                        search_millis: result.stats.search_time.as_millis() as u64,
                        gate_checksum: None,
                    });
                }
            }
            Ok(())
        }
    }
}

/// `--record FILE`: a flight recorder for the search about to run.
fn flight_recorder(
    args: &ParsedArgs,
) -> Result<Option<std::sync::Arc<sortsynth_obs::FlightRecorder>>, ArgsError> {
    match args.options.get("record") {
        None => Ok(None),
        Some(path) => sortsynth_obs::FlightRecorder::create(path)
            .map(|r| Some(std::sync::Arc::new(r)))
            .map_err(|e| ArgsError::new(format!("--record {path}: {e}"))),
    }
}

/// `sortsynth synth --backend B`: run one named backend in process, or
/// `portfolio` to race every backend first-win behind the verify gate.
fn synth_backend(args: &ParsedArgs, name: &str) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let query = synth_query(args)?;
    let budget = match args.num::<f64>("timeout")? {
        Some(secs) => SearchBudget::with_timeout(Duration::from_secs_f64(secs)),
        None => SearchBudget::unlimited(),
    };
    let cache = args
        .options
        .get("cache-dir")
        .map(|dir| open_cache(dir))
        .transpose()?;
    if let Some(cache) = &cache {
        if let Some(entry) = cache.get(&query) {
            info!("# length {}, from cache", entry.program.len());
            print!("{}", machine.format_program(&entry.program));
            return Ok(());
        }
    }
    let (program, minimal_certified, search_millis) = if name == "portfolio" {
        // Same learned dispatch table as the server: load it from the cache
        // directory when one is given, record this race back into it.
        let policy_path = args
            .options
            .get("cache-dir")
            .map(|dir| PathBuf::from(dir).join(POLICY_FILE));
        let mut policy = policy_path
            .as_deref()
            .map(DispatchPolicy::load)
            .unwrap_or_default();
        let report = Portfolio::all().run(&query, &budget, Some(&policy));
        policy.record(&query, &report);
        if let Some(path) = &policy_path {
            let _ = policy.save(path);
        }
        match (report.winner, report.program) {
            (Some(winner), Some(program)) => {
                info!(
                    "# length {}, won by {} ({} of {} arms reported{}) in {:?}",
                    program.len(),
                    winner.name(),
                    report.outcomes.len(),
                    BackendKind::ALL.len(),
                    if report.widened { ", widened" } else { "" },
                    report.elapsed
                );
                (
                    program,
                    report.minimal_certified,
                    report.elapsed.as_millis() as u64,
                )
            }
            _ if budget.is_exhausted() => {
                return Err(ArgsError::new(format!(
                    "portfolio timed out after {:?} without a verified winner",
                    report.elapsed
                )))
            }
            _ => return Err(ArgsError::new("no kernel found by any backend")),
        }
    } else {
        let kind = BackendKind::parse(name).ok_or_else(|| {
            ArgsError::new(format!(
                "unknown backend `{name}` (expected portfolio or one of: {})",
                BackendKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let out = backend_for(kind).run(&query, &budget, None);
        match out.status {
            BackendStatus::Found {
                program,
                minimal_certified,
            } => {
                sortsynth_verify::gate(&machine, &program).map_err(|e| {
                    ArgsError::new(format!(
                        "backend `{name}` produced a program the verifier refused: {e}"
                    ))
                })?;
                info!(
                    "# length {}, backend {name}{} in {:?}",
                    program.len(),
                    if minimal_certified { ", minimal" } else { "" },
                    out.elapsed
                );
                (program, minimal_certified, out.elapsed.as_millis() as u64)
            }
            BackendStatus::NoProgram => {
                return Err(ArgsError::new(format!(
                    "backend `{name}` proved no kernel exists within the bound"
                )))
            }
            BackendStatus::Budget => {
                return Err(ArgsError::new(format!(
                    "backend `{name}` timed out after {:?}",
                    out.elapsed
                )))
            }
            BackendStatus::Unsupported => {
                return Err(ArgsError::new(format!(
                    "backend `{name}` does not support this query"
                )))
            }
        }
    };
    print!("{}", machine.format_program(&program));
    if let Some(cache) = &cache {
        // A full disk is not a reason to fail the command.
        let _ = cache.insert(CacheEntry {
            query,
            program,
            minimal_certified,
            search_millis,
            gate_checksum: None,
        });
    }
    Ok(())
}

fn prove(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let len = args
        .num::<u32>("len")?
        .ok_or_else(|| ArgsError::new("prove needs --len"))?;
    let budget = args.num::<u64>("budget-states")?;
    let below = prove_no_solution(&machine, len - 1, budget, Some(Duration::from_secs(3600)));
    match below.verdict {
        BoundVerdict::SolutionExists => {
            println!(
                "a kernel of length <= {} exists: {} is NOT optimal",
                len - 1,
                len
            );
        }
        BoundVerdict::Inconclusive => {
            println!(
                "inconclusive after {} states; raise --budget-states",
                below.stats.generated
            );
        }
        BoundVerdict::NoSolution => {
            let at = synthesize(
                &SynthesisConfig::new(machine.clone())
                    .budget_viability(true)
                    .max_len(len),
            );
            if at.found_len == Some(len) {
                println!(
                    "proven: the optimal kernel length for n = {} ({:?}) is exactly {len}",
                    machine.n(),
                    machine.mode()
                );
            } else {
                println!("no kernel of length <= {len} exists");
            }
        }
    }
    Ok(())
}

fn read_program(args: &ParsedArgs, machine: &Machine) -> Result<Program, ArgsError> {
    let source = args
        .positional
        .first()
        .ok_or_else(|| ArgsError::new("expected a program file (or `-` for stdin)"))?;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| ArgsError::new(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| ArgsError::new(format!("{source}: {e}")))?
    };
    machine
        .parse_program(&text)
        .map_err(|e| ArgsError::new(e.to_string()))
}

fn check(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let counterexamples = machine.counterexamples(&prog);
    if counterexamples.is_empty() {
        println!(
            "OK: sorts all {} permutations ({} instructions)",
            sortsynth_isa::factorial(machine.n()),
            prog.len()
        );
        Ok(())
    } else {
        println!(
            "INCORRECT: fails {} of {} permutations; first counterexample: {:?}",
            counterexamples.len(),
            sortsynth_isa::factorial(machine.n()),
            counterexamples[0]
        );
        Err(ArgsError::new("kernel is incorrect"))
    }
}

fn analyze_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let mix = InstrMix::of(&prog);
    let report = analyze(&prog, &ThroughputModel::default());
    println!("instructions : {}", prog.len());
    println!(
        "mix          : {} cmp, {} mov, {} cmov, {} min/max",
        mix.cmp, mix.mov, mix.cmov, mix.other
    );
    println!("score (§5.3) : {}", sampling_score(&prog));
    println!("critical path: {}", report.critical_path);
    println!(
        "cycles/iter  : {:.2} (predicted, uiCA-style model)",
        report.cycles_per_iteration
    );
    println!(
        "bottleneck   : {}",
        if report.latency_bound {
            "dependence chain (latency)"
        } else {
            "ports / issue width"
        }
    );
    println!(
        "correct      : {}",
        if machine.is_correct(&prog) {
            "yes"
        } else {
            "NO"
        }
    );
    Ok(())
}

/// `sortsynth lint`: run the static analyzer over a kernel and report the
/// verdict plus the lint catalog's diagnostics. Exits nonzero when any
/// diagnostic has error severity or the kernel is refuted outright.
fn lint(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let report = verify(&machine, &prog);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string(&report).expect("value-tree serialization is infallible")
        );
    } else if args.flag("fix") {
        // `--fix` prints the dead-code-eliminated program instead of
        // diagnosing it; the summary goes to stderr so the output can be
        // piped straight back into `check`/`lint`.
        let slim = dce(&machine, &prog);
        info!(
            "# dead-code elimination: {} -> {} instructions",
            prog.len(),
            slim.len()
        );
        print!("{}", machine.format_program(&slim));
    } else {
        if !args.flag("plain") {
            println!("verdict: {}", report.verdict.wire_name());
            match &report.verdict {
                Verdict::CertifiedPermutations { classes } => {
                    println!("classes: {classes} order classes discharged symbolically");
                }
                Verdict::RefutedPermutation { witness } => {
                    println!("witness: permutation {witness:?} is not sorted by this kernel");
                }
                Verdict::RefutedZeroOne { witness } => {
                    println!("witness: {witness:?} is not sorted by this kernel");
                }
                Verdict::TieUnsafe { witness } => {
                    println!("witness: tied input {witness:?} is not sorted by this kernel");
                }
                _ => {}
            }
            if report.dce_len < report.len {
                println!(
                    "dce    : {} of {} instructions are removable",
                    report.len - report.dce_len,
                    report.len
                );
            }
        }
        for diagnostic in &report.diagnostics {
            println!("{diagnostic}");
        }
    }
    if report.has_errors() {
        return Err(ArgsError::new("lint found error-severity diagnostics"));
    }
    if report.verdict.refuted() {
        return Err(ArgsError::new("kernel is refuted by a 0-1 counterexample"));
    }
    Ok(())
}

fn run(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let data_text = args
        .options
        .get("data")
        .ok_or_else(|| ArgsError::new("run needs --data V1,V2,..."))?;
    let mut data: Vec<i32> = Vec::new();
    for part in data_text.split(',') {
        data.push(
            part.trim()
                .parse()
                .map_err(|_| ArgsError::new(format!("--data: `{part}` is not an i32")))?,
        );
    }
    if data.len() < machine.n() as usize {
        return Err(ArgsError::new(format!(
            "--data needs at least {} values",
            machine.n()
        )));
    }
    let backend = if JitKernel::compile(&machine, &prog).is_ok() {
        let kernel = Kernel::from_program("cli", &machine, prog);
        kernel.sort(&mut data);
        "jit"
    } else {
        interpret(&machine, &prog, &mut data);
        "interpreter"
    };
    println!("{data:?}  ({backend})");
    Ok(())
}

fn serve(args: &ParsedArgs) -> Result<(), ArgsError> {
    let config = ServiceConfig {
        addr: args
            .options
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: args.num::<usize>("workers")?.unwrap_or(4),
        queue_depth: args.num::<usize>("queue-depth")?.unwrap_or(64),
        cache_dir: args.options.get("cache-dir").map(PathBuf::from),
        cache_capacity: args.num::<usize>("cache-capacity")?.unwrap_or(1024),
        default_timeout: match args.num::<f64>("timeout")? {
            Some(secs) => Some(Duration::from_secs_f64(secs)),
            None => Some(Duration::from_secs(30)),
        },
        search_threads: args.num::<usize>("search-threads")?.unwrap_or(1),
        // `--metrics` turns on periodic self-reporting of the live gauges;
        // the `metrics`/`stats` protocol verbs are always available.
        self_report: args.flag("metrics").then(|| Duration::from_secs(10)),
        // `--portfolio` races every backend for synth requests that don't
        // name one (an empty roster means "all arms" to the server).
        portfolio: args.flag("portfolio").then(Vec::new),
        record_dir: args.options.get("record-dir").map(PathBuf::from),
        search_mem_limit: args
            .options
            .get("search-mem-limit")
            .map(|v| parse_bytes(v))
            .transpose()?,
    };
    let server = Server::bind(config).map_err(|e| ArgsError::new(format!("bind: {e}")))?;
    // Tests (and scripts using port 0) parse this line for the bound port.
    info!("# sortsynth service listening on {}", server.local_addr());
    server
        .run()
        .map_err(|e| ArgsError::new(format!("serve: {e}")))
}

/// Reads program text for `client check|analyze` (the *server* parses it).
fn read_text(source: Option<&String>) -> Result<String, ArgsError> {
    let source =
        source.ok_or_else(|| ArgsError::new("expected a program file (or `-` for stdin)"))?;
    if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| ArgsError::new(format!("stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(source).map_err(|e| ArgsError::new(format!("{source}: {e}")))
    }
}

fn client_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let op = args.positional.first().map(String::as_str).ok_or_else(|| {
        ArgsError::new(
            "client needs an operation: ping | synth | check | analyze | metrics | stats | watch",
        )
    })?;
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| ArgsError::new(format!("connect {addr}: {e}")))?;
    let response = match op {
        "ping" => client.ping(),
        "metrics" => client.metrics(),
        "stats" => client.stats(),
        "synth" => {
            let timeout_ms = args.num::<f64>("timeout")?.map(|s| (s * 1000.0) as u64);
            let backend = args.options.get("backend").cloned();
            client.synth_with(synth_query(args)?, timeout_ms, backend)
        }
        "check" | "analyze" => {
            let machine = machine_from(args)?;
            let text = read_text(args.positional.get(1))?;
            if op == "check" {
                client.check(machine, text)
            } else {
                client.analyze(machine, text)
            }
        }
        "watch" => {
            return stream_watch(&mut client, args, |frame, nodes_per_sec| {
                println!("{}", progress_line(frame, nodes_per_sec));
            })
        }
        other => {
            return Err(ArgsError::new(format!(
                "unknown client operation `{other}`"
            )))
        }
    }
    .map_err(|e| ArgsError::new(format!("request: {e}")))?;
    render_response(response)
}

/// One rendered line of a live progress frame.
fn progress_line(frame: &sortsynth_service::ProgressReply, nodes_per_sec: f64) -> String {
    let f_bound = match frame.f_bound {
        Some(f) => f.to_string(),
        None => "-".to_string(),
    };
    // Parallel runs report per-shard arenas; sequential (and spilling) runs
    // report a whole-search resident estimate instead.
    let mem: u64 = match frame.resident_bytes {
        0 => frame.shards.iter().map(|s| s.arena_bytes).sum(),
        resident => resident,
    };
    let mut line = format!(
        "t={:>7.2}s  expanded={:<10} open={:<9} f={:<3} nodes/s={:<9.0} mem={}",
        frame.elapsed_millis as f64 / 1000.0,
        frame.expanded,
        frame.open,
        f_bound,
        nodes_per_sec,
        fmt_bytes(mem),
    );
    if frame.spilled_bytes > 0 {
        line.push_str(&format!("  spilled={}", fmt_bytes(frame.spilled_bytes)));
    }
    if frame.finished {
        line.push_str(&format!(
            "  [finished: {}]",
            frame.outcome.as_deref().unwrap_or("?")
        ));
    }
    line
}

/// Streams an in-flight server search's frames through `render`, computing
/// a nodes/sec estimate from consecutive frames. Shared by `client watch`
/// (line per frame) and `top` (refreshing screen).
fn stream_watch(
    client: &mut Client,
    args: &ParsedArgs,
    render: impl Fn(&sortsynth_service::ProgressReply, f64),
) -> Result<(), ArgsError> {
    let backend = args.options.get("backend").cloned();
    let wait_ms = args.num::<u64>("wait-ms")?;
    client
        .begin_watch(synth_query(args)?, backend, wait_ms)
        .map_err(|e| ArgsError::new(format!("request: {e}")))?;
    let mut prev: Option<(u64, u64)> = None; // (elapsed_millis, expanded)
    loop {
        match client
            .next_frame()
            .map_err(|e| ArgsError::new(format!("request: {e}")))?
        {
            Response::Progress(frame) => {
                let nodes_per_sec = match prev {
                    Some((t0, e0)) if frame.elapsed_millis > t0 => {
                        (frame.expanded.saturating_sub(e0)) as f64
                            / ((frame.elapsed_millis - t0) as f64 / 1000.0)
                    }
                    _ if frame.elapsed_millis > 0 => {
                        frame.expanded as f64 / (frame.elapsed_millis as f64 / 1000.0)
                    }
                    _ => 0.0,
                };
                prev = Some((frame.elapsed_millis, frame.expanded));
                let finished = frame.finished;
                render(&frame, nodes_per_sec);
                if finished {
                    return Ok(());
                }
            }
            Response::Error { message } => {
                return Err(ArgsError::new(format!("server error: {message}")))
            }
            other => return render_response(other),
        }
    }
}

/// `sortsynth stats`: query a running server for its live counters.
fn stats_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| ArgsError::new(format!("connect {addr}: {e}")))?;
    let response = client
        .stats()
        .map_err(|e| ArgsError::new(format!("request: {e}")))?;
    render_response(response)
}

/// `sortsynth profile`: run one search with the phase profiler enabled and
/// print the per-phase attribution table.
fn profile_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    use sortsynth_obs::profile::{time_global, Phase, PHASE_COUNT};

    sortsynth_obs::profile::set_enabled(true);
    let machine = machine_from(args)?;
    let mut cfg = if args.flag("plain") {
        SynthesisConfig::new(machine.clone())
    } else {
        SynthesisConfig::best(machine.clone())
    };
    if let Some(max_len) = args.num::<u32>("max-len")? {
        cfg = cfg.max_len(max_len);
    }
    if let Some(k) = args.num::<f64>("cut")? {
        cfg = cfg.cut(Cut::Factor(k));
    }
    if let Some(threads) = args.num::<usize>("threads")? {
        cfg = cfg.threads(threads);
    }
    if let Some(secs) = args.num::<f64>("timeout")? {
        cfg = cfg.search_budget(SearchBudget::with_timeout(Duration::from_secs_f64(secs)));
    }
    let result = synthesize(&cfg);

    // The engine attributes its own phases; the verification gate of the
    // found kernel runs here, timed onto the VerifyGate counter (read back
    // as a delta so earlier runs in this process don't leak in).
    let mut phase_nanos: [u64; PHASE_COUNT] = result.stats.phase_nanos;
    let gate_counter = format!("sortsynth_phase_{}_nanos_total", Phase::VerifyGate.token());
    let mut gate_nanos = 0;
    if let Some(prog) = result.first_program() {
        let before = sortsynth_obs::registry().counter_value(&gate_counter);
        time_global(Phase::VerifyGate, || {
            sortsynth_verify::gate(&machine, &prog)
        })
        .map_err(|e| ArgsError::new(format!("verification gate refused the kernel: {e}")))?;
        gate_nanos = sortsynth_obs::registry().counter_value(&gate_counter) - before;
        phase_nanos[Phase::VerifyGate as usize] += gate_nanos;
    }
    sortsynth_obs::profile::set_enabled(false);

    match result.found_len {
        Some(len) => info!(
            "# length {len}, {} states explored in {:?}",
            result.stats.generated, result.stats.search_time
        ),
        None => info!("# no kernel found (outcome {:?})", result.outcome),
    }
    let wall = result.stats.distance_build.as_nanos() as u64
        + result.stats.search_time.as_nanos() as u64
        + gate_nanos;
    let attributed: u64 = phase_nanos.iter().sum();
    println!("{:<18} {:>12} {:>7}  description", "phase", "time", "share");
    for phase in Phase::ALL {
        let nanos = phase_nanos[phase as usize];
        let share = if wall > 0 {
            100.0 * nanos as f64 / wall as f64
        } else {
            0.0
        };
        println!(
            "{:<18} {:>12} {:>6.1}%  {}",
            phase.token(),
            fmt_nanos(nanos),
            share,
            phase.describe()
        );
    }
    println!(
        "attributed {} of {} wall ({:.1}%)",
        fmt_nanos(attributed),
        fmt_nanos(wall),
        if wall > 0 {
            100.0 * attributed as f64 / wall as f64
        } else {
            0.0
        }
    );
    Ok(())
}

/// `sortsynth inspect`: post-mortem summary of a flight recording.
fn inspect_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| ArgsError::new("inspect needs a recording path (see synth --record)"))?;
    let recording =
        sortsynth_obs::read_recording(path).map_err(|e| ArgsError::new(format!("{path}: {e}")))?;
    if recording.frames.is_empty() {
        return Err(ArgsError::new(format!(
            "{path}: no intact frames ({} bytes lost)",
            recording.lost_bytes
        )));
    }
    let first = recording.frames.first().unwrap();
    let last = recording.frames.last().unwrap();
    let duration_secs = last.elapsed_micros as f64 / 1e6;
    let avg_nodes_per_sec = if last.elapsed_micros > 0 {
        last.expanded as f64 / duration_secs
    } else {
        0.0
    };
    // Peak rate and per-shard high-water marks come from frame deltas: the
    // recording is the only survivor of a crashed run, so everything is
    // derived from it rather than from live engine state.
    let mut peak_nodes_per_sec = avg_nodes_per_sec;
    for pair in recording.frames.windows(2) {
        let dt = pair[1]
            .elapsed_micros
            .saturating_sub(pair[0].elapsed_micros);
        if dt > 0 {
            let rate = pair[1].expanded.saturating_sub(pair[0].expanded) as f64 / (dt as f64 / 1e6);
            peak_nodes_per_sec = peak_nodes_per_sec.max(rate);
        }
    }
    let shard_count = recording
        .frames
        .iter()
        .map(|f| f.shards.len())
        .max()
        .unwrap_or(0);
    let mut shard_peaks = vec![sortsynth_obs::ShardFrame::default(); shard_count];
    for frame in &recording.frames {
        for (i, shard) in frame.shards.iter().enumerate() {
            let peak = &mut shard_peaks[i];
            peak.interned_states = peak.interned_states.max(shard.interned_states);
            peak.arena_bytes = peak.arena_bytes.max(shard.arena_bytes);
            peak.open_depth = peak.open_depth.max(shard.open_depth);
        }
    }
    let (peak_arena_shard, peak_arena_bytes) = shard_peaks
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.arena_bytes))
        .max_by_key(|&(_, b)| b)
        .unwrap_or((0, 0));

    if args.flag("json") {
        use serde::Value;
        let shards = shard_peaks
            .iter()
            .map(|s| {
                Value::map([
                    ("interned_states", Value::UInt(s.interned_states)),
                    ("arena_bytes", Value::UInt(s.arena_bytes)),
                    ("open_depth", Value::UInt(s.open_depth)),
                ])
            })
            .collect();
        let value = Value::map([
            ("frames", Value::UInt(recording.frames.len() as u64)),
            ("segments", Value::UInt(recording.segments as u64)),
            ("lost_bytes", Value::UInt(recording.lost_bytes)),
            ("rejected_tail", Value::Bool(recording.rejected_tail)),
            ("duration_secs", Value::Float(duration_secs)),
            ("finished", Value::Bool(last.finished)),
            (
                "outcome",
                match &last.outcome {
                    Some(o) => Value::Str(o.clone()),
                    None => Value::Null,
                },
            ),
            ("expanded", Value::UInt(last.expanded)),
            ("generated", Value::UInt(last.generated)),
            ("open", Value::UInt(last.open)),
            ("avg_nodes_per_sec", Value::Float(avg_nodes_per_sec)),
            ("peak_nodes_per_sec", Value::Float(peak_nodes_per_sec)),
            ("viability_pruned", Value::UInt(last.viability_pruned)),
            ("cut_pruned", Value::UInt(last.cut_pruned)),
            ("dedup_hits", Value::UInt(last.dedup_hits)),
            ("dead_write_pruned", Value::UInt(last.dead_write_pruned)),
            ("value_flow_pruned", Value::UInt(last.value_flow_pruned)),
            ("spilled_open", Value::UInt(last.spilled_open)),
            ("spilled_closed", Value::UInt(last.spilled_closed)),
            ("ddd_dedup_hits", Value::UInt(last.ddd_dedup_hits)),
            (
                "resumed_frontier_states",
                Value::UInt(last.resumed_frontier_states),
            ),
            ("resident_bytes", Value::UInt(last.resident_bytes)),
            ("spilled_bytes", Value::UInt(last.spilled_bytes)),
            (
                "distance_table_skipped",
                Value::Bool(last.distance_table_skipped),
            ),
            ("peak_arena_bytes", Value::UInt(peak_arena_bytes)),
            ("shards", Value::Seq(shards)),
        ]);
        println!(
            "{}",
            serde_json::to_string(&value).expect("value-tree serialization is infallible")
        );
        return Ok(());
    }

    // Keyed `name: value` lines, one fact per line, greppable from CI.
    println!(
        "frames: {} ({} segment{}, {} bytes lost{})",
        recording.frames.len(),
        recording.segments,
        if recording.segments == 1 { "" } else { "s" },
        recording.lost_bytes,
        if recording.rejected_tail {
            ", torn tail dropped"
        } else {
            ""
        }
    );
    println!("duration: {duration_secs:.2}s");
    println!("finished: {}", last.finished);
    println!("outcome: {}", last.outcome.as_deref().unwrap_or("-"));
    println!("expanded: {}", last.expanded);
    println!("generated: {}", last.generated);
    println!("open: {}", last.open);
    println!("nodes/sec: {avg_nodes_per_sec:.0} avg, {peak_nodes_per_sec:.0} peak");
    println!(
        "f-bound: {} -> {}",
        first.f_bound.map_or("-".into(), |f| f.to_string()),
        last.f_bound.map_or("-".into(), |f| f.to_string()),
    );
    println!(
        "pruned: {} viability, {} cut, {} dedup, {} dead-write, {} value-flow",
        last.viability_pruned,
        last.cut_pruned,
        last.dedup_hits,
        last.dead_write_pruned,
        last.value_flow_pruned
    );
    if last.distance_table_skipped {
        println!("distance table: skipped (degraded pruning)");
    }
    if last.resumed_frontier_states > 0 {
        println!("resumed: {} frontier states", last.resumed_frontier_states);
    }
    if last.resident_bytes > 0 {
        println!("resident: {}", fmt_bytes(last.resident_bytes));
    }
    if last.spilled_bytes > 0 {
        println!(
            "spill: {} written ({} open states, {} closed entries, {} DDD dedups)",
            fmt_bytes(last.spilled_bytes),
            last.spilled_open,
            last.spilled_closed,
            last.ddd_dedup_hits
        );
    }
    for (i, shard) in shard_peaks.iter().enumerate() {
        println!(
            "shard {i}: peak {} states, {} arena, open depth {}",
            shard.interned_states,
            fmt_bytes(shard.arena_bytes),
            shard.open_depth
        );
    }
    println!("peak arena_bytes: {peak_arena_bytes} (shard {peak_arena_shard})");
    Ok(())
}

/// `sortsynth top`: live view of an in-flight server search, refreshing in
/// place on a terminal and degrading to one line per frame in a pipe.
fn top_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    use std::io::IsTerminal;
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| ArgsError::new(format!("connect {addr}: {e}")))?;
    let clear = std::io::stdout().is_terminal();
    stream_watch(&mut client, args, move |frame, nodes_per_sec| {
        if clear {
            // Home + clear-to-end keeps the dashboard in place per frame.
            print!("\x1b[H\x1b[2J");
        }
        println!("sortsynth top — {addr}");
        println!("{}", progress_line(frame, nodes_per_sec));
        println!(
            "generated={}  dedup={}  pruned: viability={} cut={} dead-write={} value-flow={}",
            frame.generated,
            frame.dedup_hits,
            frame.viability_pruned,
            frame.cut_pruned,
            frame.dead_write_pruned,
            frame.value_flow_pruned
        );
        if frame.spilled_bytes > 0 || frame.resumed_frontier_states > 0 {
            println!(
                "spill: {} on disk ({} open, {} closed, {} DDD dedups), resumed {}",
                fmt_bytes(frame.spilled_bytes),
                frame.spilled_open,
                frame.spilled_closed,
                frame.ddd_dedup_hits,
                frame.resumed_frontier_states
            );
        }
        for (i, shard) in frame.shards.iter().enumerate() {
            println!(
                "shard {i}: {} states, {} arena, open depth {}",
                shard.interned_states,
                fmt_bytes(shard.arena_bytes),
                shard.open_depth
            );
        }
    })
}

/// Human-readable byte count.
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

/// Human-readable nanosecond duration.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn render_response(response: Response) -> Result<(), ArgsError> {
    match response {
        Response::Pong => {
            println!("pong");
            Ok(())
        }
        Response::Slept => {
            println!("slept");
            Ok(())
        }
        Response::Synth(reply) => {
            let source = match reply.source {
                ReplySource::Computed => "computed",
                ReplySource::Cache => "cache",
                ReplySource::Coalesced => "coalesced",
            };
            if reply.distance_table_skipped {
                warn!("# note: machine too large for the distance table; server searched with degraded pruning");
            }
            match reply.program {
                Some(text) => {
                    info!(
                        "# length {}, {source}, search {} ms{}{}",
                        reply.found_len.unwrap_or(0),
                        reply.search_millis,
                        if reply.minimal_certified {
                            ", minimal"
                        } else {
                            ""
                        },
                        match &reply.backend {
                            Some(backend) => format!(", backend {backend}"),
                            None => String::new(),
                        }
                    );
                    print!("{text}");
                    Ok(())
                }
                None => Err(ArgsError::new(
                    "no kernel exists within the requested bound",
                )),
            }
        }
        Response::Check(reply) => {
            if reply.correct {
                println!("OK: kernel is correct");
                Ok(())
            } else {
                println!("INCORRECT: fails {} permutations", reply.counterexamples);
                Err(ArgsError::new("kernel is incorrect"))
            }
        }
        Response::Analyze(report) => {
            println!("critical path: {}", report.critical_path);
            println!("cycles/iter  : {:.2}", report.cycles_per_iteration);
            println!(
                "bottleneck   : {}",
                if report.latency_bound {
                    "dependence chain (latency)"
                } else {
                    "ports / issue width"
                }
            );
            println!("verdict      : {}", report.verdict);
            for lint in &report.lints {
                match lint.index {
                    Some(i) => {
                        println!("{}[{}] at {i}: {}", lint.severity, lint.kind, lint.message)
                    }
                    None => println!("{}[{}]: {}", lint.severity, lint.kind, lint.message),
                }
            }
            if report.lints.iter().any(|l| l.severity == "error") {
                return Err(ArgsError::new("analysis found error-severity lints"));
            }
            Ok(())
        }
        Response::Metrics { text } => {
            print!("{text}");
            Ok(())
        }
        Response::Stats(s) => {
            println!(
                "uptime                 : {:.1} s",
                s.uptime_ms as f64 / 1000.0
            );
            println!("queue depth            : {}", s.queue_depth);
            println!("inflight               : {}", s.inflight);
            println!("requests total         : {}", s.requests_total);
            println!("requests shed          : {}", s.shed_total);
            println!("worker panics          : {}", s.worker_panics);
            println!("searches started       : {}", s.searches_started);
            println!("singleflight coalesced : {}", s.singleflight_coalesced);
            println!("cache memory hits      : {}", s.cache_memory_hits);
            println!("cache disk hits        : {}", s.cache_disk_hits);
            println!("cache misses           : {}", s.cache_misses);
            println!("cache insertions       : {}", s.cache_insertions);
            println!("cache evictions        : {}", s.cache_evictions);
            println!("cache verify rejected  : {}", s.cache_verify_rejected);
            println!("cache verify skipped   : {}", s.cache_verify_skipped);
            println!("portfolio races        : {}", s.portfolio_races);
            println!("portfolio wins         : {}", s.portfolio_wins);
            println!("portfolio widened      : {}", s.portfolio_widened);
            if !s.portfolio.is_empty() {
                println!("dispatch table (shape backend wins losses cancelled millis):");
                for row in &s.portfolio {
                    println!(
                        "  {:<12} {:<10} {:>5} {:>6} {:>9} {:>7}",
                        row.shape,
                        row.backend,
                        row.wins,
                        row.losses,
                        row.cancelled,
                        row.total_millis
                    );
                }
            }
            Ok(())
        }
        Response::Timeout(t) => Err(ArgsError::new(format!(
            "server timed out after {} ms ({} states generated{})",
            t.elapsed_ms,
            t.generated,
            if t.cancelled { ", cancelled" } else { "" }
        ))),
        Response::Progress(frame) => {
            // Progress frames normally stay inside the watch stream loop;
            // render a stray one rather than erroring.
            println!("{}", progress_line(&frame, 0.0));
            Ok(())
        }
        Response::Overloaded => Err(ArgsError::new("server overloaded; retry later")),
        Response::Error { message } => Err(ArgsError::new(format!("server error: {message}"))),
    }
}
