//! Subcommand implementations.

use std::io::Read as _;
use std::time::Duration;

use sortsynth_isa::{
    analyze, sampling_score, InstrMix, Machine, Program, ThroughputModel,
};
use sortsynth_jit::JitKernel;
use sortsynth_kernels::{interpret, Kernel};
use sortsynth_search::{
    prove_no_solution, synthesize, BoundVerdict, Cut, SynthesisConfig,
};

use crate::args::{ArgsError, ParsedArgs};

/// Help text shown on errors and `sortsynth help`.
pub const USAGE: &str = "usage:
  sortsynth synth   --n N [--scratch M] [--isa cmov|minmax] [--all] [--max-len L] [--cut K]
  sortsynth prove   --n N --len L [--budget-states S]
  sortsynth check   <file|-> --n N [--scratch M] [--isa cmov|minmax]
  sortsynth analyze <file|-> --n N [--scratch M] [--isa cmov|minmax]
  sortsynth run     <file|-> --n N [--scratch M] [--isa cmov|minmax] --data V1,V2,...
  sortsynth help";

/// Dispatches a parsed command line.
pub fn dispatch(args: ParsedArgs) -> Result<(), ArgsError> {
    match args.command.as_str() {
        "synth" => synth(&args),
        "prove" => prove(&args),
        "check" => check(&args),
        "analyze" => analyze_cmd(&args),
        "run" => run(&args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgsError::new(format!("unknown subcommand `{other}`"))),
    }
}

fn machine_from(args: &ParsedArgs) -> Result<Machine, ArgsError> {
    Ok(Machine::new(args.n()?, args.scratch()?, args.isa()?))
}

fn synth(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let mut cfg = SynthesisConfig::best(machine.clone());
    if let Some(max_len) = args.num::<u32>("max-len")? {
        cfg = cfg.max_len(max_len);
    }
    if let Some(k) = args.num::<f64>("cut")? {
        cfg = cfg.cut(Cut::Factor(k));
    }
    if args.flag("all") {
        // All-solutions needs the optimality-preserving configuration.
        cfg = SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .all_solutions(true);
        if let Some(max_len) = args.num::<u32>("max-len")? {
            cfg = cfg.max_len(max_len);
        } else {
            // Find the optimal length first, then enumerate at it.
            let probe = synthesize(&SynthesisConfig::best(machine.clone()));
            let len = probe
                .found_len
                .ok_or_else(|| ArgsError::new("no kernel found"))?;
            cfg = cfg.max_len(len);
        }
        if let Some(k) = args.num::<f64>("cut")? {
            cfg = cfg.cut(Cut::Factor(k));
        }
    }
    let result = synthesize(&cfg);
    match result.found_len {
        None => Err(ArgsError::new(format!(
            "no kernel found (outcome {:?})",
            result.outcome
        ))),
        Some(len) => {
            if args.flag("all") {
                let count = result.solution_count();
                eprintln!(
                    "# {count} kernels of length {len} ({} states, {:?})",
                    result.stats.generated, result.stats.search_time
                );
                let limit = args.num::<usize>("limit")?.unwrap_or(10);
                for (i, prog) in result.dag.programs(limit).iter().enumerate() {
                    println!("# solution {}", i + 1);
                    print!("{}", machine.format_program(prog));
                    println!();
                }
            } else {
                eprintln!(
                    "# length {len}, {} states explored in {:?}",
                    result.stats.generated, result.stats.search_time
                );
                let prog = result.first_program().expect("found_len implies a program");
                print!("{}", machine.format_program(&prog));
            }
            Ok(())
        }
    }
}

fn prove(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let len = args
        .num::<u32>("len")?
        .ok_or_else(|| ArgsError::new("prove needs --len"))?;
    let budget = args.num::<u64>("budget-states")?;
    let below = prove_no_solution(&machine, len - 1, budget, Some(Duration::from_secs(3600)));
    match below.verdict {
        BoundVerdict::SolutionExists => {
            println!("a kernel of length <= {} exists: {} is NOT optimal", len - 1, len);
        }
        BoundVerdict::Inconclusive => {
            println!(
                "inconclusive after {} states; raise --budget-states",
                below.stats.generated
            );
        }
        BoundVerdict::NoSolution => {
            let at = synthesize(
                &SynthesisConfig::new(machine.clone())
                    .budget_viability(true)
                    .max_len(len),
            );
            if at.found_len == Some(len) {
                println!(
                    "proven: the optimal kernel length for n = {} ({:?}) is exactly {len}",
                    machine.n(),
                    machine.mode()
                );
            } else {
                println!("no kernel of length <= {len} exists");
            }
        }
    }
    Ok(())
}

fn read_program(args: &ParsedArgs, machine: &Machine) -> Result<Program, ArgsError> {
    let source = args
        .positional
        .first()
        .ok_or_else(|| ArgsError::new("expected a program file (or `-` for stdin)"))?;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| ArgsError::new(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| ArgsError::new(format!("{source}: {e}")))?
    };
    machine
        .parse_program(&text)
        .map_err(|e| ArgsError::new(e.to_string()))
}

fn check(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let counterexamples = machine.counterexamples(&prog);
    if counterexamples.is_empty() {
        println!(
            "OK: sorts all {} permutations ({} instructions)",
            sortsynth_isa::factorial(machine.n()),
            prog.len()
        );
        Ok(())
    } else {
        println!(
            "INCORRECT: fails {} of {} permutations; first counterexample: {:?}",
            counterexamples.len(),
            sortsynth_isa::factorial(machine.n()),
            counterexamples[0]
        );
        Err(ArgsError::new("kernel is incorrect"))
    }
}

fn analyze_cmd(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let mix = InstrMix::of(&prog);
    let report = analyze(&prog, &ThroughputModel::default());
    println!("instructions : {}", prog.len());
    println!(
        "mix          : {} cmp, {} mov, {} cmov, {} min/max",
        mix.cmp, mix.mov, mix.cmov, mix.other
    );
    println!("score (§5.3) : {}", sampling_score(&prog));
    println!("critical path: {}", report.critical_path);
    println!("cycles/iter  : {:.2} (predicted, uiCA-style model)", report.cycles_per_iteration);
    println!(
        "bottleneck   : {}",
        if report.latency_bound { "dependence chain (latency)" } else { "ports / issue width" }
    );
    println!(
        "correct      : {}",
        if machine.is_correct(&prog) { "yes" } else { "NO" }
    );
    Ok(())
}

fn run(args: &ParsedArgs) -> Result<(), ArgsError> {
    let machine = machine_from(args)?;
    let prog = read_program(args, &machine)?;
    let data_text = args
        .options
        .get("data")
        .ok_or_else(|| ArgsError::new("run needs --data V1,V2,..."))?;
    let mut data: Vec<i32> = Vec::new();
    for part in data_text.split(',') {
        data.push(
            part.trim()
                .parse()
                .map_err(|_| ArgsError::new(format!("--data: `{part}` is not an i32")))?,
        );
    }
    if data.len() < machine.n() as usize {
        return Err(ArgsError::new(format!(
            "--data needs at least {} values",
            machine.n()
        )));
    }
    let backend = if JitKernel::compile(&machine, &prog).is_ok() {
        let kernel = Kernel::from_program("cli", &machine, prog);
        kernel.sort(&mut data);
        "jit"
    } else {
        interpret(&machine, &prog, &mut data);
        "interpreter"
    };
    println!("{data:?}  ({backend})");
    Ok(())
}
