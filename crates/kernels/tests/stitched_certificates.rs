//! Certificate composition at sizes where exhaustive enumeration stops being
//! a reasonable gate: stitched window-3 kernels for n = 6..8 verify through
//! `verify_stitched` in work linear in program length, never touching the
//! `n!` permutation oracle.

use sortsynth_isa::{factorial, IsaMode};
use sortsynth_kernels::stitched_window3_kernel;
use sortsynth_verify::{verify_stitched, BlockSpec, StitchError};

fn specs(blocks: &[sortsynth_kernels::StitchedBlock]) -> Vec<BlockSpec> {
    blocks
        .iter()
        .map(|(start, end, sorts)| BlockSpec {
            start: *start,
            end: *end,
            sorts: sorts.clone(),
        })
        .collect()
}

#[test]
fn stitched_n6_composes_without_factorial_enumeration() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let (machine, prog, blocks) = stitched_window3_kernel(6, mode);
        // Cross-check the construction itself the slow way once.
        assert!(machine.is_correct(&prog), "{mode:?}");

        let cert = verify_stitched(&machine, &prog, &specs(&blocks))
            .unwrap_or_else(|e| panic!("{mode:?}: {e:?}"));
        assert_eq!(cert.blocks, blocks.len() as u64);
        // Each window-3 block costs 3! order classes plus one 2^n model
        // check for the comparator skeleton — far below 6! = 720.
        assert_eq!(cert.classes, 6 * cert.blocks + (1 << 6));
        assert!(
            cert.classes < factorial(6),
            "{mode:?}: composed proof degenerated to enumeration"
        );
    }
}

#[test]
fn stitched_n8_composes_in_linear_work() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let (machine, prog, blocks) = stitched_window3_kernel(8, mode);
        let cert = verify_stitched(&machine, &prog, &specs(&blocks))
            .unwrap_or_else(|e| panic!("{mode:?}: {e:?}"));
        assert_eq!(cert.blocks, 21);
        assert_eq!(cert.classes, 6 * 21 + (1 << 8));
        // 8! = 40320 inputs x ~200 instructions is what the oracle would
        // cost; the composed certificate is two orders of magnitude smaller.
        assert!(cert.classes < factorial(8) / 100, "{mode:?}");
    }
}

#[test]
fn a_corrupted_block_is_rejected_not_miscertified() {
    let (machine, mut prog, blocks) = stitched_window3_kernel(6, IsaMode::Cmov);
    // Break one instruction in the middle block: swap a cmovg's operands.
    let (start, _, _) = blocks[blocks.len() / 2];
    let victim = prog[start + 2];
    prog[start + 2] = sortsynth_isa::Instr::new(victim.op, victim.src, victim.dst);
    match verify_stitched(&machine, &prog, &specs(&blocks)) {
        Ok(cert) => panic!("corrupted kernel earned {cert:?}"),
        Err(StitchError::Unproved { .. } | StitchError::BadSpec { .. }) => {}
        Err(StitchError::Refuted { witness }) => {
            let after = machine.run(&prog, machine.initial_state(&witness));
            assert!(!machine.is_sorted(after), "witness {witness:?} sorts fine");
        }
    }
}
