//! Lints every hand-written baseline kernel: a regression here means either
//! a reference program rotted or the analyzer started flagging correct code.

use sortsynth_isa::IsaMode;
use sortsynth_kernels::{network_kernel, reference};
use sortsynth_verify::{verify, Verdict};

#[test]
fn reference_kernels_are_lint_clean() {
    for (name, machine, prog) in [
        ("paper_synth_cmov3", reference::paper_synth_cmov3()),
        ("paper_synth_minmax3", reference::paper_synth_minmax3()),
        ("alphadev_cmov3", reference::alphadev_cmov3()),
        ("enum_worst_cmov3", reference::enum_worst_cmov3()),
        ("enum_minmax3", reference::enum_minmax3()),
        ("enum_cmov5", reference::enum_cmov5()),
        ("enum_minmax4", reference::enum_minmax4()),
        ("enum_minmax5", reference::enum_minmax5()),
        ("enum_minmax6", reference::enum_minmax6()),
    ]
    .map(|(name, (machine, prog))| (name, machine, prog))
    {
        let report = verify(&machine, &prog);
        assert!(
            !report.has_errors(),
            "{name}: error-severity lint on a baseline kernel:\n{:#?}",
            report.diagnostics
        );
        assert!(
            !report.verdict.refuted(),
            "{name}: baseline kernel refuted: {:?}",
            report.verdict
        );
    }
}

#[test]
fn minmax_references_are_certified() {
    // Min/max programs are determined by their 0-1 behaviour, so a correct
    // min/max reference must earn a certificate, not just "passed".
    for (name, (machine, prog)) in [
        ("paper_synth_minmax3", reference::paper_synth_minmax3()),
        ("enum_minmax3", reference::enum_minmax3()),
        ("enum_minmax4", reference::enum_minmax4()),
        ("enum_minmax5", reference::enum_minmax5()),
        ("enum_minmax6", reference::enum_minmax6()),
    ] {
        let report = verify(&machine, &prog);
        assert!(
            report.verdict.certified(),
            "{name}: expected a certificate, got {:?}",
            report.verdict
        );
    }
}

#[test]
fn alphadev_sort3_is_tie_unsafe_but_admitted() {
    // AlphaDev's sort3 sorts every permutation but mis-sorts the tied input
    // [1, 1, 0] — the analyzer must say so without calling it incorrect,
    // and the cache gate must still admit it.
    let (machine, prog) = reference::alphadev_cmov3();
    assert!(machine.is_correct(&prog));
    let report = verify(&machine, &prog);
    assert!(
        matches!(report.verdict, Verdict::TieUnsafe { .. }),
        "{:?}",
        report.verdict
    );
    assert!(sortsynth_verify::gate(&machine, &prog).is_ok());
}

#[test]
fn cmov3_reference_set_survives_analysis() {
    for (name, machine, prog) in reference::cmov3_references() {
        let report = verify(&machine, &prog);
        assert!(!report.has_errors(), "{name}: {:#?}", report.diagnostics);
        assert!(!report.verdict.refuted(), "{name}: {:?}", report.verdict);
    }
}

#[test]
fn generated_networks_earn_the_network_certificate() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=8u8 {
            let (machine, prog) = network_kernel(n, mode);
            let report = verify(&machine, &prog);
            assert_eq!(
                report.verdict,
                Verdict::CertifiedNetwork,
                "n={n} {mode:?}: {:#?}",
                report.diagnostics
            );
            assert!(
                !report.has_errors(),
                "n={n} {mode:?}: {:#?}",
                report.diagnostics
            );
            // A generated network has no removable instruction.
            assert_eq!(report.dce_len, report.len, "n={n} {mode:?}");
        }
    }
}
