//! Lints every hand-written baseline kernel: a regression here means either
//! a reference program rotted or the analyzer started flagging correct code.

use sortsynth_isa::IsaMode;
use sortsynth_kernels::{network_kernel, reference};
use sortsynth_verify::{verify, Verdict};

#[test]
fn reference_kernels_are_lint_clean() {
    for (name, machine, prog) in [
        ("paper_synth_cmov3", reference::paper_synth_cmov3()),
        ("paper_synth_minmax3", reference::paper_synth_minmax3()),
        ("alphadev_cmov3", reference::alphadev_cmov3()),
        ("enum_worst_cmov3", reference::enum_worst_cmov3()),
        ("enum_minmax3", reference::enum_minmax3()),
        ("enum_cmov5", reference::enum_cmov5()),
        ("enum_minmax4", reference::enum_minmax4()),
        ("enum_minmax5", reference::enum_minmax5()),
        ("enum_minmax6", reference::enum_minmax6()),
    ]
    .map(|(name, (machine, prog))| (name, machine, prog))
    {
        let report = verify(&machine, &prog);
        assert!(
            !report.has_errors(),
            "{name}: error-severity lint on a baseline kernel:\n{:#?}",
            report.diagnostics
        );
        assert!(
            !report.verdict.refuted(),
            "{name}: baseline kernel refuted: {:?}",
            report.verdict
        );
    }
}

#[test]
fn minmax_references_are_certified() {
    // Min/max programs are determined by their 0-1 behaviour, so a correct
    // min/max reference must earn a certificate, not just "passed".
    for (name, (machine, prog)) in [
        ("paper_synth_minmax3", reference::paper_synth_minmax3()),
        ("enum_minmax3", reference::enum_minmax3()),
        ("enum_minmax4", reference::enum_minmax4()),
        ("enum_minmax5", reference::enum_minmax5()),
        ("enum_minmax6", reference::enum_minmax6()),
    ] {
        let report = verify(&machine, &prog);
        assert!(
            report.verdict.certified(),
            "{name}: expected a certificate, got {:?}",
            report.verdict
        );
    }
}

#[test]
fn alphadev_sort3_is_perm_certified_without_the_oracle() {
    // AlphaDev's sort3 sorts every permutation but mis-sorts the tied input
    // [1, 1, 0] — the tie-unsafe class the 0-1 pipeline cannot decide. The
    // symbolic value-flow certificate proves it perm-correct with zero
    // exhaustive-oracle invocations, and the gate admits it on the symbolic
    // path while the lint report still records the tied failure.
    let (machine, prog) = reference::alphadev_cmov3();
    assert!(machine.is_correct(&prog));
    let report = verify(&machine, &prog);
    assert!(
        matches!(
            report.verdict,
            Verdict::CertifiedPermutations { classes: 6 }
        ),
        "{:?}",
        report.verdict
    );
    assert!(report.verdict.perm_certified());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.kind == sortsynth_verify::LintKind::TieUnsafe));

    // No other test in this binary calls the gate, so the global counters
    // are a faithful per-call delta here.
    let registry = sortsynth_obs::registry();
    let oracle_before = registry.counter_value(sortsynth_obs::names::VERIFY_ORACLE_TOTAL);
    let symbolic_before =
        registry.counter_value(sortsynth_obs::names::VERIFY_SYMBOLIC_CERTIFIED_TOTAL);
    let (result, path) = sortsynth_verify::gate_detail(&machine, &prog);
    assert_eq!(result, Ok(()));
    assert_eq!(path, sortsynth_verify::GatePath::Symbolic);
    assert_eq!(
        registry.counter_value(sortsynth_obs::names::VERIFY_ORACLE_TOTAL),
        oracle_before,
        "the permutation oracle must not run"
    );
    assert_eq!(
        registry.counter_value(sortsynth_obs::names::VERIFY_SYMBOLIC_CERTIFIED_TOTAL),
        symbolic_before + 1
    );
}

#[test]
fn cmov3_reference_set_survives_analysis() {
    for (name, machine, prog) in reference::cmov3_references() {
        let report = verify(&machine, &prog);
        assert!(!report.has_errors(), "{name}: {:#?}", report.diagnostics);
        assert!(!report.verdict.refuted(), "{name}: {:?}", report.verdict);
    }
}

#[test]
fn generated_networks_earn_the_network_certificate() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=8u8 {
            let (machine, prog) = network_kernel(n, mode);
            let report = verify(&machine, &prog);
            assert_eq!(
                report.verdict,
                Verdict::CertifiedNetwork,
                "n={n} {mode:?}: {:#?}",
                report.diagnostics
            );
            assert!(
                !report.has_errors(),
                "n={n} {mode:?}: {:#?}",
                report.diagnostics
            );
            // A generated network has no removable instruction.
            assert_eq!(report.dce_len, report.len, "n={n} {mode:?}");
        }
    }
}
