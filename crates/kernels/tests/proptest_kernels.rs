//! Property-based tests for kernels: networks sort everything, the JIT and
//! the interpreter agree, and the embeddings sort arbitrary vectors.

use proptest::prelude::*;
use sortsynth_isa::IsaMode;
use sortsynth_jit::JitKernel;
use sortsynth_kernels::{
    interpret, mergesort_with, network_kernel, quicksort_with, reference, Kernel,
};

proptest! {
    /// Network kernels sort arbitrary i32 arrays (any n in 2..=6, both
    /// ISAs), including duplicates and extreme values.
    #[test]
    fn network_kernels_sort_arbitrary_values(
        n in 2u8..=6,
        minmax in any::<bool>(),
        values in prop::collection::vec(any::<i32>(), 6),
    ) {
        let mode = if minmax { IsaMode::MinMax } else { IsaMode::Cmov };
        let (machine, prog) = network_kernel(n, mode);
        let mut data = values[..n as usize].to_vec();
        let mut expected = data.clone();
        expected.sort_unstable();
        interpret(&machine, &prog, &mut data);
        prop_assert_eq!(data, expected);
    }

    /// The JIT and the interpreter are observationally equivalent on the
    /// reference kernels for arbitrary inputs.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn jit_matches_interpreter_on_reference_kernels(
        values in prop::collection::vec(any::<i32>(), 3),
        which in 0usize..4,
    ) {
        let (machine, prog) = match which {
            0 => reference::paper_synth_cmov3(),
            1 => reference::alphadev_cmov3(),
            2 => reference::enum_worst_cmov3(),
            _ => reference::paper_synth_minmax3(),
        };
        let jit = JitKernel::compile(&machine, &prog).expect("x86-64 host");
        let mut a = values.clone();
        let mut b = values.clone();
        jit.run(&mut a);
        interpret(&machine, &prog, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Reference kernels actually sort arbitrary data.
    #[test]
    fn reference_kernels_sort_arbitrary_values(
        values in prop::collection::vec(-10_000i32..=10_000, 5),
        which in 0usize..6,
    ) {
        let (machine, prog) = match which {
            0 => reference::paper_synth_cmov3(),
            1 => reference::alphadev_cmov3(),
            2 => reference::enum_worst_cmov3(),
            3 => reference::enum_minmax3(),
            4 => reference::enum_cmov5(),
            _ => reference::enum_minmax5(),
        };
        let n = machine.n() as usize;
        let mut data = values[..n].to_vec();
        let mut expected = data.clone();
        expected.sort_unstable();
        interpret(&machine, &prog, &mut data);
        prop_assert_eq!(data, expected);
    }

    /// Quicksort/mergesort embeddings sort arbitrary vectors.
    #[test]
    fn embeddings_sort_arbitrary_vectors(data in prop::collection::vec(any::<i32>(), 0..300)) {
        let (machine, prog) = reference::paper_synth_cmov3();
        let kernel = Kernel::from_program("ref3", &machine, prog);
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut q = data.clone();
        quicksort_with(&kernel, &mut q);
        prop_assert_eq!(&q, &expected);
        let mut m = data.clone();
        mergesort_with(&kernel, &mut m);
        prop_assert_eq!(&m, &expected);
    }

    /// Sorting is idempotent through any kernel path.
    #[test]
    fn kernel_sorting_is_idempotent(values in prop::collection::vec(any::<i32>(), 3)) {
        let (machine, prog) = reference::paper_synth_cmov3();
        let mut once = values.clone();
        interpret(&machine, &prog, &mut once);
        let mut twice = once.clone();
        interpret(&machine, &prog, &mut twice);
        prop_assert_eq!(once, twice);
    }

    /// Differential fuzzing of the JIT: for *arbitrary* (not necessarily
    /// correct) programs over arbitrary machines, the generated machine code
    /// and the interpreter must compute identical results on arbitrary
    /// data. This is the deepest check that the instruction encoder is
    /// faithful to the semantics.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn jit_matches_interpreter_on_random_programs(
        n in 2u8..=5,
        minmax in any::<bool>(),
        ops in prop::collection::vec((0usize..256, 0usize..256), 0..24),
        values in prop::collection::vec(any::<i32>(), 5),
    ) {
        use sortsynth_isa::{Instr, IsaMode, Machine};
        let mode = if minmax { IsaMode::MinMax } else { IsaMode::Cmov };
        let machine = Machine::new(n, 1, mode);
        let all = machine.all_instrs();
        let prog: Vec<Instr> = ops
            .iter()
            .map(|&(op_idx, _)| all[op_idx % all.len()])
            .collect();
        let jit = JitKernel::compile(&machine, &prog).expect("x86-64 host");
        let mut native = values[..n as usize].to_vec();
        let mut interp = native.clone();
        jit.run(&mut native);
        interpret(&machine, &prog, &mut interp);
        prop_assert_eq!(native, interp);
    }
}
