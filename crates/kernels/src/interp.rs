//! A portable interpreter for kernel programs over arbitrary `i32` data.
//!
//! [`MachineState`](sortsynth_isa::MachineState) packs register values into
//! nibbles, which is perfect for search but cannot represent benchmark data
//! (random values in ±10000, §5.3). This interpreter executes the same
//! programs over full-width `i32` registers; it is the portable fallback
//! when the JIT is unavailable and the differential-testing oracle when it
//! is.

use sortsynth_isa::{Instr, Machine, Op};

/// Interpreter register file: `n + m` `i32` registers plus the two flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntRegs {
    regs: Vec<i32>,
    lt: bool,
    gt: bool,
}

impl IntRegs {
    /// Builds the entry state for `data[0..n]` (scratch registers zero,
    /// flags unset), mirroring [`Machine::initial_state`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < machine.n()`.
    pub fn enter(machine: &Machine, data: &[i32]) -> Self {
        let n = machine.n() as usize;
        assert!(data.len() >= n, "kernel sorts {n} values");
        let mut regs = vec![0i32; machine.num_regs() as usize];
        regs[..n].copy_from_slice(&data[..n]);
        IntRegs {
            regs,
            lt: false,
            gt: false,
        }
    }

    /// Register values.
    pub fn regs(&self) -> &[i32] {
        &self.regs
    }

    /// Executes one instruction.
    pub fn exec(&mut self, instr: Instr) {
        let d = instr.dst.index() as usize;
        let s = instr.src.index() as usize;
        match instr.op {
            Op::Mov => self.regs[d] = self.regs[s],
            Op::Cmp => {
                self.lt = self.regs[d] < self.regs[s];
                self.gt = self.regs[d] > self.regs[s];
            }
            Op::Cmovl => {
                if self.lt {
                    self.regs[d] = self.regs[s];
                }
            }
            Op::Cmovg => {
                if self.gt {
                    self.regs[d] = self.regs[s];
                }
            }
            Op::Min => self.regs[d] = self.regs[d].min(self.regs[s]),
            Op::Max => self.regs[d] = self.regs[d].max(self.regs[s]),
        }
    }
}

/// Runs `prog` over `data[0..n]` in place, like a compiled kernel would.
///
/// # Panics
///
/// Panics if `data.len() < machine.n()`.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_kernels::interpret;
///
/// let machine = Machine::new(2, 1, IsaMode::Cmov);
/// let prog = machine.parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")?;
/// let mut data = [4, -4];
/// interpret(&machine, &prog, &mut data);
/// assert_eq!(data, [-4, 4]);
/// # Ok::<(), sortsynth_isa::ParseProgramError>(())
/// ```
pub fn interpret(machine: &Machine, prog: &[Instr], data: &mut [i32]) {
    let mut st = IntRegs::enter(machine, data);
    for &instr in prog {
        st.exec(instr);
    }
    let n = machine.n() as usize;
    data[..n].copy_from_slice(&st.regs()[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{permutations, IsaMode, MachineState};

    #[test]
    fn interpreter_matches_packed_semantics_on_permutations() {
        // Differential test against the search-time oracle: both semantics
        // must agree on every permutation for a known-correct kernel.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let prog = m
            .parse_program(
                "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                 mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                 cmp r1 r2; cmovg r2 r1; cmovg r1 s1",
            )
            .unwrap();
        for perm in permutations(3) {
            let mut packed: MachineState = m.initial_state(&perm);
            packed = m.run(&prog, packed);
            let mut wide: Vec<i32> = perm.iter().map(|&v| v as i32).collect();
            interpret(&m, &prog, &mut wide);
            let packed_vals: Vec<i32> = packed.values(3).into_iter().map(|v| v as i32).collect();
            assert_eq!(wide, packed_vals, "perm {perm:?}");
        }
    }

    #[test]
    fn handles_negative_and_duplicate_values() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        for (a, b) in [(-5, -5), (i32::MIN, i32::MAX), (0, -1)] {
            let mut data = [a, b];
            interpret(&m, &prog, &mut data);
            assert_eq!(data, [a.min(b), a.max(b)]);
        }
    }

    #[test]
    fn minmax_ops() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let prog = m.parse_program("mov s1 r1; min r1 r2; max r2 s1").unwrap();
        let mut data = [7, -2];
        interpret(&m, &prog, &mut data);
        assert_eq!(data, [-2, 7]);
    }

    #[test]
    #[should_panic(expected = "kernel sorts 3 values")]
    fn short_buffer_panics() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        interpret(&m, &[], &mut [1, 2]);
    }
}
