//! Embedding kernels into divide-and-conquer sorts (§5.3: the `Q` and `M`
//! benchmark columns).
//!
//! The paper evaluates each kernel as the base case of quicksort and
//! mergesort: the input is recursively partitioned/split until exactly `n`
//! elements remain, which the kernel sorts.

use crate::runner::Kernel;

/// Quicksort with `kernel` as the base case for slices of length `n`
/// (shorter residues fall back to insertion sort).
pub fn quicksort_with(kernel: &Kernel, data: &mut [i32]) {
    let n = kernel.n();
    quicksort_rec(kernel, n, data);
}

fn quicksort_rec(kernel: &Kernel, n: usize, data: &mut [i32]) {
    if data.len() <= n {
        base_case(kernel, n, data);
        return;
    }
    let pivot_idx = partition(data);
    let (lo, hi) = data.split_at_mut(pivot_idx);
    quicksort_rec(kernel, n, lo);
    quicksort_rec(kernel, n, &mut hi[1..]);
}

/// Hoare-style median-of-three partition; returns the final pivot index.
fn partition(data: &mut [i32]) -> usize {
    let len = data.len();
    let mid = len / 2;
    // Median-of-three pivot selection avoids quadratic behaviour on sorted
    // inputs without changing the kernel-centric measurement.
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[0] > data[len - 1] {
        data.swap(0, len - 1);
    }
    if data[mid] > data[len - 1] {
        data.swap(mid, len - 1);
    }
    data.swap(mid, len - 2);
    let pivot = data[len - 2];
    let mut store = 1;
    for i in 1..len - 2 {
        if data[i] < pivot {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, len - 2);
    store
}

/// Mergesort with `kernel` as the base case for slices of length `n`.
pub fn mergesort_with(kernel: &Kernel, data: &mut [i32]) {
    let n = kernel.n();
    let mut scratch = vec![0i32; data.len()];
    mergesort_rec(kernel, n, data, &mut scratch);
}

fn mergesort_rec(kernel: &Kernel, n: usize, data: &mut [i32], scratch: &mut [i32]) {
    if data.len() <= n {
        base_case(kernel, n, data);
        return;
    }
    let mid = data.len() / 2;
    {
        let (lo, hi) = data.split_at_mut(mid);
        let (slo, shi) = scratch.split_at_mut(mid);
        mergesort_rec(kernel, n, lo, slo);
        mergesort_rec(kernel, n, hi, shi);
    }
    merge(data, mid, scratch);
}

fn merge(data: &mut [i32], mid: usize, scratch: &mut [i32]) {
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < data.len() {
        if data[i] <= data[j] {
            scratch[k] = data[i];
            i += 1;
        } else {
            scratch[k] = data[j];
            j += 1;
        }
        k += 1;
    }
    scratch[k..k + mid - i].copy_from_slice(&data[i..mid]);
    let copied = k + mid - i;
    data.copy_within(j.., copied);
    data[..copied].copy_from_slice(&scratch[..copied]);
}

fn base_case(kernel: &Kernel, n: usize, data: &mut [i32]) {
    if data.len() == n {
        kernel.sort(data);
    } else {
        insertion_sort(data);
    }
}

fn insertion_sort(data: &mut [i32]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::paper_synth_cmov3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kernel3() -> Kernel {
        let (machine, prog) = paper_synth_cmov3();
        Kernel::from_program("paper_synth", &machine, prog)
    }

    #[test]
    fn quicksort_sorts_random_arrays() {
        let kernel = kernel3();
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 2, 3, 4, 10, 127, 1000] {
            let mut data: Vec<i32> = (0..len).map(|_| rng.gen_range(-10_000..10_000)).collect();
            let mut expected = data.clone();
            expected.sort_unstable();
            quicksort_with(&kernel, &mut data);
            assert_eq!(data, expected, "len {len}");
        }
    }

    #[test]
    fn mergesort_sorts_random_arrays() {
        let kernel = kernel3();
        let mut rng = StdRng::seed_from_u64(8);
        for len in [0usize, 1, 2, 3, 5, 33, 256, 999] {
            let mut data: Vec<i32> = (0..len).map(|_| rng.gen_range(-10_000..10_000)).collect();
            let mut expected = data.clone();
            expected.sort_unstable();
            mergesort_with(&kernel, &mut data);
            assert_eq!(data, expected, "len {len}");
        }
    }

    #[test]
    fn handles_adversarial_patterns() {
        let kernel = kernel3();
        for pattern in [
            vec![5i32; 100],                        // all equal
            (0..100).collect::<Vec<i32>>(),         // sorted
            (0..100).rev().collect::<Vec<i32>>(),   // reversed
            (0..50).chain((0..50).rev()).collect(), // organ pipe
        ] {
            let mut expected = pattern.clone();
            expected.sort_unstable();
            let mut q = pattern.clone();
            quicksort_with(&kernel, &mut q);
            assert_eq!(q, expected);
            let mut m = pattern.clone();
            mergesort_with(&kernel, &mut m);
            assert_eq!(m, expected);
        }
    }
}
