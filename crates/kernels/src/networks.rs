//! Sorting networks and their kernel implementations.
//!
//! The paper's baseline for kernel construction (§2.1): instantiate a
//! compare-and-swap code pattern for every comparator of a size-optimal
//! sorting network — 4 instructions per comparator in the cmov ISA, 3 in
//! the min/max ISA. Synthesized kernels beat these by fusing the final
//! comparators.

use sortsynth_isa::{Instr, IsaMode, Machine, Op, Program, Reg};

/// A comparator `(i, j)` with `i < j`: orders positions `i` and `j`
/// ascending.
pub type Comparator = (u8, u8);

/// A size-optimal sorting network for `n` inputs (comparator counts
/// 1/3/5/9/12/16/19 for n = 2..=8, the known optima).
///
/// # Panics
///
/// Panics for `n < 2` or `n > 8`.
pub fn optimal_network(n: u8) -> Vec<Comparator> {
    match n {
        2 => vec![(0, 1)],
        3 => vec![(0, 1), (1, 2), (0, 1)],
        4 => vec![(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)],
        5 => vec![
            (0, 1),
            (3, 4),
            (2, 4),
            (2, 3),
            (1, 4),
            (0, 3),
            (0, 2),
            (1, 3),
            (1, 2),
        ],
        6 => vec![
            (1, 2),
            (4, 5),
            (0, 2),
            (3, 5),
            (0, 1),
            (3, 4),
            (2, 5),
            (0, 3),
            (1, 4),
            (2, 4),
            (1, 3),
            (2, 3),
        ],
        7 => vec![
            (1, 2),
            (3, 4),
            (5, 6),
            (0, 2),
            (3, 5),
            (4, 6),
            (0, 1),
            (4, 5),
            (2, 6),
            (0, 4),
            (1, 5),
            (0, 3),
            (2, 5),
            (1, 3),
            (2, 4),
            (2, 3),
        ],
        8 => vec![
            (0, 1),
            (2, 3),
            (4, 5),
            (6, 7),
            (0, 2),
            (1, 3),
            (4, 6),
            (5, 7),
            (1, 2),
            (5, 6),
            (0, 4),
            (3, 7),
            (1, 5),
            (2, 6),
            (1, 4),
            (3, 6),
            (2, 4),
            (3, 5),
            (3, 4),
        ],
        _ => panic!("optimal networks are tabulated for 2 <= n <= 8, got {n}"),
    }
}

/// Instantiates the §2.1 compare-and-swap snippet for every comparator:
///
/// ```text
/// mov  s1, r_i      ; save r_i
/// cmp  r_i, r_j
/// cmovg r_i, r_j    ; r_i = min
/// cmovg r_j, s1     ; r_j = max
/// ```
///
/// The resulting kernel has `4 · |network|` instructions (12/20/36 for
/// n = 3/4/5).
///
/// # Panics
///
/// Panics if `machine` is not a cmov machine with at least one scratch
/// register, or a comparator is out of range.
pub fn network_to_cmov(machine: &Machine, network: &[Comparator]) -> Program {
    assert_eq!(
        machine.mode(),
        IsaMode::Cmov,
        "cmov pattern needs the cmov ISA"
    );
    assert!(
        machine.scratch() >= 1,
        "compare-and-swap needs a scratch register"
    );
    let scratch = Reg::new(machine.n());
    let mut prog = Program::new();
    for &(i, j) in network {
        assert!(
            i < j && j < machine.n(),
            "comparator ({i}, {j}) out of range"
        );
        let (lo, hi) = (Reg::new(i), Reg::new(j));
        prog.push(Instr::new(Op::Mov, scratch, lo));
        prog.push(Instr::new(Op::Cmp, lo, hi));
        prog.push(Instr::new(Op::Cmovg, lo, hi));
        prog.push(Instr::new(Op::Cmovg, hi, scratch));
    }
    prog
}

/// Instantiates the 3-instruction min/max compare-and-swap (§5.4):
///
/// ```text
/// movdqa s1, r_i
/// pminsd r_i, r_j
/// pmaxsd r_j, s1
/// ```
///
/// The resulting kernel has `3 · |network|` instructions (9/15/27 for
/// n = 3/4/5).
///
/// # Panics
///
/// Panics if `machine` is not a min/max machine with at least one scratch
/// register, or a comparator is out of range.
pub fn network_to_minmax(machine: &Machine, network: &[Comparator]) -> Program {
    assert_eq!(
        machine.mode(),
        IsaMode::MinMax,
        "min/max pattern needs the min/max ISA"
    );
    assert!(
        machine.scratch() >= 1,
        "compare-and-swap needs a scratch register"
    );
    let scratch = Reg::new(machine.n());
    let mut prog = Program::new();
    for &(i, j) in network {
        assert!(
            i < j && j < machine.n(),
            "comparator ({i}, {j}) out of range"
        );
        let (lo, hi) = (Reg::new(i), Reg::new(j));
        prog.push(Instr::new(Op::Mov, scratch, lo));
        prog.push(Instr::new(Op::Min, lo, hi));
        prog.push(Instr::new(Op::Max, hi, scratch));
    }
    prog
}

/// Convenience: the size-optimal network kernel for `n` in the given ISA
/// (with one scratch register).
pub fn network_kernel(n: u8, mode: IsaMode) -> (Machine, Program) {
    let machine = Machine::new(n, 1, mode);
    let network = optimal_network(n);
    let prog = match mode {
        IsaMode::Cmov => network_to_cmov(&machine, &network),
        IsaMode::MinMax => network_to_minmax(&machine, &network),
    };
    (machine, prog)
}

/// One block of a stitched kernel: the instruction span `start..end` fully
/// sorts the listed value registers (ascending in list order) and touches
/// nothing else but scratch it initialises itself.
pub type StitchedBlock = (usize, usize, Vec<Reg>);

/// A sorting kernel for `n` values assembled from sliding 3-register
/// window-sorting blocks (ROADMAP item 5's stitched construction): windows
/// `(i, i+1, i+2)` for `i = 0..top-2`, with `top` shrinking from `n` to 3 —
/// a bubble pass per carry. Each window is a full n=3 sorter (the optimal
/// 3-network instantiated on the window's registers), so every block meets
/// the composition contract of `sortsynth_verify::verify_stitched`.
///
/// Returns the machine, the kernel, and the block tiling.
///
/// # Panics
///
/// Panics for `n < 3` or `n > 14`.
pub fn stitched_window3_kernel(n: u8, mode: IsaMode) -> (Machine, Program, Vec<StitchedBlock>) {
    assert!(n >= 3, "window-3 stitching needs at least three values");
    let machine = Machine::new(n, 1, mode);
    let net3 = optimal_network(3);
    let per_cas = match mode {
        IsaMode::Cmov => 4,
        IsaMode::MinMax => 3,
    };
    let block_len = per_cas * net3.len();
    let mut prog = Program::new();
    let mut blocks = Vec::new();
    let scratch = Reg::new(n);
    for top in (3..=n).rev() {
        for i in 0..=top - 3 {
            let window: Vec<Reg> = (i..i + 3).map(Reg::new).collect();
            let start = prog.len();
            for &(a, b) in &net3 {
                let (lo, hi) = (window[a as usize], window[b as usize]);
                prog.push(Instr::new(Op::Mov, scratch, lo));
                match mode {
                    IsaMode::Cmov => {
                        prog.push(Instr::new(Op::Cmp, lo, hi));
                        prog.push(Instr::new(Op::Cmovg, lo, hi));
                        prog.push(Instr::new(Op::Cmovg, hi, scratch));
                    }
                    IsaMode::MinMax => {
                        prog.push(Instr::new(Op::Min, lo, hi));
                        prog.push(Instr::new(Op::Max, hi, scratch));
                    }
                }
            }
            debug_assert_eq!(prog.len(), start + block_len);
            blocks.push((start, prog.len(), window));
        }
    }
    (machine, prog, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_counts_are_optimal() {
        let expected = [(2, 1), (3, 3), (4, 5), (5, 9), (6, 12), (7, 16), (8, 19)];
        for (n, count) in expected {
            assert_eq!(optimal_network(n).len(), count, "n = {n}");
        }
    }

    #[test]
    fn network_kernels_sort_all_permutations_cmov() {
        for n in 2..=6u8 {
            let (machine, prog) = network_kernel(n, IsaMode::Cmov);
            assert_eq!(prog.len(), 4 * optimal_network(n).len());
            assert!(machine.is_correct(&prog), "n = {n}");
        }
    }

    #[test]
    fn network_kernels_sort_all_permutations_minmax() {
        for n in 2..=6u8 {
            let (machine, prog) = network_kernel(n, IsaMode::MinMax);
            assert_eq!(prog.len(), 3 * optimal_network(n).len());
            assert!(machine.is_correct(&prog), "n = {n}");
        }
    }

    #[test]
    fn networks_satisfy_the_zero_one_principle() {
        // Sorting networks (unlike our searched kernels) obey the 0-1 lemma:
        // check all bit vectors through direct comparator simulation.
        for n in 2..=8u8 {
            let network = optimal_network(n);
            for bits in 0u32..(1 << n) {
                let mut v: Vec<u8> = (0..n).map(|i| ((bits >> i) & 1) as u8).collect();
                for &(i, j) in &network {
                    if v[i as usize] > v[j as usize] {
                        v.swap(i as usize, j as usize);
                    }
                }
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "n = {n}, bits {bits:b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tabulated")]
    fn out_of_range_network_panics() {
        optimal_network(9);
    }
}
