//! Hand-written native baseline sorters (the paper's §5.3 C++/Rust rows).
//!
//! These mirror the paper's hand-written contestants: `default` (branchy
//! if/swap), `branchless` (rank arithmetic), `swap` (local-variable
//! `std::swap` style), `std` (the standard library sort), plus a scalar
//! re-creation of the Mimicry shuffle-based approach and Neri's
//! "cassioneri" kernel.

/// A named native sorting routine for fixed-length prefixes.
#[derive(Clone, Copy)]
pub struct NativeSorter {
    /// Display name used in the benchmark tables.
    pub name: &'static str,
    /// Number of values sorted (`data[0..n]`).
    pub n: usize,
    /// The routine; sorts `data[0..n]` in place.
    pub sort: fn(&mut [i32]),
}

impl std::fmt::Debug for NativeSorter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeSorter")
            .field("name", &self.name)
            .field("n", &self.n)
            .finish()
    }
}

// --- n = 3 -------------------------------------------------------------

/// `default`: three compare-and-swaps with a temporary, written the naive
/// branchy way.
pub fn default3(d: &mut [i32]) {
    if d[0] > d[1] {
        d.swap(0, 1);
    }
    if d[1] > d[2] {
        d.swap(1, 2);
    }
    if d[0] > d[1] {
        d.swap(0, 1);
    }
}

/// `branchless`: computes each element's rank with comparisons and writes
/// values to their final index (the paper's index-arithmetic variant).
pub fn branchless3(d: &mut [i32]) {
    let (a, b, c) = (d[0], d[1], d[2]);
    // Rank = number of strictly smaller elements, with index tie-breaks for
    // duplicates (an earlier equal element counts as smaller).
    let ra = (a > b) as usize + (a > c) as usize;
    let rb = (b >= a) as usize + (b > c) as usize;
    let rc = (c >= a) as usize + (c >= b) as usize;
    d[ra] = a;
    d[rb] = b;
    d[rc] = c;
}

/// `swap`: loads into locals, conditional swaps on the locals, stores back —
/// the compiler turns the local swaps into cmov pairs.
pub fn swap3(d: &mut [i32]) {
    let (mut a, mut b, mut c) = (d[0], d[1], d[2]);
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    if b > c {
        std::mem::swap(&mut b, &mut c);
    }
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    d[0] = a;
    d[1] = b;
    d[2] = c;
}

/// `std`: the standard library's unstable sort.
pub fn std_sort3(d: &mut [i32]) {
    d[..3].sort_unstable();
}

/// `cassioneri`: a scalar re-creation of Neri's sort3 (arXiv 2307.14503) —
/// min/max expression form that compilers lower to straight-line cmov code.
pub fn cassioneri3(d: &mut [i32]) {
    let (a, b, c) = (d[0], d[1], d[2]);
    let t = b.min(c);
    let hi_bc = b.max(c);
    d[0] = a.min(t);
    d[2] = a.max(hi_bc);
    // The middle element is whichever of {a, t, hi_bc} is neither min nor
    // max: clamp a into [t, hi_bc].
    d[1] = a.clamp(t, hi_bc);
}

/// `mimicry`: a scalar stand-in for the Mimicry shuffle-vector kernel —
/// rank computation driving a permutation write, mirroring how the SIMD
/// version builds a shuffle mask from comparison results.
pub fn mimicry3(d: &mut [i32]) {
    let (a, b, c) = (d[0], d[1], d[2]);
    let ab = (a > b) as u8;
    let ac = (a > c) as u8;
    let bc = (b > c) as u8;
    let ra = (ab + ac) as usize;
    let rb = (1 - ab + bc) as usize;
    let rc = (2 - ac - bc) as usize;
    d[ra] = a;
    d[rb] = b;
    d[rc] = c;
}

// --- n = 4 -------------------------------------------------------------

/// `default`, n = 4: insertion-style branchy sort.
pub fn default4(d: &mut [i32]) {
    for i in 1..4 {
        let mut j = i;
        while j > 0 && d[j - 1] > d[j] {
            d.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// `branchless`, n = 4: rank arithmetic.
pub fn branchless4(d: &mut [i32]) {
    let v = [d[0], d[1], d[2], d[3]];
    for (i, &x) in v.iter().enumerate() {
        let mut rank = 0usize;
        for (j, &y) in v.iter().enumerate() {
            rank += ((y < x) || (y == x && j < i)) as usize;
        }
        d[rank] = x;
    }
}

/// `swap`, n = 4: the optimal 5-comparator network on locals.
pub fn swap4(d: &mut [i32]) {
    let (mut a, mut b, mut c, mut e) = (d[0], d[1], d[2], d[3]);
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    if c > e {
        std::mem::swap(&mut c, &mut e);
    }
    if a > c {
        std::mem::swap(&mut a, &mut c);
    }
    if b > e {
        std::mem::swap(&mut b, &mut e);
    }
    if b > c {
        std::mem::swap(&mut b, &mut c);
    }
    d[0] = a;
    d[1] = b;
    d[2] = c;
    d[3] = e;
}

/// `std`, n = 4.
pub fn std_sort4(d: &mut [i32]) {
    d[..4].sort_unstable();
}

/// `mimicry`, n = 4: rank-based permutation write.
pub fn mimicry4(d: &mut [i32]) {
    branchless4(d);
}

// --- n = 5 -------------------------------------------------------------

/// `swap`, n = 5: the optimal 9-comparator network on locals.
pub fn swap5(d: &mut [i32]) {
    let mut v = [d[0], d[1], d[2], d[3], d[4]];
    for (i, j) in [
        (0, 1),
        (3, 4),
        (2, 4),
        (2, 3),
        (1, 4),
        (0, 3),
        (0, 2),
        (1, 3),
        (1, 2),
    ] {
        if v[i] > v[j] {
            v.swap(i, j);
        }
    }
    d[..5].copy_from_slice(&v);
}

/// `std`, n = 5.
pub fn std_sort5(d: &mut [i32]) {
    d[..5].sort_unstable();
}

/// The §5.3 n = 3 contestant list.
pub fn native3() -> Vec<NativeSorter> {
    vec![
        NativeSorter {
            name: "cassioneri",
            n: 3,
            sort: cassioneri3,
        },
        NativeSorter {
            name: "mimicry",
            n: 3,
            sort: mimicry3,
        },
        NativeSorter {
            name: "branchless",
            n: 3,
            sort: branchless3,
        },
        NativeSorter {
            name: "default",
            n: 3,
            sort: default3,
        },
        NativeSorter {
            name: "swap",
            n: 3,
            sort: swap3,
        },
        NativeSorter {
            name: "std",
            n: 3,
            sort: std_sort3,
        },
    ]
}

/// The §5.3 n = 4 contestant list (Neri provides no n = 4 kernel, matching
/// the paper's footnote).
pub fn native4() -> Vec<NativeSorter> {
    vec![
        NativeSorter {
            name: "mimicry",
            n: 4,
            sort: mimicry4,
        },
        NativeSorter {
            name: "branchless",
            n: 4,
            sort: branchless4,
        },
        NativeSorter {
            name: "default",
            n: 4,
            sort: default4,
        },
        NativeSorter {
            name: "swap",
            n: 4,
            sort: swap4,
        },
        NativeSorter {
            name: "std",
            n: 4,
            sort: std_sort4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::permutations;

    fn check(n: u8, sort: fn(&mut [i32])) {
        // All permutations of distinct values…
        for perm in permutations(n) {
            let mut data: Vec<i32> = perm.iter().map(|&v| v as i32 * 7 - 9).collect();
            let mut expected = data.clone();
            sort(&mut data);
            expected.sort_unstable();
            assert_eq!(data, expected, "perm {perm:?}");
        }
        // …and duplicate-heavy inputs.
        let mut vals = vec![0i32; n as usize];
        for pattern in 0..(1u32 << n) {
            for (i, v) in vals.iter_mut().enumerate() {
                *v = ((pattern >> i) & 1) as i32;
            }
            let mut expected = vals.clone();
            expected.sort_unstable();
            let mut data = vals.clone();
            sort(&mut data);
            assert_eq!(data, expected, "pattern {pattern:b}");
        }
    }

    #[test]
    fn all_n3_baselines_sort() {
        for s in native3() {
            check(3, s.sort);
        }
    }

    #[test]
    fn all_n4_baselines_sort() {
        for s in native4() {
            check(4, s.sort);
        }
    }

    #[test]
    fn n5_baselines_sort() {
        check(5, swap5);
        check(5, std_sort5);
    }
}
