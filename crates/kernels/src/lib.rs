//! Reference sorting kernels, baselines, and benchmark harness machinery.
//!
//! This crate supplies everything the paper's §5.3 kernel-runtime
//! evaluation needs around the synthesizer:
//!
//! * [`interpret`] — a portable `i32` interpreter for kernel programs (the
//!   differential-testing oracle for the JIT and the fallback off x86-64);
//! * [`networks`] — size-optimal sorting networks and the §2.1
//!   compare-and-swap instantiation patterns (4 instructions per comparator
//!   with cmov, 3 with min/max);
//! * [`mod@reference`] — the paper's transcribed example kernels and
//!   reconstructions of the AlphaDev / `enum_worst` contestants;
//! * [`baselines`] — the hand-written native rows (`default`, `branchless`,
//!   `swap`, `std`, `cassioneri`, `mimicry`);
//! * [`Kernel`] — one handle over JIT-compiled, interpreted, and native
//!   sorters;
//! * [`quicksort_with`] / [`mergesort_with`] — the embedded (`Q`/`M`)
//!   benchmark harnesses;
//! * [`testdata`] — §5.3's random workloads.

pub mod baselines;
pub mod embed;
pub mod interp;
pub mod networks;
pub mod reference;
pub mod runner;
pub mod testdata;

pub use baselines::NativeSorter;
pub use embed::{mergesort_with, quicksort_with};
pub use interp::{interpret, IntRegs};
pub use networks::{
    network_kernel, network_to_cmov, network_to_minmax, optimal_network, stitched_window3_kernel,
    StitchedBlock,
};
pub use runner::Kernel;
pub use testdata::{embedded_inputs, standalone_inputs};
