//! Benchmark test-data generation matching §5.3's workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's standalone workload: `count` arrays of length `n` with
/// values uniform in `[-10000, 10000]`.
pub fn standalone_inputs(n: usize, count: usize, seed: u64) -> Vec<Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen_range(-10_000..=10_000)).collect())
        .collect()
}

/// The paper's embedded workload: arrays of random length up to `max_len`
/// (20000 in §5.3) with values uniform in `[-10000, 10000]`.
pub fn embedded_inputs(count: usize, max_len: usize, seed: u64) -> Vec<Vec<i32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(-10_000..=10_000)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_shape_and_range() {
        let inputs = standalone_inputs(3, 100, 1);
        assert_eq!(inputs.len(), 100);
        for arr in &inputs {
            assert_eq!(arr.len(), 3);
            assert!(arr.iter().all(|&v| (-10_000..=10_000).contains(&v)));
        }
    }

    #[test]
    fn embedded_lengths_bounded() {
        let inputs = embedded_inputs(50, 2000, 2);
        assert_eq!(inputs.len(), 50);
        assert!(inputs.iter().all(|a| (1..=2000).contains(&a.len())));
        // Lengths actually vary.
        let distinct: std::collections::HashSet<usize> = inputs.iter().map(Vec::len).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn seeding_is_deterministic() {
        assert_eq!(standalone_inputs(4, 10, 42), standalone_inputs(4, 10, 42));
        assert_ne!(standalone_inputs(4, 10, 42), standalone_inputs(4, 10, 43));
    }
}
