//! Hard-coded reference kernels from the paper and the literature.
//!
//! Each function returns `(Machine, Program)` pairs in this workspace's ISA
//! model. Provenance:
//!
//! * [`paper_synth_cmov3`] / [`paper_synth_minmax3`] — verbatim
//!   transcriptions of the §2.2 example columns ("synth cmov" /
//!   "synth min/max"), register-renamed to `r1..r3, s1`.
//! * [`alphadev_cmov3`] — a *reconstruction* of the AlphaDev sort3 kernel:
//!   AlphaDev's exact register allocation is published only as full
//!   load/store assembly, so we use an optimal 11-instruction kernel with
//!   AlphaDev's reported instruction mix (3 `cmp`, 2 register `mov`s,
//!   6 conditional moves — the §5.3 table row) drawn from the enumerated
//!   solution space.
//! * [`enum_worst_cmov3`] — the mov-free, 8-cmov signature the paper's
//!   `enum_worst` row exhibits (3 `cmp`, 8 `cmov`).
//! * [`enum_minmax3`] — an 8-instruction min/max kernel from the enumerated
//!   space (distinct from the paper's example).

use sortsynth_isa::{IsaMode, Machine, Program};

fn parsed(machine: Machine, text: &str) -> (Machine, Program) {
    let prog = machine
        .parse_program(text)
        .expect("reference kernel text is well-formed");
    (machine, prog)
}

/// The paper's §2.2 "synth cmov" kernel for n = 3 (11 instructions).
///
/// Original registers `rax, rbx, rcx, rdi` map to `r1, r2, r3, s1`. The
/// final block is the non-compare-and-swap fusion the paper highlights:
/// `r2 = ite(b > min(a, c), min(b, max(a, c)), min(a, c))`,
/// `r1 = min(b, min(a, c))`.
pub fn paper_synth_cmov3() -> (Machine, Program) {
    parsed(
        Machine::new(3, 1, IsaMode::Cmov),
        "mov s1 r1
         cmp r3 s1
         cmovl s1 r3
         cmovl r3 r1
         cmp r2 r3
         mov r1 r2
         cmovg r2 r3
         cmovg r3 r1
         cmp r1 s1
         cmovl r2 s1
         cmovg r1 s1",
    )
}

/// The paper's §2.2 "synth min/max" kernel for n = 3 (8 instructions).
///
/// Original registers `xmm0, xmm1, xmm2, xmm7` map to `r1, r2, r3, s1`; it
/// is one `movdqa` shorter than the 9-instruction network implementation:
/// `r2 = max(min(max(c, b), a), min(b, c))`, `r1 = min(a, min(b, c))`.
pub fn paper_synth_minmax3() -> (Machine, Program) {
    parsed(
        Machine::new(3, 1, IsaMode::MinMax),
        "mov s1 r2
         min s1 r3
         max r3 r2
         mov r2 r3
         min r2 r1
         max r3 r1
         max r2 s1
         min r1 s1",
    )
}

/// AlphaDev sort3 reconstruction: optimal length (11) with AlphaDev's
/// reported instruction mix (3 `cmp`, 2 `mov`, 6 conditional moves).
pub fn alphadev_cmov3() -> (Machine, Program) {
    parsed(
        Machine::new(3, 1, IsaMode::Cmov),
        "mov s1 r2
         cmp r1 r2
         cmovg s1 r1
         cmovl r2 r1
         mov r1 r2
         cmp r1 r3
         cmovl r2 r3
         cmovg r1 r3
         cmp r2 s1
         cmovl r3 s1
         cmovg r2 s1",
    )
}

/// The `enum_worst` profile for n = 3: an optimal-length kernel with no
/// register `mov`s at all — every data movement is conditional (3 `cmp`,
/// 8 `cmov`), which maximizes the flag-dependence chain and makes it the
/// slowest of the 5602 optimal kernels in the paper's standalone benchmark.
pub fn enum_worst_cmov3() -> (Machine, Program) {
    parsed(
        Machine::new(3, 1, IsaMode::Cmov),
        "cmp r1 r2
         cmovg s1 r1
         cmovg r1 r2
         cmovg r2 s1
         cmp r2 r3
         cmovg s1 r3
         cmovg r3 r2
         cmovg r2 s1
         cmp r1 r2
         cmovg r2 r1
         cmovg r1 s1",
    )
}

/// An 8-instruction min/max kernel for n = 3 from the enumerated solution
/// space (distinct from [`paper_synth_minmax3`]).
pub fn enum_minmax3() -> (Machine, Program) {
    parsed(
        Machine::new(3, 1, IsaMode::MinMax),
        "mov s1 r1
         min r1 r2
         max r2 s1
         mov s1 r1
         min r1 r3
         max s1 r3
         max r3 r2
         min r2 s1",
    )
}

/// A 33-instruction n = 5 cmov kernel synthesized by this workspace's
/// enumerative search (best configuration, 23 min on one core; the paper
/// reports the same optimal-class length ≈33).
pub fn enum_cmov5() -> (Machine, Program) {
    parsed(
        Machine::new(5, 1, IsaMode::Cmov),
        "mov s1 r1
         cmp r1 r2
         cmovl s1 r2
         cmovl r2 r1
         mov r1 r3
         cmp r1 r4
         cmovl r3 r4
         cmovl r4 r1
         mov r1 r2
         cmp r1 r4
         cmovl r2 r4
         cmovg r1 r4
         mov r4 r3
         cmp r3 s1
         cmovl r4 s1
         cmovg r3 s1
         mov s1 r2
         cmp r2 r3
         cmovg r2 r3
         cmovg r3 s1
         mov s1 r5
         cmp r4 r5
         cmovg r5 r4
         cmovg r4 s1
         cmp r3 r4
         cmovg r4 r3
         cmovg r3 s1
         cmp r2 r3
         cmovg r3 r2
         cmovg r2 s1
         cmp r1 r2
         cmovg r2 r1
         cmovg r1 s1",
    )
}

/// The 15-instruction n = 4 min/max kernel synthesized by this workspace
/// (matches the paper's reported size; equals the 5-comparator network
/// bound, which §5.4 also observes).
pub fn enum_minmax4() -> (Machine, Program) {
    parsed(
        Machine::new(4, 1, IsaMode::MinMax),
        "mov s1 r1
         min r1 r2
         max r2 s1
         mov s1 r3
         min r3 r4
         max r4 s1
         mov s1 r1
         min r1 r3
         max r3 s1
         mov s1 r2
         min r2 r4
         max r4 s1
         mov s1 r2
         min r2 r3
         max r3 s1",
    )
}

/// A **23-instruction** n = 5 min/max kernel found by this workspace's
/// search — three instructions shorter than the 26 the paper reports and
/// four below the 27-instruction optimal-network implementation. Verified
/// on all 120 permutations (constant-free kernels are correct on all
/// inputs when correct on the permutation suite, §2.3).
pub fn enum_minmax5() -> (Machine, Program) {
    parsed(
        Machine::new(5, 1, IsaMode::MinMax),
        "mov s1 r1
         min r1 r2
         max r2 s1
         mov s1 r3
         min r3 r5
         max r5 s1
         mov s1 r1
         min r1 r4
         max s1 r4
         max r4 r2
         min r2 s1
         mov s1 r1
         min r1 r3
         max s1 r3
         max r3 r2
         min r2 s1
         min r2 r5
         max s1 r5
         max r5 r4
         min r4 s1
         mov s1 r3
         min r3 r4
         max r4 s1",
    )
}

/// A **34-instruction** n = 6 min/max kernel synthesized by this workspace
/// (108 s, one core) — two instructions below the 36-instruction
/// 12-comparator optimal-network implementation. The paper's evaluation
/// stops at n = 5, so this extends its method one size further. Verified on
/// all 720 permutations.
pub fn enum_minmax6() -> (Machine, Program) {
    parsed(
        Machine::new(6, 1, IsaMode::MinMax),
        "mov s1 r1
         min r1 r2
         max r2 s1
         mov s1 r3
         min r3 r4
         max r4 s1
         mov s1 r5
         min r5 r6
         max r6 s1
         mov s1 r1
         min r1 r5
         max r5 s1
         mov s1 r2
         min r2 r6
         max r6 s1
         mov s1 r2
         min r2 r5
         max r5 s1
         mov s1 r1
         min r1 r3
         max s1 r3
         max r3 r2
         min r2 s1
         min r3 r5
         max r5 s1
         max s1 r4
         min r4 r6
         max r6 s1
         min r2 r4
         max r4 r3
         min r3 s1
         mov s1 r4
         min r4 r5
         max r5 s1",
    )
}

/// A deliberately tie-unsafe n = 5 cmov kernel: AlphaDev's sort3 on
/// `r1..r3` followed by the full optimal 5-network. Perm-correct (the
/// network re-sorts everything), but the AlphaDev prefix mangles the
/// multiset on tied inputs like `[1, 1, 0, …]`, which no suffix can repair
/// — so every 0-1 failure is tied and the 0-1 pipeline cannot decide it.
/// This is the gate's worst case below the stitched sizes: symbolic
/// certificate vs. `5!` oracle (the `verify_cost` E-V3 row).
pub fn tie_unsafe5() -> (Machine, Program) {
    let machine = Machine::new(5, 1, IsaMode::Cmov);
    let (_, prefix) = alphadev_cmov3();
    let mut prog: Program = prefix
        .iter()
        .map(|i| {
            // The 3-machine's scratch s1 is index 3; remap it to the
            // 5-machine's scratch (index 5). Value registers coincide.
            let remap = |r: sortsynth_isa::Reg| {
                if r.index() == 3 {
                    sortsynth_isa::Reg::new(5)
                } else {
                    r
                }
            };
            sortsynth_isa::Instr::new(i.op, remap(i.dst), remap(i.src))
        })
        .collect();
    prog.extend(crate::networks::network_to_cmov(
        &machine,
        &crate::networks::optimal_network(5),
    ));
    (machine, prog)
}

/// Every named cmov reference kernel for n = 3, `(name, machine, program)`.
pub fn cmov3_references() -> Vec<(&'static str, Machine, Program)> {
    let mut out = Vec::new();
    for (name, (machine, prog)) in [
        ("paper_synth", paper_synth_cmov3()),
        ("alphadev", alphadev_cmov3()),
        ("enum_worst", enum_worst_cmov3()),
    ] {
        out.push((name, machine, prog));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::InstrMix;

    #[test]
    fn all_reference_kernels_are_correct() {
        for (name, machine, prog) in [
            ("paper_synth_cmov3", paper_synth_cmov3()),
            ("paper_synth_minmax3", paper_synth_minmax3()),
            ("alphadev_cmov3", alphadev_cmov3()),
            ("enum_worst_cmov3", enum_worst_cmov3()),
            ("enum_minmax3", enum_minmax3()),
            ("enum_cmov5", enum_cmov5()),
            ("enum_minmax4", enum_minmax4()),
            ("enum_minmax5", enum_minmax5()),
            ("enum_minmax6", enum_minmax6()),
            ("tie_unsafe5", tie_unsafe5()),
        ]
        .map(|(n, (m, p))| (n, m, p))
        {
            assert!(
                machine.is_correct(&prog),
                "{name} is incorrect:\n{}",
                machine.format_program(&prog)
            );
        }
    }

    #[test]
    fn tie_unsafe5_fails_a_tied_input() {
        // Perm-correct (asserted above) but provably not a total sorting
        // function: the AlphaDev prefix destroys the multiset of a tied
        // input, which the network suffix cannot restore.
        let (machine, prog) = tie_unsafe5();
        let mut state = sortsynth_isa::MachineState::from_values(&[1, 1, 0, 0, 0, 0]);
        for &i in &prog {
            state.exec(i);
        }
        let out: Vec<u8> = (0..5)
            .map(|i| state.reg(sortsynth_isa::Reg::new(i)))
            .collect();
        assert_ne!(
            out,
            vec![0, 0, 0, 1, 1],
            "{}",
            machine.format_program(&prog)
        );
    }

    #[test]
    fn reference_kernels_have_paper_lengths() {
        assert_eq!(paper_synth_cmov3().1.len(), 11);
        assert_eq!(paper_synth_minmax3().1.len(), 8);
        assert_eq!(alphadev_cmov3().1.len(), 11);
        assert_eq!(enum_worst_cmov3().1.len(), 11);
        assert_eq!(enum_minmax3().1.len(), 8);
        assert_eq!(enum_cmov5().1.len(), 33); // paper: ≈33
        assert_eq!(enum_minmax4().1.len(), 15); // paper: 15
        assert_eq!(enum_minmax5().1.len(), 23); // paper reports 26 — ours is shorter
        assert_eq!(enum_minmax6().1.len(), 34); // beyond the paper; network is 36
    }

    #[test]
    fn instruction_mixes_match_paper_rows() {
        // §5.3 standalone table: alphadev has 3 cmp / 6 cmov (plus the 6
        // memory movs the table counts, which our register-only model
        // excludes — 8 movs total minus 6 memory = 2 register movs).
        let mix = InstrMix::of(&alphadev_cmov3().1);
        assert_eq!((mix.cmp, mix.mov, mix.cmov), (3, 2, 6));
        // enum_worst: 3 cmp / 8 cmov, no register movs.
        let mix = InstrMix::of(&enum_worst_cmov3().1);
        assert_eq!((mix.cmp, mix.mov, mix.cmov), (3, 0, 8));
    }
}
