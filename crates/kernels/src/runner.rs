//! A uniform handle for anything that can sort a fixed-length prefix:
//! JIT-compiled kernel programs, interpreted programs, or native Rust
//! baselines.

use sortsynth_isa::{Machine, Program};
use sortsynth_jit::JitKernel;

use crate::baselines::NativeSorter;
use crate::interp::interpret;

/// A runnable sorting kernel with a display name.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_kernels::Kernel;
///
/// let machine = Machine::new(2, 1, IsaMode::Cmov);
/// let prog = machine.parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")?;
/// // Prefers the JIT, falls back to the interpreter off x86-64.
/// let kernel = Kernel::from_program("cas2", &machine, prog);
/// let mut data = [3, -3];
/// kernel.sort(&mut data);
/// assert_eq!(data, [-3, 3]);
/// # Ok::<(), sortsynth_isa::ParseProgramError>(())
/// ```
#[derive(Debug)]
pub struct Kernel {
    name: String,
    n: usize,
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Jit(JitKernel),
    Interp { machine: Machine, prog: Program },
    Native(fn(&mut [i32])),
}

impl Kernel {
    /// Wraps a kernel program, JIT-compiling when the host supports it and
    /// falling back to the interpreter otherwise.
    pub fn from_program(name: impl Into<String>, machine: &Machine, prog: Program) -> Self {
        let backend = match JitKernel::compile(machine, &prog) {
            Ok(jit) => Backend::Jit(jit),
            Err(_) => Backend::Interp {
                machine: machine.clone(),
                prog,
            },
        };
        Kernel {
            name: name.into(),
            n: machine.n() as usize,
            backend,
        }
    }

    /// Wraps a kernel program, always interpreting (for differential tests
    /// against the JIT).
    pub fn interpreted(name: impl Into<String>, machine: &Machine, prog: Program) -> Self {
        Kernel {
            name: name.into(),
            n: machine.n() as usize,
            backend: Backend::Interp {
                machine: machine.clone(),
                prog,
            },
        }
    }

    /// Wraps a native Rust baseline.
    pub fn native(sorter: NativeSorter) -> Self {
        Kernel {
            name: sorter.name.to_owned(),
            n: sorter.n,
            backend: Backend::Native(sorter.sort),
        }
    }

    /// The kernel's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values the kernel sorts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this kernel runs as native machine code (JIT or Rust).
    pub fn is_native(&self) -> bool {
        !matches!(self.backend, Backend::Interp { .. })
    }

    /// Sorts `data[0..n]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < self.n()`.
    #[inline]
    pub fn sort(&self, data: &mut [i32]) {
        match &self.backend {
            Backend::Jit(jit) => jit.run(data),
            Backend::Interp { machine, prog } => interpret(machine, prog, data),
            Backend::Native(f) => {
                assert!(data.len() >= self.n, "kernel sorts {} values", self.n);
                f(data)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use sortsynth_isa::{permutations, IsaMode};

    #[test]
    fn jit_and_interpreter_backends_agree() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let (_, prog) = crate::reference::paper_synth_cmov3();
        let jit = Kernel::from_program("jit", &m, prog.clone());
        let interp = Kernel::interpreted("interp", &m, prog);
        for perm in permutations(3) {
            let base: Vec<i32> = perm.iter().map(|&v| v as i32 * 1000 - 2000).collect();
            let mut a = base.clone();
            let mut b = base.clone();
            jit.sort(&mut a);
            interp.sort(&mut b);
            assert_eq!(a, b, "perm {perm:?}");
        }
    }

    #[test]
    fn native_backend_runs() {
        let k = Kernel::native(baselines::native3()[0]);
        assert_eq!(k.name(), "cassioneri");
        assert_eq!(k.n(), 3);
        assert!(k.is_native());
        let mut data = [3, 1, 2];
        k.sort(&mut data);
        assert_eq!(data, [1, 2, 3]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn jit_backend_selected_on_x86_64() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let prog = m
            .parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")
            .unwrap();
        let k = Kernel::from_program("cas", &m, prog);
        assert!(k.is_native());
    }
}
