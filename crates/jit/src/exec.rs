//! Executable memory buffers (W^X discipline).

use std::error::Error;
use std::fmt;
use std::ptr;

/// Errors from JIT compilation or buffer management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// The host is not x86-64, so generated code cannot run.
    UnsupportedTarget,
    /// The kernel needs more registers than the JIT ABI provides.
    TooManyRegisters {
        /// Registers the kernel program uses.
        needed: usize,
        /// Registers the ABI can allocate.
        available: usize,
    },
    /// The program uses opcodes outside the ISA the backend was asked for.
    MixedIsa,
    /// `mmap`/`mprotect` failed.
    Os(i32),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::UnsupportedTarget => {
                write!(f, "native kernel execution requires an x86-64 host")
            }
            JitError::TooManyRegisters { needed, available } => write!(
                f,
                "kernel uses {needed} registers but the JIT ABI provides {available}"
            ),
            JitError::MixedIsa => write!(f, "program mixes cmov and min/max instructions"),
            JitError::Os(errno) => write!(f, "memory mapping failed (errno {errno})"),
        }
    }
}

impl Error for JitError {}

/// A page-aligned buffer of executable machine code.
///
/// The buffer is mapped read-write, filled, then flipped to read-execute
/// (never writable and executable at once).
#[derive(Debug)]
pub struct ExecBuf {
    ptr: *mut u8,
    len: usize,
}

// The buffer is immutable after construction and freed exactly once in Drop.
unsafe impl Send for ExecBuf {}
unsafe impl Sync for ExecBuf {}

impl ExecBuf {
    /// Maps `code` into executable memory.
    ///
    /// # Errors
    ///
    /// Returns [`JitError::Os`] if the kernel refuses the mapping.
    pub fn new(code: &[u8]) -> Result<Self, JitError> {
        let page = 4096usize;
        let len = code.len().div_ceil(page).max(1) * page;
        // SAFETY: anonymous private mapping with no requested address; the
        // kernel returns either MAP_FAILED or a fresh region of `len` bytes.
        let ptr = unsafe {
            libc::mmap(
                ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(JitError::Os(last_errno()));
        }
        let ptr = ptr as *mut u8;
        // SAFETY: `ptr..ptr+code.len()` is within the fresh RW mapping.
        unsafe { ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
        // SAFETY: flipping our own fresh mapping to RX.
        let rc = unsafe {
            libc::mprotect(
                ptr as *mut libc::c_void,
                len,
                libc::PROT_READ | libc::PROT_EXEC,
            )
        };
        if rc != 0 {
            // SAFETY: unmapping the mapping we just created.
            unsafe { libc::munmap(ptr as *mut libc::c_void, len) };
            return Err(JitError::Os(last_errno()));
        }
        Ok(ExecBuf { ptr, len })
    }

    /// Base address of the executable code.
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Mapped length in bytes (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from our own successful mmap.
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.len);
        }
    }
}

fn last_errno() -> i32 {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(-1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_rounds_to_pages() {
        let buf = ExecBuf::new(&[0xC3]).unwrap();
        assert_eq!(buf.len(), 4096);
        assert!(!buf.is_empty());
        assert!(!buf.as_ptr().is_null());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn executes_ret() {
        // A bare `ret` is a valid no-op function.
        let buf = ExecBuf::new(&[0xC3]).unwrap();
        let f: extern "C" fn() = unsafe { std::mem::transmute(buf.as_ptr()) };
        f();
    }
}
