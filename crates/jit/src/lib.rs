//! x86-64 JIT back-end for sorting kernels.
//!
//! The paper benchmarks synthesized kernels as real machine code embedded
//! via inline assembly (§5.3). This crate plays that role: it assembles a
//! kernel [`Program`](sortsynth_isa::Program) into native x86-64 code — the
//! exact `mov`/`cmp`/`cmovl`/`cmovg` (or `movdqa`/`pminsd`/`pmaxsd`)
//! sequence the synthesizer produced, bracketed by the load/store
//! prologue/epilogue the paper excludes from kernel length — and runs it on
//! in-memory `i32` arrays.
//!
//! Three layers:
//!
//! * [`Asm`] — a tiny pure encoder for the needed instruction forms
//!   (unit-tested byte-for-byte against reference assembler output),
//! * [`ExecBuf`] — W^X executable memory management,
//! * [`JitKernel`] — compilation plus a safe `run(&mut [i32])` entry point.
//!
//! On non-x86-64 hosts compilation fails with
//! [`JitError::UnsupportedTarget`]; callers (the benchmark harness) fall
//! back to the interpreter in `sortsynth-kernels`.

mod asm;
mod exec;
mod kernel;

pub use asm::{Asm, Gpr, Xmm};
pub use exec::{ExecBuf, JitError};
pub use kernel::{JitKernel, KernelFn};
