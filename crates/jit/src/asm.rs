//! A minimal x86-64 encoder for the instructions kernel programs need.
//!
//! Only the handful of encodings used by sorting kernels are implemented:
//! 32-bit register-register `mov`/`cmp`/`cmovl`/`cmovg`, loads/stores
//! relative to a base pointer, the SSE4.1 `movdqa`/`pminsd`/`pmaxsd`
//! trio (scalar lane 0 is what kernels sort), `movd` transfers, and `ret`.
//! The encoder is pure (`Vec<u8>` out), so it is fully unit-testable on any
//! host architecture; only execution requires x86-64.

/// A general-purpose register, by hardware encoding.
///
/// The set is restricted to caller-saved registers so JIT-compiled kernels
/// need no stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// `rax`/`eax`.
    pub const RAX: Gpr = Gpr(0);
    /// `rcx`/`ecx`.
    pub const RCX: Gpr = Gpr(1);
    /// `rdx`/`edx`.
    pub const RDX: Gpr = Gpr(2);
    /// `rsi`/`esi`.
    pub const RSI: Gpr = Gpr(6);
    /// `rdi`/`edi` — used as the data base pointer by the kernel ABI.
    pub const RDI: Gpr = Gpr(7);
    /// `r8d`.
    pub const R8: Gpr = Gpr(8);
    /// `r9d`.
    pub const R9: Gpr = Gpr(9);
    /// `r10d`.
    pub const R10: Gpr = Gpr(10);
    /// `r11d`.
    pub const R11: Gpr = Gpr(11);

    /// The caller-saved registers available for kernel values, in allocation
    /// order.
    pub const ALLOCATABLE: [Gpr; 8] = [
        Gpr::RAX,
        Gpr::RCX,
        Gpr::RDX,
        Gpr::RSI,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
    ];

    /// Hardware encoding (0–15).
    pub fn encoding(self) -> u8 {
        self.0
    }

    fn low3(self) -> u8 {
        self.0 & 0b111
    }

    fn is_extended(self) -> bool {
        self.0 >= 8
    }
}

/// An SSE register `xmm0..xmm7` (the kernels never need the extended bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xmm(u8);

impl Xmm {
    /// Creates `xmm{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn new(i: u8) -> Self {
        assert!(i < 8, "only xmm0..xmm7 are supported");
        Xmm(i)
    }

    /// Hardware encoding (0–7).
    pub fn encoding(self) -> u8 {
        self.0
    }
}

/// Incremental x86-64 machine-code builder.
#[derive(Debug, Default, Clone)]
pub struct Asm {
    code: Vec<u8>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Asm::default()
    }

    /// The encoded bytes so far.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Finishes and returns the byte buffer.
    pub fn into_code(self) -> Vec<u8> {
        self.code
    }

    /// Optional REX prefix for a 32-bit reg/rm pair (`reg` goes to REX.R,
    /// `rm` to REX.B).
    fn rex_rr(&mut self, reg: Gpr, rm: Gpr) {
        let r = reg.is_extended() as u8;
        let b = rm.is_extended() as u8;
        if r | b != 0 {
            self.code.push(0x40 | (r << 2) | b);
        }
    }

    fn modrm_reg(&mut self, reg: u8, rm: u8) {
        self.code.push(0b11 << 6 | (reg & 7) << 3 | (rm & 7));
    }

    /// `[base + disp8]` addressing (base must not be rsp/rbp-class; rdi is).
    fn modrm_mem_disp8(&mut self, reg: u8, base: Gpr, disp: i8) {
        debug_assert!(base.low3() != 0b100, "rsp-class base needs a SIB byte");
        self.code.push(0b01 << 6 | (reg & 7) << 3 | base.low3());
        self.code.push(disp as u8);
    }

    /// `xor dst, dst` (32-bit): `31 /r` — the idiomatic register zeroing.
    pub fn xor_self(&mut self, reg: Gpr) {
        self.rex_rr(reg, reg);
        self.code.push(0x31);
        self.modrm_reg(reg.low3(), reg.low3());
    }

    /// `pxor xmm, xmm`: `66 0F EF /r` — vector register zeroing.
    pub fn pxor_self(&mut self, reg: Xmm) {
        self.sse_rr(&[0x0F, 0xEF], reg, reg);
    }

    /// `mov dst, src` (32-bit, register-register): `89 /r`.
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_rr(src, dst);
        self.code.push(0x89);
        self.modrm_reg(src.low3(), dst.low3());
    }

    /// `cmp a, b` (32-bit): `39 /r`, flags of `a - b`.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.rex_rr(b, a);
        self.code.push(0x39);
        self.modrm_reg(b.low3(), a.low3());
    }

    /// `cmovl dst, src` (32-bit): `0F 4C /r`.
    pub fn cmovl_rr(&mut self, dst: Gpr, src: Gpr) {
        self.cmovcc(0x4C, dst, src);
    }

    /// `cmovg dst, src` (32-bit): `0F 4F /r`.
    pub fn cmovg_rr(&mut self, dst: Gpr, src: Gpr) {
        self.cmovcc(0x4F, dst, src);
    }

    fn cmovcc(&mut self, opcode: u8, dst: Gpr, src: Gpr) {
        self.rex_rr(dst, src);
        self.code.push(0x0F);
        self.code.push(opcode);
        self.modrm_reg(dst.low3(), src.low3());
    }

    /// `mov dst, dword [base + disp]`: `8B /r`.
    pub fn load(&mut self, dst: Gpr, base: Gpr, disp: i8) {
        self.rex_rr(dst, base);
        self.code.push(0x8B);
        self.modrm_mem_disp8(dst.low3(), base, disp);
    }

    /// `mov dword [base + disp], src`: `89 /r`.
    pub fn store(&mut self, base: Gpr, disp: i8, src: Gpr) {
        self.rex_rr(src, base);
        self.code.push(0x89);
        self.modrm_mem_disp8(src.low3(), base, disp);
    }

    /// `movd xmm, dword [base + disp]`: `66 0F 6E /r`.
    pub fn movd_load(&mut self, dst: Xmm, base: Gpr, disp: i8) {
        self.code.push(0x66);
        if base.is_extended() {
            self.code.push(0x41);
        }
        self.code.push(0x0F);
        self.code.push(0x6E);
        self.modrm_mem_disp8(dst.encoding(), base, disp);
    }

    /// `movd dword [base + disp], xmm`: `66 0F 7E /r`.
    pub fn movd_store(&mut self, base: Gpr, disp: i8, src: Xmm) {
        self.code.push(0x66);
        if base.is_extended() {
            self.code.push(0x41);
        }
        self.code.push(0x0F);
        self.code.push(0x7E);
        self.modrm_mem_disp8(src.encoding(), base, disp);
    }

    /// `movdqa dst, src` (xmm-xmm): `66 0F 6F /r`.
    pub fn movdqa_rr(&mut self, dst: Xmm, src: Xmm) {
        self.sse_rr(&[0x0F, 0x6F], dst, src);
    }

    /// `pminsd dst, src` (SSE4.1): `66 0F 38 39 /r`.
    pub fn pminsd_rr(&mut self, dst: Xmm, src: Xmm) {
        self.sse_rr(&[0x0F, 0x38, 0x39], dst, src);
    }

    /// `pmaxsd dst, src` (SSE4.1): `66 0F 38 3D /r`.
    pub fn pmaxsd_rr(&mut self, dst: Xmm, src: Xmm) {
        self.sse_rr(&[0x0F, 0x38, 0x3D], dst, src);
    }

    fn sse_rr(&mut self, opcode: &[u8], dst: Xmm, src: Xmm) {
        self.code.push(0x66);
        self.code.extend_from_slice(opcode);
        self.modrm_reg(dst.encoding(), src.encoding());
    }

    /// `ret`: `C3`.
    pub fn ret(&mut self) {
        self.code.push(0xC3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Expected bytes verified against `as`/`objdump` output for the same
    // mnemonics.
    #[test]
    fn mov_rr_encodings() {
        let mut a = Asm::new();
        a.mov_rr(Gpr::RCX, Gpr::RAX); // mov ecx, eax
        assert_eq!(a.code(), [0x89, 0xC1]);

        let mut a = Asm::new();
        a.mov_rr(Gpr::R8, Gpr::RAX); // mov r8d, eax
        assert_eq!(a.code(), [0x41, 0x89, 0xC0]);

        let mut a = Asm::new();
        a.mov_rr(Gpr::RAX, Gpr::R9); // mov eax, r9d
        assert_eq!(a.code(), [0x44, 0x89, 0xC8]);
    }

    #[test]
    fn cmp_and_cmov_encodings() {
        let mut a = Asm::new();
        a.cmp_rr(Gpr::RAX, Gpr::RCX); // cmp eax, ecx
        assert_eq!(a.code(), [0x39, 0xC8]);

        let mut a = Asm::new();
        a.cmovl_rr(Gpr::RAX, Gpr::RCX); // cmovl eax, ecx
        assert_eq!(a.code(), [0x0F, 0x4C, 0xC1]);

        let mut a = Asm::new();
        a.cmovg_rr(Gpr::RDX, Gpr::RSI); // cmovg edx, esi
        assert_eq!(a.code(), [0x0F, 0x4F, 0xD6]);

        let mut a = Asm::new();
        a.cmovg_rr(Gpr::R10, Gpr::R11); // cmovg r10d, r11d
        assert_eq!(a.code(), [0x45, 0x0F, 0x4F, 0xD3]);
    }

    #[test]
    fn load_store_encodings() {
        let mut a = Asm::new();
        a.load(Gpr::RAX, Gpr::RDI, 0); // mov eax, [rdi+0]
        assert_eq!(a.code(), [0x8B, 0x47, 0x00]);

        let mut a = Asm::new();
        a.load(Gpr::R8, Gpr::RDI, 4); // mov r8d, [rdi+4]
        assert_eq!(a.code(), [0x44, 0x8B, 0x47, 0x04]);

        let mut a = Asm::new();
        a.store(Gpr::RDI, 8, Gpr::RCX); // mov [rdi+8], ecx
        assert_eq!(a.code(), [0x89, 0x4F, 0x08]);
    }

    #[test]
    fn sse_encodings() {
        let mut a = Asm::new();
        a.movdqa_rr(Xmm::new(7), Xmm::new(0)); // movdqa xmm7, xmm0
        assert_eq!(a.code(), [0x66, 0x0F, 0x6F, 0xF8]);

        let mut a = Asm::new();
        a.pminsd_rr(Xmm::new(0), Xmm::new(1)); // pminsd xmm0, xmm1
        assert_eq!(a.code(), [0x66, 0x0F, 0x38, 0x39, 0xC1]);

        let mut a = Asm::new();
        a.pmaxsd_rr(Xmm::new(1), Xmm::new(7)); // pmaxsd xmm1, xmm7
        assert_eq!(a.code(), [0x66, 0x0F, 0x38, 0x3D, 0xCF]);

        let mut a = Asm::new();
        a.movd_load(Xmm::new(2), Gpr::RDI, 4); // movd xmm2, [rdi+4]
        assert_eq!(a.code(), [0x66, 0x0F, 0x6E, 0x57, 0x04]);

        let mut a = Asm::new();
        a.movd_store(Gpr::RDI, 0, Xmm::new(3)); // movd [rdi+0], xmm3
        assert_eq!(a.code(), [0x66, 0x0F, 0x7E, 0x5F, 0x00]);
    }

    #[test]
    fn zeroing_encodings() {
        let mut a = Asm::new();
        a.xor_self(Gpr::RAX); // xor eax, eax
        assert_eq!(a.code(), [0x31, 0xC0]);

        let mut a = Asm::new();
        a.xor_self(Gpr::R8); // xor r8d, r8d
        assert_eq!(a.code(), [0x45, 0x31, 0xC0]);

        let mut a = Asm::new();
        a.pxor_self(Xmm::new(7)); // pxor xmm7, xmm7
        assert_eq!(a.code(), [0x66, 0x0F, 0xEF, 0xFF]);
    }

    #[test]
    fn ret_encoding() {
        let mut a = Asm::new();
        a.ret();
        assert_eq!(a.code(), [0xC3]);
    }
}
