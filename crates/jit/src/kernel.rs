//! Compiling kernel programs to native functions.

use sortsynth_isa::{Instr, IsaMode, Machine, Op};

use crate::asm::{Asm, Gpr, Xmm};
use crate::exec::{ExecBuf, JitError};

/// The native calling convention of compiled kernels:
/// `fn(data: *mut i32)` where `data[0..n]` holds the values to sort in
/// place.
pub type KernelFn = unsafe extern "C" fn(*mut i32);

/// A sorting-kernel program compiled to native x86-64 code.
///
/// The compiled function loads `data[0..n]` into registers, runs the kernel
/// body register-to-register (exactly the instruction sequence that was
/// synthesized — the loads/stores are the fixed prologue/epilogue the paper
/// excludes from kernel length, §5.3), and stores the sorted values back.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_jit::JitKernel;
///
/// let machine = Machine::new(2, 1, IsaMode::Cmov);
/// let prog = machine.parse_program("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1")?;
/// let kernel = JitKernel::compile(&machine, &prog)?;
/// let mut data = [9, -3];
/// kernel.run(&mut data);
/// assert_eq!(data, [-3, 9]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JitKernel {
    buf: ExecBuf,
    code_len: usize,
    n: usize,
}

impl JitKernel {
    /// Compiles `prog` for `machine`.
    ///
    /// # Errors
    ///
    /// * [`JitError::UnsupportedTarget`] off x86-64,
    /// * [`JitError::TooManyRegisters`] if `n + m` exceeds the ABI register
    ///   pool (8 GPRs for the cmov ISA, 8 XMM registers for min/max),
    /// * [`JitError::MixedIsa`] if `prog` contains opcodes outside
    ///   `machine.mode()`,
    /// * [`JitError::Os`] if executable memory cannot be mapped.
    pub fn compile(machine: &Machine, prog: &[Instr]) -> Result<Self, JitError> {
        if !cfg!(target_arch = "x86_64") {
            return Err(JitError::UnsupportedTarget);
        }
        let code = emit(machine, prog)?;
        let code_len = code.len();
        Ok(JitKernel {
            buf: ExecBuf::new(&code)?,
            code_len,
            n: machine.n() as usize,
        })
    }

    /// Number of values the kernel sorts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The emitted machine code (prologue + body + epilogue + `ret`).
    pub fn code(&self) -> &[u8] {
        // SAFETY: the first `code_len` bytes of the mapping are the code we
        // wrote; the mapping is readable.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr(), self.code_len) }
    }

    /// The raw function pointer (for benchmarking loops that want to avoid
    /// the bounds check in [`JitKernel::run`]).
    ///
    /// # Safety
    ///
    /// The caller must pass a pointer to at least `n` valid, writable
    /// `i32`s.
    pub unsafe fn as_fn(&self) -> KernelFn {
        // SAFETY: the buffer holds a complete function with the KernelFn ABI.
        unsafe { std::mem::transmute::<*const u8, KernelFn>(self.buf.as_ptr()) }
    }

    /// Sorts `data[0..n]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < n`.
    pub fn run(&self, data: &mut [i32]) {
        assert!(data.len() >= self.n, "kernel sorts {} values", self.n);
        // SAFETY: `data` is a valid writable buffer of at least n i32s, and
        // the compiled code only touches data[0..n] and caller-saved
        // registers.
        unsafe { (self.as_fn())(data.as_mut_ptr()) }
    }
}

/// Emits prologue, body, and epilogue for `prog`.
fn emit(machine: &Machine, prog: &[Instr]) -> Result<Vec<u8>, JitError> {
    let regs = machine.num_regs() as usize;
    let n = machine.n() as usize;
    for instr in prog {
        if !machine.mode().ops().contains(&instr.op) {
            return Err(JitError::MixedIsa);
        }
    }
    let mut asm = Asm::new();
    match machine.mode() {
        IsaMode::Cmov => {
            let pool = Gpr::ALLOCATABLE;
            if regs > pool.len() {
                return Err(JitError::TooManyRegisters {
                    needed: regs,
                    available: pool.len(),
                });
            }
            let reg = |r: sortsynth_isa::Reg| pool[r.index() as usize];
            for (i, &gpr) in pool.iter().enumerate().take(n) {
                asm.load(gpr, Gpr::RDI, (4 * i) as i8);
            }
            // Scratch registers start at 0 in the machine model.
            for &gpr in pool.iter().take(regs).skip(n) {
                asm.xor_self(gpr);
            }
            for &instr in prog {
                let (dst, src) = (reg(instr.dst), reg(instr.src));
                match instr.op {
                    Op::Mov => asm.mov_rr(dst, src),
                    Op::Cmp => asm.cmp_rr(dst, src),
                    Op::Cmovl => asm.cmovl_rr(dst, src),
                    Op::Cmovg => asm.cmovg_rr(dst, src),
                    Op::Min | Op::Max => unreachable!("checked against the ISA above"),
                }
            }
            for (i, &gpr) in pool.iter().enumerate().take(n) {
                asm.store(Gpr::RDI, (4 * i) as i8, gpr);
            }
        }
        IsaMode::MinMax => {
            if regs > 8 {
                return Err(JitError::TooManyRegisters {
                    needed: regs,
                    available: 8,
                });
            }
            let reg = |r: sortsynth_isa::Reg| Xmm::new(r.index());
            for i in 0..n {
                asm.movd_load(Xmm::new(i as u8), Gpr::RDI, (4 * i) as i8);
            }
            // Scratch registers start at 0 in the machine model.
            for i in n..regs {
                asm.pxor_self(Xmm::new(i as u8));
            }
            for &instr in prog {
                let (dst, src) = (reg(instr.dst), reg(instr.src));
                match instr.op {
                    Op::Mov => asm.movdqa_rr(dst, src),
                    Op::Min => asm.pminsd_rr(dst, src),
                    Op::Max => asm.pmaxsd_rr(dst, src),
                    Op::Cmp | Op::Cmovl | Op::Cmovg => {
                        unreachable!("checked against the ISA above")
                    }
                }
            }
            for i in 0..n {
                asm.movd_store(Gpr::RDI, (4 * i) as i8, Xmm::new(i as u8));
            }
        }
    }
    asm.ret();
    Ok(asm.into_code())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::permutations;

    fn compile(machine: &Machine, text: &str) -> JitKernel {
        let prog = machine.parse_program(text).unwrap();
        JitKernel::compile(machine, &prog).unwrap()
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn cas_sorts_two_values() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let k = compile(&m, "mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1");
        for (a, b) in [
            (1, 2),
            (2, 1),
            (5, 5),
            (-7, 3),
            (3, -7),
            (i32::MAX, i32::MIN),
        ] {
            let mut data = [a, b];
            k.run(&mut data);
            assert_eq!(data, [a.min(b), a.max(b)], "input ({a}, {b})");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn minmax_cas_sorts_two_values() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let k = compile(&m, "mov s1 r1; min r1 r2; max r2 s1");
        for (a, b) in [(1, 2), (2, 1), (4, 4), (-9, 12), (12, -9)] {
            let mut data = [a, b];
            k.run(&mut data);
            assert_eq!(data, [a.min(b), a.max(b)], "input ({a}, {b})");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn jit_agrees_with_interpreter_on_permutations() {
        // The interpreter (MachineState::exec) is the semantic oracle; the
        // JIT must sort every permutation exactly like it does.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let text = "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1; \
                    mov s1 r3; cmp r2 r3; cmovg r3 r2; cmovg r2 s1; \
                    cmp r1 r2; cmovg r2 r1; cmovg r1 s1";
        let prog = m.parse_program(text).unwrap();
        assert!(m.is_correct(&prog));
        let k = JitKernel::compile(&m, &prog).unwrap();
        for perm in permutations(3) {
            let mut data: Vec<i32> = perm.iter().map(|&v| v as i32 * 100 - 150).collect();
            k.run(&mut data);
            let mut expected = data.clone();
            expected.sort_unstable();
            assert_eq!(data, expected, "perm {perm:?}");
        }
    }

    #[test]
    fn run_validates_buffer_length() {
        if !cfg!(target_arch = "x86_64") {
            return;
        }
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let k = compile(&m, "mov s1 r2");
        let result = std::panic::catch_unwind(|| {
            let mut short = [1i32];
            k.run(&mut short);
        });
        assert!(result.is_err());
    }

    #[test]
    fn mixed_isa_rejected() {
        let cmov = Machine::new(2, 1, IsaMode::Cmov);
        let minmax = Machine::new(2, 1, IsaMode::MinMax);
        let prog = minmax.parse_program("min r1 r2").unwrap();
        assert_eq!(
            JitKernel::compile(&cmov, &prog).unwrap_err(),
            JitError::MixedIsa
        );
    }

    #[test]
    fn too_many_registers_rejected() {
        let m = Machine::new(6, 3, IsaMode::Cmov); // 9 > 8 GPRs
        match JitKernel::compile(&m, &[]) {
            Err(JitError::TooManyRegisters {
                needed: 9,
                available: 8,
            }) => {}
            other => panic!("expected TooManyRegisters, got {other:?}"),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn emitted_code_has_expected_shape() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let k = compile(&m, "cmp r1 r2");
        // 2 loads (3 bytes each), 1 scratch xor (2 bytes), 1 cmp (2 bytes),
        // 2 stores (3 bytes), ret.
        assert_eq!(k.code().len(), 3 + 3 + 2 + 2 + 3 + 3 + 1);
        assert_eq!(*k.code().last().unwrap(), 0xC3);
    }
}
