//! Synthesis configuration: strategy, heuristics, cuts, and limits.

use std::path::PathBuf;
use std::time::Duration;

use sortsynth_isa::Machine;

use crate::budget::SearchBudget;
use crate::progress::ProgressHook;

/// Width of the closed/open-set key derived from the 128-bit content hash
/// ([`crate::state::key_of`]).
///
/// The narrow width xor-folds the two 64-bit halves — the exact fold the
/// identity hasher already uses for bucket selection — halving closed-set
/// bytes per state. Soundness is pinned by the `key_width` collision fuzz
/// suite (≥10M random state pairs per ISA find no fold collision between
/// distinct states) and by the u64-vs-u128 differential matrix asserting
/// identical costs and prune counters; the analytic collision probability
/// at n = 4 scale (~2.6e5 states) is ≈ 1.8e-9 per run. The wide width
/// stays available as the differential reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyWidth {
    /// 64-bit folded keys — the production default (16-byte map entries).
    #[default]
    U64,
    /// Full 128-bit keys — the differential reference (32-byte map
    /// entries).
    U128,
}

impl KeyWidth {
    /// Bytes of one `key → id` closed-map entry (key + `u32` id, padded to
    /// the key's alignment) — the per-state closed-set cost the
    /// `memory_scale` bench reports.
    pub fn entry_bytes(self) -> u64 {
        match self {
            KeyWidth::U64 => 16,
            KeyWidth::U128 => 32,
        }
    }
}

/// Open-state selection strategy (§3.1).
///
/// Orthogonal to [`SynthesisConfig::threads`]: either strategy can run on
/// one thread (exact sequential expansion order) or many (the sharded
/// HDA*-style engine in [`crate::synthesize`]'s parallel mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Dijkstra-style layered enumeration: all programs of length ℓ are
    /// processed before length ℓ+1, so the first solution is guaranteed to
    /// be of minimal length. In parallel mode this becomes parallel
    /// uniform-cost search (`f = g`) — the paper's "dijkstra, parallel"
    /// ablation row.
    Layered,
    /// Best-first search ordered by `g + h` for the chosen heuristic.
    AStar {
        /// The guiding heuristic.
        heuristic: Heuristic,
    },
}

/// Search heuristics of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// No guidance: `f = g` (degenerates to uniform-cost search).
    None,
    /// Number of distinct permutations remaining in the state. Not
    /// admissible (it is a sortedness measure, not a length bound), but the
    /// paper's best-performing guide.
    PermCount,
    /// Number of distinct register assignments remaining (includes scratch
    /// registers and flags). Not admissible.
    AssignCount,
    /// Maximum over the state's assignments of the precomputed shortest
    /// per-assignment sorting distance. **Admissible**: every assignment
    /// must individually be sorted by the remaining program, so A* with this
    /// heuristic preserves minimality.
    MaxRemaining,
}

impl Heuristic {
    /// Whether `A*` with this heuristic still guarantees minimal-length
    /// solutions.
    pub fn is_admissible(self) -> bool {
        matches!(self, Heuristic::None | Heuristic::MaxRemaining)
    }
}

/// Open-list implementation behind the best-first engines.
///
/// Purely an implementation choice: both variants pop entries in the
/// exact same ascending `(f, g, state id)` order, which the
/// `bucket_equivalence` differential suite pins by asserting identical
/// expansion traces. The heap stays available as the reference
/// implementation for that harness (and as a fallback), the bucket queue
/// is the production default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenList {
    /// The [`crate::BucketQueue`]: O(1) push and amortized-O(1) pop over
    /// the small dense f-range of this search.
    #[default]
    Bucket,
    /// The reference `std::collections::BinaryHeap` with `O(log n)`
    /// operations.
    Heap,
}

/// The §3.5 non-optimality-preserving cut. A freshly generated state of
/// length ℓ is discarded when its permutation count exceeds the threshold
/// derived from the best (minimum) permutation count seen at length ℓ−1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cut {
    /// Keep the state only if `perm_count ≤ k · min_prev` (the paper's
    /// multiplicative cut; `k = 1` is the most aggressive setting).
    Factor(f64),
    /// Keep the state only if `perm_count ≤ min_prev + c` (the paper's
    /// "cut with +2" row).
    Additive(u32),
}

impl Cut {
    /// The largest permutation count that survives given the previous
    /// layer's minimum.
    pub fn threshold(self, min_prev: u32) -> u32 {
        match self {
            Cut::Factor(k) => (k * min_prev as f64).floor() as u32,
            Cut::Additive(c) => min_prev + c,
        }
    }
}

/// Full configuration for one synthesis run.
///
/// Construct with [`SynthesisConfig::new`] and refine with the builder
/// methods; run with [`crate::synthesize`].
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_search::{Cut, Heuristic, Strategy, SynthesisConfig};
///
/// let cfg = SynthesisConfig::new(Machine::new(3, 1, IsaMode::Cmov))
///     .strategy(Strategy::AStar { heuristic: Heuristic::PermCount })
///     .cut(Cut::Factor(1.0))
///     .budget_viability(true)
///     .optimal_instrs_only(true);
/// assert!(!cfg.guarantees_minimal()); // cuts may prune optimal states
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// The machine to synthesize for.
    pub machine: Machine,
    /// Open-state selection strategy.
    pub strategy: Strategy,
    /// Open-list implementation (bucket queue by default; the binary heap
    /// remains as the differential-testing reference).
    pub open_list: OpenList,
    /// Optional §3.5 cut.
    pub cut: Option<Cut>,
    /// Enable the §3.3 per-assignment remaining-budget viability check
    /// (requires the distance table; implied by `MaxRemaining` and
    /// `optimal_instrs_only`).
    pub budget_viability: bool,
    /// Restrict expansion to the §3.2 precomputed optimal first
    /// instructions.
    pub optimal_instrs_only: bool,
    /// Skip successors whose new instruction makes the parent edge's
    /// instruction dead (a dead-write cut from the static analyzer's
    /// liveness rules): appending `cmp` directly after `cmp` kills the
    /// first compare's flags, and `mov dst, _` directly after a write to
    /// `dst` that it does not read kills that write. The pruned program is
    /// observationally equal to a one-instruction-shorter program the
    /// layered search has already expanded, so no minimal-length solution
    /// is lost.
    pub dead_write_cut: bool,
    /// Skip successors the symbolic value-flow analyzer proves redundant: a
    /// new instruction that cannot change any reachable register assignment
    /// (a `mov`/`min`/`max`/`cmov` whose destination already holds the
    /// selected value in every parent assignment, a `cmp` that recomputes the
    /// current flags) yields a state identical to its parent, which the
    /// search has already expanded at a shorter length — so the prune is
    /// lossless. When the run is not collecting all solutions and not
    /// restricted to optimal first instructions, the cut additionally drops
    /// conditional moves whose condition holds in every parent assignment
    /// (the successor equals the one reached by the unconditional `mov` with
    /// the same operands, which is generated alongside it).
    pub value_flow_cut: bool,
    /// Hard upper bound on program length (inclusive). Used both as a search
    /// budget and, by the lower-bound prover, as the exhaustion depth.
    pub max_len: Option<u32>,
    /// Keep searching after the first solution and collect every solution of
    /// the minimal length.
    pub all_solutions: bool,
    /// Abort after generating this many states.
    pub node_limit: Option<u64>,
    /// Abort after this much wall-clock time.
    pub time_limit: Option<Duration>,
    /// Cooperative deadline/cancellation budget (see [`SearchBudget`]).
    /// Unlike `time_limit`, its deadline is absolute and it can be revoked
    /// from another thread mid-search.
    pub budget: SearchBudget,
    /// Record a progress sample every this many generated states
    /// (0 disables; used to regenerate the paper's Figure 1). Also sets the
    /// throttle for [`SynthesisConfig::progress_hook`] delivery and
    /// `search_progress` trace events (default throttle when 0: every 4096
    /// expansions).
    pub progress_every: u64,
    /// Optional live-progress callback, invoked on the throttle above and
    /// once more with a `finished` snapshot when the run ends (any outcome,
    /// including cancellation).
    pub progress_hook: Option<ProgressHook>,
    /// Search worker threads. `1` (the default) preserves today's exact
    /// sequential expansion order — bit-for-bit reproducible stats and DAG.
    /// `0` means "auto": use [`std::thread::available_parallelism`]. Any
    /// other value runs the sharded parallel engine with that many workers
    /// (see the crate docs' "Parallel search" section). All-solutions mode
    /// always runs sequentially: the full solution DAG needs globally
    /// ordered parent edges.
    pub threads: usize,
    /// Test-only determinism harness: when set, every parallel worker
    /// derives an RNG from this seed and injects random yields/sleeps
    /// between expansions, perturbing thread interleavings so stress tests
    /// can shake out schedule-dependent bugs. Ignored by the sequential
    /// engine.
    #[doc(hidden)]
    pub perturb_seed: Option<u64>,
    /// Test-only crash harness: when set, the sequential engine panics once
    /// this many states have been expanded — *after* the progress tick for
    /// that expansion, so the flight recorder's crash-dump property (the
    /// last delivered snapshot survives a worker panic) can be tested
    /// deterministically. Ignored by the parallel engine.
    #[doc(hidden)]
    pub panic_after: Option<u64>,
    /// Closed/open-set key width (see [`KeyWidth`]). `U64` by default;
    /// `U128` remains as the differential reference.
    pub key_width: KeyWidth,
    /// Approximate resident-memory budget for search bookkeeping (arena
    /// spans + closed map + per-node metadata). When set, the sequential
    /// layered engine activates the external-memory tier: frontier spans
    /// over budget spill to checksummed append-only segments under
    /// [`SynthesisConfig::spill_dir`], expanded layers are compacted out of
    /// the arena, old closed-set entries are evicted to sorted segments
    /// with delayed duplicate detection on re-read, and a journal
    /// checkpoint after every completed layer makes the run resumable. The
    /// A* and parallel engines ignore the budget (documented limitation of
    /// this tier).
    pub mem_budget_bytes: Option<u64>,
    /// Directory for spill segments and the resume journal. Defaults to a
    /// fresh per-run directory under the system temp dir when a budget is
    /// set without an explicit location.
    pub spill_dir: Option<PathBuf>,
    /// Resume a killed budgeted search from the journal in this directory
    /// (the run's `spill_dir`). The journal's config fingerprint must
    /// match; segment checksums are verified before any state is trusted —
    /// a torn or corrupt journal/segment is reported as an error, never
    /// silently replayed. Use [`crate::try_synthesize`] to observe the
    /// error.
    pub resume_dir: Option<PathBuf>,
    /// Persisted per-(n, scratch, ISA, threads) arena sizing table. When
    /// the file has a row for this run's shape, arenas and open lanes are
    /// pre-sized to the recorded high-water marks (eliminating growth
    /// reallocations); the row is refreshed after every run.
    pub sizing_path: Option<PathBuf>,
}

impl SynthesisConfig {
    /// A baseline configuration: serial layered (Dijkstra) search with the
    /// erasure viability check only — the paper's "dijkstra, single core"
    /// row.
    pub fn new(machine: Machine) -> Self {
        SynthesisConfig {
            machine,
            strategy: Strategy::Layered,
            open_list: OpenList::default(),
            cut: None,
            budget_viability: false,
            optimal_instrs_only: false,
            dead_write_cut: false,
            value_flow_cut: false,
            max_len: None,
            all_solutions: false,
            node_limit: None,
            time_limit: None,
            budget: SearchBudget::unlimited(),
            progress_every: 0,
            progress_hook: None,
            threads: 1,
            perturb_seed: None,
            panic_after: None,
            key_width: KeyWidth::default(),
            mem_budget_bytes: None,
            spill_dir: None,
            resume_dir: None,
            sizing_path: None,
        }
    }

    /// The paper's best configuration "(III)" (§5.2): optimal-instruction
    /// restriction, assignment viability check, and the `k = 1` cut, on the
    /// length-ordered (layered) open list.
    ///
    /// The layered open list realizes the paper's permutation-count guidance
    /// through the cut itself (each layer only keeps states close to the
    /// layer's permutation-count minimum) while retaining the
    /// shortest-first property that makes the reported kernel lengths (11 /
    /// 20 / ≈33 for n = 3/4/5) come out directly. A free-running best-first
    /// variant is available via [`Strategy::AStar`] for the ablation
    /// experiments, but being non-admissibly guided it may return
    /// non-minimal kernels.
    pub fn best(machine: Machine) -> Self {
        SynthesisConfig::new(machine)
            .optimal_instrs_only(true)
            .budget_viability(true)
            .cut(Cut::Factor(1.0))
    }

    /// Sets the open-state selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the open-list implementation.
    pub fn open_list(mut self, open_list: OpenList) -> Self {
        self.open_list = open_list;
        self
    }

    /// Sets the §3.5 cut.
    pub fn cut(mut self, cut: Cut) -> Self {
        self.cut = Some(cut);
        self
    }

    /// Enables/disables the per-assignment budget viability check.
    pub fn budget_viability(mut self, on: bool) -> Self {
        self.budget_viability = on;
        self
    }

    /// Enables/disables the optimal-first-instruction restriction.
    pub fn optimal_instrs_only(mut self, on: bool) -> Self {
        self.optimal_instrs_only = on;
        self
    }

    /// Enables/disables the liveness-based dead-write successor cut.
    pub fn dead_write_cut(mut self, on: bool) -> Self {
        self.dead_write_cut = on;
        self
    }

    /// Enables/disables the symbolic value-flow successor cut.
    pub fn value_flow_cut(mut self, on: bool) -> Self {
        self.value_flow_cut = on;
        self
    }

    /// Sets the inclusive maximum program length.
    pub fn max_len(mut self, len: u32) -> Self {
        self.max_len = Some(len);
        self
    }

    /// Collect every minimal-length solution instead of stopping at the
    /// first.
    pub fn all_solutions(mut self, on: bool) -> Self {
        self.all_solutions = on;
        self
    }

    /// Aborts the search after generating `limit` states.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Aborts the search after `limit` wall-clock time.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Bounds the search with a cooperative [`SearchBudget`] (absolute
    /// deadline and/or external cancellation).
    pub fn search_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Records progress samples (for Figure 1) every `every` generated
    /// states.
    pub fn progress_every(mut self, every: u64) -> Self {
        self.progress_every = every;
        self
    }

    /// Installs a live-progress callback (see
    /// [`SynthesisConfig::progress_hook`]).
    pub fn progress_hook(mut self, hook: ProgressHook) -> Self {
        self.progress_hook = Some(hook);
        self
    }

    /// Sets the worker-thread count: `1` = exact sequential order, `0` =
    /// all available cores, otherwise that many parallel workers.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs the test-only interleaving perturbation seed (see
    /// [`SynthesisConfig::perturb_seed`]).
    #[doc(hidden)]
    pub fn perturb_seed(mut self, seed: u64) -> Self {
        self.perturb_seed = Some(seed);
        self
    }

    /// Installs the test-only crash injection threshold (see
    /// [`SynthesisConfig::panic_after`]).
    #[doc(hidden)]
    pub fn panic_after(mut self, expansions: u64) -> Self {
        self.panic_after = Some(expansions);
        self
    }

    /// Selects the closed/open-set key width (see [`KeyWidth`]).
    pub fn key_width(mut self, width: KeyWidth) -> Self {
        self.key_width = width;
        self
    }

    /// Sets the resident-memory budget that activates the external-memory
    /// spill tier (see [`SynthesisConfig::mem_budget_bytes`]).
    pub fn mem_budget_bytes(mut self, bytes: u64) -> Self {
        self.mem_budget_bytes = Some(bytes);
        self
    }

    /// Sets the spill/journal directory for the external-memory tier.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Resumes a killed budgeted search from the journal in `dir`.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }

    /// Points the engine at a persisted arena sizing table (see
    /// [`SynthesisConfig::sizing_path`]).
    pub fn sizing_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.sizing_path = Some(path.into());
        self
    }

    /// The resolved worker count: `threads`, with `0` mapped to
    /// [`std::thread::available_parallelism`].
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// Whether this configuration guarantees that returned solutions have
    /// minimal length: layered search or admissible A*, with no cut and no
    /// optimal-instruction restriction (§3.2/§3.5 are explicitly
    /// non-optimality-preserving — though in practice, and in the paper's
    /// experiments, they retain minimal-length solutions).
    pub fn guarantees_minimal(&self) -> bool {
        let strategy_ok = match self.strategy {
            Strategy::Layered => true,
            Strategy::AStar { heuristic } => heuristic.is_admissible(),
        };
        strategy_ok && self.cut.is_none() && !self.optimal_instrs_only
    }

    /// Whether the engine must build a [`crate::DistanceTable`].
    pub(crate) fn needs_distance_table(&self) -> bool {
        self.budget_viability
            || self.optimal_instrs_only
            || matches!(
                self.strategy,
                Strategy::AStar {
                    heuristic: Heuristic::MaxRemaining
                }
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn cut_thresholds() {
        assert_eq!(Cut::Factor(1.0).threshold(6), 6);
        assert_eq!(Cut::Factor(1.5).threshold(6), 9);
        assert_eq!(Cut::Factor(2.0).threshold(5), 10);
        assert_eq!(Cut::Additive(2).threshold(6), 8);
    }

    #[test]
    fn admissibility() {
        assert!(Heuristic::MaxRemaining.is_admissible());
        assert!(Heuristic::None.is_admissible());
        assert!(!Heuristic::PermCount.is_admissible());
        assert!(!Heuristic::AssignCount.is_admissible());
    }

    #[test]
    fn minimality_guarantee() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        assert!(SynthesisConfig::new(m.clone()).guarantees_minimal());
        assert!(SynthesisConfig::new(m.clone())
            .strategy(Strategy::AStar {
                heuristic: Heuristic::MaxRemaining
            })
            .guarantees_minimal());
        assert!(!SynthesisConfig::new(m.clone())
            .cut(Cut::Factor(2.0))
            .guarantees_minimal());
        assert!(!SynthesisConfig::best(m).guarantees_minimal());
    }

    #[test]
    fn best_config_needs_distance_table() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        assert!(SynthesisConfig::best(m.clone()).needs_distance_table());
        assert!(!SynthesisConfig::new(m).needs_distance_table());
    }
}
