//! External-memory spill tier: disk-backed open-list spans, closed-set
//! segments with delayed duplicate detection, and a resume journal.
//!
//! Under [`crate::SynthesisConfig::mem_budget_bytes`] the sequential layered
//! engine keeps its resident footprint near the budget by moving cold data
//! into checksummed append-only segments ([`sortsynth_obs::segment`], WAL
//! discipline):
//!
//! * **Frontier spans** — once the resident estimate crosses the budget,
//!   freshly interned states keep their metadata and closed-set entry but
//!   their assignment span goes to `frontier-{g}.seg` instead of the arena.
//!   The next layer's expansion streams those spans back in id order (the
//!   append order), so one sequential read covers the whole layer.
//! * **Closed-set segments** — at the end of a layer under budget pressure,
//!   closed-map entries of already-expanded layers are evicted to a sorted
//!   `closed-{g}.seg`. Candidates interned after that are checked against
//!   those segments by **delayed duplicate detection** (DDD): a sorted
//!   merge-join at the end of each layer deletes the frontier entries that
//!   duplicate an evicted state. Same-layer and next-layer duplicates stay
//!   exact through the resident map, so only older-layer dedup is delayed —
//!   which is lossless for layered search (an older duplicate can never be
//!   on a shorter path).
//! * **Journal** — a checkpoint written atomically at each layer boundary
//!   records everything needed to re-run the next layer: parent edges,
//!   per-state metadata, the resident closed map, the frontier (resident
//!   spans inline, spilled spans by segment reference), and the counters. A
//!   killed search resumes with [`crate::SynthesisConfig::resume_from`]; the
//!   journal and every referenced segment byte are strictly re-verified
//!   (checksums, recorded valid lengths) before anything is trusted, so a
//!   torn or corrupt spill directory is reported as a [`ResumeError`], never
//!   silently replayed.
//!
//! Mid-run spill I/O failures (disk full, permission loss) panic with a
//! clear message: the engine cannot continue correctly without its spilled
//! state, and the journal on disk remains valid for a later resume.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sortsynth_isa::MachineState;
use sortsynth_obs::names;
use sortsynth_obs::segment::{self, SegmentError, SegmentReader, SegmentWriter};
use sortsynth_obs::Histogram;

use crate::config::SynthesisConfig;

/// Magic for frontier-span segments.
pub(crate) const FRONTIER_MAGIC: &[u8; 8] = b"SSSPILLF";
/// Magic for sorted closed-set segments.
pub(crate) const CLOSED_MAGIC: &[u8; 8] = b"SSSPILLC";
/// Magic for the resume journal.
pub(crate) const JOURNAL_MAGIC: &[u8; 8] = b"SSJOURNL";
/// On-disk format version shared by all three file kinds.
pub(crate) const SPILL_VERSION: u32 = 1;
/// Journal file name inside the spill directory.
pub(crate) const JOURNAL_NAME: &str = "journal.ssj";
/// Closed-segment record granularity: entries per checksummed record.
const CLOSED_CHUNK: usize = 4096;

/// Why resuming a search from a spill directory failed.
#[derive(Debug)]
pub enum ResumeError {
    /// Underlying I/O failure while reading the journal or segments.
    Io(io::Error),
    /// A journal or segment failed its checksum / length verification.
    Segment(SegmentError),
    /// The directory holds no journal checkpoint.
    MissingJournal {
        /// The spill directory that was searched.
        dir: PathBuf,
    },
    /// The journal was written by a run with a different configuration
    /// (machine, strategy, key width, or cuts).
    ConfigMismatch {
        /// Fingerprint of the requesting configuration.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// The journal payload decoded to nonsense (internal corruption that
    /// still passed the checksum — should not happen).
    Malformed {
        /// Which journal section failed to decode.
        what: &'static str,
    },
    /// The requesting configuration cannot be resumed (e.g. non-layered
    /// strategy or a parallel run).
    Unsupported {
        /// Why the configuration is not resumable.
        why: &'static str,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "resume i/o error: {e}"),
            ResumeError::Segment(e) => write!(f, "resume rejected: {e}"),
            ResumeError::MissingJournal { dir } => {
                write!(f, "no resume journal in {}", dir.display())
            }
            ResumeError::ConfigMismatch { expected, found } => write!(
                f,
                "journal belongs to a different configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            ResumeError::Malformed { what } => {
                write!(f, "malformed resume journal: bad {what}")
            }
            ResumeError::Unsupported { why } => write!(f, "cannot resume: {why}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<io::Error> for ResumeError {
    fn from(e: io::Error) -> Self {
        ResumeError::Io(e)
    }
}

impl From<SegmentError> for ResumeError {
    fn from(e: SegmentError) -> Self {
        ResumeError::Segment(e)
    }
}

/// FNV-1a, the same function the segment layer checksums with; used here to
/// fingerprint configurations.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprints every configuration knob that changes the search space or
/// the on-disk key representation. A journal only resumes under a
/// fingerprint-identical configuration; budgets, limits, and observability
/// knobs are deliberately excluded (resuming under a different memory
/// budget is fine and useful).
pub(crate) fn config_fingerprint(cfg: &SynthesisConfig) -> u64 {
    let m = &cfg.machine;
    let desc = format!(
        "n={} scratch={} mode={:?} strategy={:?} key={:?} cut={:?} \
         opt_first={} dead_write={} value_flow={} budget_viab={} all={} max_len={:?}",
        m.n(),
        m.scratch(),
        m.mode(),
        cfg.strategy,
        cfg.key_width,
        cfg.cut,
        cfg.optimal_instrs_only,
        cfg.dead_write_cut,
        cfg.value_flow_cut,
        cfg.budget_viability,
        cfg.all_solutions,
        cfg.max_len,
    );
    fnv1a(desc.as_bytes())
}

/// A spill directory for a run that set no explicit
/// [`crate::SynthesisConfig::spill_dir`]: unique per process and per tier.
pub(crate) fn default_spill_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sortsynth-spill-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A segment file referenced by the journal: name (inside the spill
/// directory) plus the byte length that was fully flushed when the
/// reference was recorded — the strict reader's trust boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegRef {
    pub name: String,
    pub valid_len: u64,
}

/// The spill tier owned by one sequential layered engine.
pub(crate) struct SpillTier {
    dir: PathBuf,
    budget: u64,
    /// Writer for the frontier segment of the layer currently being
    /// generated (`g + 1` while layer `g` expands). Created lazily on the
    /// first spilled span of the layer.
    writer: Option<SegmentWriter>,
    writer_layer: u32,
    /// Sealed frontier segment holding the spilled spans of the layer now
    /// being expanded.
    cur: Option<SegRef>,
    /// Streaming reader over `cur`, opened lazily at the first fetch.
    reader: Option<SegmentReader>,
    read_buf: Vec<MachineState>,
    /// Consumed segment files awaiting deletion. A segment may only be
    /// removed once a journal checkpoint that no longer references it has
    /// been durably renamed into place — deleting earlier opens a crash
    /// window where the last durable checkpoint points at a missing file.
    pending_delete: Vec<String>,
    /// Stored-width keys of every state first interned in the current
    /// layer, for the end-of-layer DDD merge-join.
    layer_keys: Vec<(u128, u32)>,
    closed_segs: Vec<SegRef>,
    pub spilled_open: u64,
    pub spilled_closed: u64,
    pub ddd_dedup_hits: u64,
    pub spilled_bytes: u64,
    pub segments_created: u64,
    write_hist: Arc<Histogram>,
    read_hist: Arc<Histogram>,
}

impl SpillTier {
    pub fn new(dir: PathBuf, budget: u64) -> io::Result<SpillTier> {
        fs::create_dir_all(&dir)?;
        Ok(SpillTier {
            dir,
            budget,
            writer: None,
            writer_layer: 0,
            cur: None,
            reader: None,
            read_buf: Vec::new(),
            pending_delete: Vec::new(),
            layer_keys: Vec::new(),
            closed_segs: Vec::new(),
            spilled_open: 0,
            spilled_closed: 0,
            ddd_dedup_hits: 0,
            spilled_bytes: 0,
            segments_created: 0,
            write_hist: names::search_spill_write_seconds(),
            read_hist: names::search_spill_read_seconds(),
        })
    }

    /// Rebuilds the tier a resumed engine left behind: segment references
    /// and counters come from the verified journal.
    pub fn resumed(dir: PathBuf, budget: u64, journal: &Journal) -> io::Result<SpillTier> {
        let mut tier = SpillTier::new(dir, budget)?;
        tier.cur = journal.frontier_seg.clone();
        tier.closed_segs = journal.closed_segs.clone();
        tier.spilled_open = journal.spilled_open;
        tier.spilled_closed = journal.spilled_closed;
        tier.ddd_dedup_hits = journal.ddd_dedup_hits;
        tier.spilled_bytes = journal.spilled_bytes;
        tier.segments_created = journal.spill_segments;
        Ok(tier)
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Records a fresh intern (resident or spilled) for the end-of-layer
    /// DDD pass. `stored_key` is the arena's stored-width key
    /// ([`crate::intern::StateArena::stored_key`]).
    pub fn note_fresh(&mut self, stored_key: u128, id: u32) {
        self.layer_keys.push((stored_key, id));
    }

    /// Appends state `id`'s assignment span to the frontier segment of
    /// `layer`. Append order matches intern order (dense increasing ids),
    /// which is what the streaming fetch relies on.
    pub fn spill_span(&mut self, layer: u32, id: u32, assigns: &[MachineState]) {
        let t0 = Instant::now();
        if self.writer.is_none() || self.writer_layer != layer {
            let name = format!("frontier-{layer}.seg");
            let writer = SegmentWriter::create(self.dir.join(&name), FRONTIER_MAGIC, SPILL_VERSION)
                .unwrap_or_else(|e| panic!("spill tier cannot create {name}: {e}"));
            self.writer = Some(writer);
            self.writer_layer = layer;
            self.segments_created += 1;
        }
        let writer = self.writer.as_mut().unwrap();
        let mut payload = Vec::with_capacity(8 + assigns.len() * 8);
        put_u32(&mut payload, id);
        put_u32(&mut payload, assigns.len() as u32);
        for a in assigns {
            put_u64(&mut payload, a.bits());
        }
        let before = writer.bytes();
        writer
            .append(&payload)
            .unwrap_or_else(|e| panic!("spill tier frontier append failed: {e}"));
        self.spilled_bytes += writer.bytes() - before;
        self.spilled_open += 1;
        self.write_hist.observe(t0.elapsed().as_secs_f64());
    }

    /// End-of-layer: the consumed frontier segment is dead (its layer is
    /// fully expanded) and the one under construction becomes next layer's
    /// read target. The dead segment's file is *not* deleted here: the
    /// last durable journal still references it, so it is queued and only
    /// removed after the next checkpoint rename ([`Self::write_journal`]).
    pub fn seal_frontier(&mut self) {
        self.reader = None;
        if let Some(old) = self.cur.take() {
            self.pending_delete.push(old.name);
        }
        if let Some(writer) = self.writer.take() {
            let name = writer
                .path()
                .file_name()
                .expect("segment path has a file name")
                .to_string_lossy()
                .into_owned();
            self.cur = Some(SegRef {
                name,
                valid_len: writer.bytes(),
            });
        }
    }

    /// Streams the spilled span of frontier state `id` back from the
    /// current frontier segment. Callers fetch in increasing id order (the
    /// frontier's order), so the read is one sequential pass per layer;
    /// records whose state was deleted by DDD are skipped in stride.
    pub fn fetch_span(&mut self, id: u32) -> &[MachineState] {
        let t0 = Instant::now();
        if self.reader.is_none() {
            let seg = self
                .cur
                .as_ref()
                .expect("fetch_span without a sealed frontier segment");
            let reader = SegmentReader::open_strict(
                self.dir.join(&seg.name),
                FRONTIER_MAGIC,
                SPILL_VERSION,
                seg.valid_len,
            )
            .unwrap_or_else(|e| panic!("spill tier cannot reopen frontier segment: {e}"));
            self.reader = Some(reader);
        }
        let reader = self.reader.as_mut().unwrap();
        loop {
            let payload = reader
                .next()
                .unwrap_or_else(|e| panic!("spill tier frontier read failed: {e}"))
                .unwrap_or_else(|| panic!("spilled span of state {id} missing from segment"));
            let mut r = ByteReader::new(&payload);
            let rid = r.u32().expect("frontier record id");
            let len = r.u32().expect("frontier record length") as usize;
            if rid != id {
                assert!(
                    rid < id,
                    "frontier segment out of order: saw {rid} while looking for {id}"
                );
                continue;
            }
            self.read_buf.clear();
            self.read_buf.reserve(len);
            for _ in 0..len {
                self.read_buf.push(MachineState::from_bits(
                    r.u64().expect("frontier record bits"),
                ));
            }
            self.read_hist.observe(t0.elapsed().as_secs_f64());
            return &self.read_buf;
        }
    }

    /// Delayed duplicate detection over the layer's fresh interns: sorted
    /// merge-join of this layer's keys against every closed segment.
    /// Returns the sorted, deduplicated ids that duplicate an evicted
    /// older-layer state — the engine deletes them from the next frontier.
    pub fn ddd_filter(&mut self) -> Vec<u32> {
        let mut keys = std::mem::take(&mut self.layer_keys);
        if keys.is_empty() || self.closed_segs.is_empty() {
            return Vec::new();
        }
        keys.sort_unstable_by_key(|&(k, _)| k);
        let mut dead: Vec<u32> = Vec::new();
        for seg in &self.closed_segs {
            let t0 = Instant::now();
            let mut reader = SegmentReader::open_strict(
                self.dir.join(&seg.name),
                CLOSED_MAGIC,
                SPILL_VERSION,
                seg.valid_len,
            )
            .unwrap_or_else(|e| panic!("spill tier cannot reopen closed segment: {e}"));
            let mut i = 0usize;
            'seg: while let Some(payload) = reader
                .next()
                .unwrap_or_else(|e| panic!("spill tier closed read failed: {e}"))
            {
                let mut r = ByteReader::new(&payload);
                let count = r.u32().expect("closed record count");
                for _ in 0..count {
                    let key = r.u128().expect("closed record key");
                    let _evicted_id = r.u32().expect("closed record id");
                    while i < keys.len() && keys[i].0 < key {
                        i += 1;
                    }
                    if i >= keys.len() {
                        break 'seg;
                    }
                    while i < keys.len() && keys[i].0 == key {
                        dead.push(keys[i].1);
                        i += 1;
                    }
                }
            }
            self.read_hist.observe(t0.elapsed().as_secs_f64());
        }
        dead.sort_unstable();
        dead.dedup();
        self.ddd_dedup_hits += dead.len() as u64;
        dead
    }

    /// Persists evicted closed-map entries as the sorted segment
    /// `closed-{layer}.seg` (globally sorted across its chunked records).
    pub fn append_closed(&mut self, layer: u32, mut evicted: Vec<(u128, u32)>) {
        if evicted.is_empty() {
            return;
        }
        evicted.sort_unstable_by_key(|&(k, _)| k);
        let name = format!("closed-{layer}.seg");
        let t0 = Instant::now();
        let mut writer = SegmentWriter::create(self.dir.join(&name), CLOSED_MAGIC, SPILL_VERSION)
            .unwrap_or_else(|e| panic!("spill tier cannot create {name}: {e}"));
        for chunk in evicted.chunks(CLOSED_CHUNK) {
            let mut payload = Vec::with_capacity(4 + chunk.len() * 20);
            put_u32(&mut payload, chunk.len() as u32);
            for &(key, id) in chunk {
                put_u128(&mut payload, key);
                put_u32(&mut payload, id);
            }
            writer
                .append(&payload)
                .unwrap_or_else(|e| panic!("spill tier closed append failed: {e}"));
        }
        self.write_hist.observe(t0.elapsed().as_secs_f64());
        self.spilled_closed += evicted.len() as u64;
        self.spilled_bytes += writer.bytes();
        self.segments_created += 1;
        self.closed_segs.push(SegRef {
            name,
            valid_len: writer.bytes(),
        });
    }

    /// The current frontier segment reference, for the journal.
    pub fn frontier_seg(&self) -> Option<SegRef> {
        self.cur.clone()
    }

    /// The closed segment references, for the journal.
    pub fn closed_segs(&self) -> Vec<SegRef> {
        self.closed_segs.clone()
    }

    /// Atomically replaces the journal checkpoint, then deletes consumed
    /// segments the new checkpoint no longer references — in that order,
    /// so a kill at any point leaves the durable journal with every file
    /// it names still on disk.
    pub fn write_journal(&mut self, journal: &Journal) {
        let payload = journal.encode();
        segment::write_atomic(
            &self.dir.join(JOURNAL_NAME),
            JOURNAL_MAGIC,
            SPILL_VERSION,
            &payload,
        )
        .unwrap_or_else(|e| panic!("spill tier journal checkpoint failed: {e}"));
        for name in self.pending_delete.drain(..) {
            let _ = fs::remove_file(self.dir.join(name));
        }
    }

    /// Removes the spill directory (end of a completed run that used a
    /// default temp directory).
    pub fn cleanup(&self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A parent edge as persisted in the journal (mirror of the engine's
/// private `Node`).
#[derive(Debug, Clone)]
pub(crate) struct JournalNode {
    pub parent: u32,
    pub instr: u16,
    pub len: u16,
    pub more: Vec<(u32, u16)>,
}

/// Per-state metadata as persisted in the journal (mirror of
/// `StateMeta` minus the span offset, which the frontier section carries).
#[derive(Debug, Clone, Copy)]
pub(crate) struct JournalMeta {
    pub len: u32,
    pub perm: u32,
    pub max_dist: u16,
    pub goal: bool,
}

/// One layer-boundary checkpoint: everything needed to re-run the layer it
/// names. Written via [`SpillTier::write_journal`] (atomic tmp + rename),
/// decoded by [`load_journal`].
#[derive(Debug, Clone)]
pub(crate) struct Journal {
    pub fingerprint: u64,
    /// The layer about to be expanded.
    pub g: u32,
    pub bound: u32,
    pub budget: u64,
    pub min_perm: Vec<u32>,
    pub goals: Vec<u32>,
    // Search counters at the checkpoint (layers < g fully counted).
    pub expanded: u64,
    pub generated: u64,
    pub dedup_hits: u64,
    pub viability_pruned: u64,
    pub cut_pruned: u64,
    pub dead_write_pruned: u64,
    pub value_flow_pruned: u64,
    pub states_kept: u64,
    pub scratch_reused: u64,
    pub swar_batches: u64,
    pub spilled_open: u64,
    pub spilled_closed: u64,
    pub ddd_dedup_hits: u64,
    pub spilled_bytes: u64,
    pub spill_segments: u64,
    pub nodes: Vec<JournalNode>,
    pub metas: Vec<JournalMeta>,
    /// Resident closed-map entries, stored-width keys.
    pub closed: Vec<(u128, u32)>,
    /// The frontier of layer `g`, in expansion (id) order.
    pub frontier: Vec<u32>,
    /// Resident frontier spans (spilled ones live in `frontier_seg`).
    pub spans: Vec<(u32, Vec<MachineState>)>,
    pub frontier_seg: Option<SegRef>,
    pub closed_segs: Vec<SegRef>,
}

impl Journal {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.nodes.len() * 24);
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, self.g);
        put_u32(&mut out, self.bound);
        put_u64(&mut out, self.budget);
        put_u32(&mut out, self.min_perm.len() as u32);
        for &p in &self.min_perm {
            put_u32(&mut out, p);
        }
        put_u32(&mut out, self.goals.len() as u32);
        for &g in &self.goals {
            put_u32(&mut out, g);
        }
        for c in [
            self.expanded,
            self.generated,
            self.dedup_hits,
            self.viability_pruned,
            self.cut_pruned,
            self.dead_write_pruned,
            self.value_flow_pruned,
            self.states_kept,
            self.scratch_reused,
            self.swar_batches,
            self.spilled_open,
            self.spilled_closed,
            self.ddd_dedup_hits,
            self.spilled_bytes,
            self.spill_segments,
        ] {
            put_u64(&mut out, c);
        }
        put_u32(&mut out, self.nodes.len() as u32);
        for n in &self.nodes {
            put_u32(&mut out, n.parent);
            put_u16(&mut out, n.instr);
            put_u16(&mut out, n.len);
            put_u32(&mut out, n.more.len() as u32);
            for &(p, ai) in &n.more {
                put_u32(&mut out, p);
                put_u16(&mut out, ai);
            }
        }
        put_u32(&mut out, self.metas.len() as u32);
        for m in &self.metas {
            put_u32(&mut out, m.len);
            put_u32(&mut out, m.perm);
            put_u16(&mut out, m.max_dist);
            out.push(m.goal as u8);
        }
        put_u32(&mut out, self.closed.len() as u32);
        for &(key, id) in &self.closed {
            put_u128(&mut out, key);
            put_u32(&mut out, id);
        }
        put_u32(&mut out, self.frontier.len() as u32);
        for &id in &self.frontier {
            put_u32(&mut out, id);
        }
        put_u32(&mut out, self.spans.len() as u32);
        for (id, span) in &self.spans {
            put_u32(&mut out, *id);
            put_u32(&mut out, span.len() as u32);
            for a in span {
                put_u64(&mut out, a.bits());
            }
        }
        put_seg_ref_opt(&mut out, self.frontier_seg.as_ref());
        put_u32(&mut out, self.closed_segs.len() as u32);
        for seg in &self.closed_segs {
            put_seg_ref(&mut out, seg);
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Journal, ResumeError> {
        let bad = |what| ResumeError::Malformed { what };
        let mut r = ByteReader::new(payload);
        let fingerprint = r.u64().ok_or(bad("header"))?;
        let g = r.u32().ok_or(bad("header"))?;
        let bound = r.u32().ok_or(bad("header"))?;
        let budget = r.u64().ok_or(bad("header"))?;
        let min_perm = r.vec_u32().ok_or(bad("min_perm"))?;
        let goals = r.vec_u32().ok_or(bad("goals"))?;
        let mut counters = [0u64; 15];
        for c in &mut counters {
            *c = r.u64().ok_or(bad("counters"))?;
        }
        let node_count = r.u32().ok_or(bad("nodes"))? as usize;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let parent = r.u32().ok_or(bad("nodes"))?;
            let instr = r.u16().ok_or(bad("nodes"))?;
            let len = r.u16().ok_or(bad("nodes"))?;
            let extra = r.u32().ok_or(bad("nodes"))? as usize;
            let mut more = Vec::with_capacity(extra);
            for _ in 0..extra {
                more.push((r.u32().ok_or(bad("nodes"))?, r.u16().ok_or(bad("nodes"))?));
            }
            nodes.push(JournalNode {
                parent,
                instr,
                len,
                more,
            });
        }
        let meta_count = r.u32().ok_or(bad("metas"))? as usize;
        let mut metas = Vec::with_capacity(meta_count);
        for _ in 0..meta_count {
            metas.push(JournalMeta {
                len: r.u32().ok_or(bad("metas"))?,
                perm: r.u32().ok_or(bad("metas"))?,
                max_dist: r.u16().ok_or(bad("metas"))?,
                goal: r.u8().ok_or(bad("metas"))? != 0,
            });
        }
        let closed_count = r.u32().ok_or(bad("closed"))? as usize;
        let mut closed = Vec::with_capacity(closed_count);
        for _ in 0..closed_count {
            closed.push((
                r.u128().ok_or(bad("closed"))?,
                r.u32().ok_or(bad("closed"))?,
            ));
        }
        let frontier = r.vec_u32().ok_or(bad("frontier"))?;
        let span_count = r.u32().ok_or(bad("spans"))? as usize;
        let mut spans = Vec::with_capacity(span_count);
        for _ in 0..span_count {
            let id = r.u32().ok_or(bad("spans"))?;
            let len = r.u32().ok_or(bad("spans"))? as usize;
            let mut span = Vec::with_capacity(len);
            for _ in 0..len {
                span.push(MachineState::from_bits(r.u64().ok_or(bad("spans"))?));
            }
            spans.push((id, span));
        }
        let frontier_seg = r.seg_ref_opt().ok_or(bad("frontier segment ref"))?;
        let seg_count = r.u32().ok_or(bad("closed segment refs"))? as usize;
        let mut closed_segs = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            closed_segs.push(r.seg_ref().ok_or(bad("closed segment refs"))?);
        }
        if !r.at_end() {
            return Err(bad("trailing bytes"));
        }
        Ok(Journal {
            fingerprint,
            g,
            bound,
            budget,
            min_perm,
            goals,
            expanded: counters[0],
            generated: counters[1],
            dedup_hits: counters[2],
            viability_pruned: counters[3],
            cut_pruned: counters[4],
            dead_write_pruned: counters[5],
            value_flow_pruned: counters[6],
            states_kept: counters[7],
            scratch_reused: counters[8],
            swar_batches: counters[9],
            spilled_open: counters[10],
            spilled_closed: counters[11],
            ddd_dedup_hits: counters[12],
            spilled_bytes: counters[13],
            spill_segments: counters[14],
            nodes,
            metas,
            closed,
            frontier,
            spans,
            frontier_seg,
            closed_segs,
        })
    }
}

/// Loads and fingerprint-checks the journal in `dir`.
pub(crate) fn load_journal(dir: &Path, expected: u64) -> Result<Journal, ResumeError> {
    let path = dir.join(JOURNAL_NAME);
    if !path.exists() {
        return Err(ResumeError::MissingJournal {
            dir: dir.to_path_buf(),
        });
    }
    let payload = segment::read_atomic(&path, JOURNAL_MAGIC, SPILL_VERSION)?;
    let journal = Journal::decode(&payload)?;
    if journal.fingerprint != expected {
        return Err(ResumeError::ConfigMismatch {
            expected,
            found: journal.fingerprint,
        });
    }
    Ok(journal)
}

/// Strictly verifies every segment the journal references, end to end,
/// before any of it is trusted: each record inside the recorded valid
/// length must parse and checksum. A torn tail *within* the valid length —
/// i.e. bytes the journal claims were durable — is an error; bytes past the
/// valid length (a torn in-progress segment from the crashed run) are
/// ignored by construction of the strict reader.
pub(crate) fn verify_segments(dir: &Path, journal: &Journal) -> Result<(), ResumeError> {
    if let Some(seg) = &journal.frontier_seg {
        drain_strict(dir, seg, FRONTIER_MAGIC)?;
    }
    for seg in &journal.closed_segs {
        drain_strict(dir, seg, CLOSED_MAGIC)?;
    }
    Ok(())
}

fn drain_strict(dir: &Path, seg: &SegRef, magic: &[u8; 8]) -> Result<(), ResumeError> {
    let mut reader =
        SegmentReader::open_strict(dir.join(&seg.name), magic, SPILL_VERSION, seg.valid_len)?;
    while reader.next()?.is_some() {}
    Ok(())
}

// ---------------------------------------------------------------------
// Byte codec helpers
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_seg_ref(out: &mut Vec<u8>, seg: &SegRef) {
    put_u16(out, seg.name.len() as u16);
    out.extend_from_slice(seg.name.as_bytes());
    put_u64(out, seg.valid_len);
}

fn put_seg_ref_opt(out: &mut Vec<u8>, seg: Option<&SegRef>) {
    match seg {
        None => out.push(0),
        Some(seg) => {
            out.push(1);
            put_seg_ref(out, seg);
        }
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().unwrap()))
    }

    fn vec_u32(&mut self) -> Option<Vec<u32>> {
        let len = self.u32()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Some(out)
    }

    fn seg_ref(&mut self) -> Option<SegRef> {
        let name_len = self.u16()? as usize;
        let name = String::from_utf8(self.take(name_len)?.to_vec()).ok()?;
        let valid_len = self.u64()?;
        Some(SegRef { name, valid_len })
    }

    fn seg_ref_opt(&mut self) -> Option<Option<SegRef>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.seg_ref()?)),
            _ => None,
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssspill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_round_trips() {
        let journal = Journal {
            fingerprint: 0xfeed,
            g: 3,
            bound: 20,
            budget: 1 << 28,
            min_perm: vec![24, 12, 6],
            goals: vec![],
            expanded: 100,
            generated: 900,
            dedup_hits: 50,
            viability_pruned: 10,
            cut_pruned: 4,
            dead_write_pruned: 3,
            value_flow_pruned: 2,
            states_kept: 101,
            scratch_reused: 99,
            swar_batches: 88,
            spilled_open: 7,
            spilled_closed: 11,
            ddd_dedup_hits: 5,
            spilled_bytes: 4096,
            spill_segments: 2,
            nodes: vec![
                JournalNode {
                    parent: u32::MAX,
                    instr: 0,
                    len: 0,
                    more: vec![],
                },
                JournalNode {
                    parent: 0,
                    instr: 9,
                    len: 1,
                    more: vec![(0, 4)],
                },
            ],
            metas: vec![
                JournalMeta {
                    len: 6,
                    perm: 6,
                    max_dist: 4,
                    goal: false,
                },
                JournalMeta {
                    len: 5,
                    perm: 4,
                    max_dist: 3,
                    goal: true,
                },
            ],
            closed: vec![(42, 0), (77, 1)],
            frontier: vec![1],
            spans: vec![(1, vec![MachineState::from_values(&[1, 2])])],
            frontier_seg: Some(SegRef {
                name: "frontier-4.seg".into(),
                valid_len: 1234,
            }),
            closed_segs: vec![SegRef {
                name: "closed-3.seg".into(),
                valid_len: 99,
            }],
        };
        let decoded = Journal::decode(&journal.encode()).unwrap();
        assert_eq!(decoded.fingerprint, journal.fingerprint);
        assert_eq!(decoded.g, 3);
        assert_eq!(decoded.bound, 20);
        assert_eq!(decoded.min_perm, journal.min_perm);
        assert_eq!(decoded.nodes.len(), 2);
        assert_eq!(decoded.nodes[1].more, vec![(0, 4)]);
        assert_eq!(decoded.metas[1].perm, 4);
        assert!(decoded.metas[1].goal);
        assert_eq!(decoded.closed, journal.closed);
        assert_eq!(decoded.frontier, vec![1]);
        assert_eq!(decoded.spans, journal.spans);
        assert_eq!(decoded.frontier_seg, journal.frontier_seg);
        assert_eq!(decoded.closed_segs, journal.closed_segs);
        assert_eq!(decoded.swar_batches, 88);
        assert_eq!(decoded.spilled_bytes, 4096);
    }

    #[test]
    fn truncated_journal_is_malformed() {
        let journal = Journal {
            fingerprint: 1,
            g: 0,
            bound: 0,
            budget: 0,
            min_perm: vec![],
            goals: vec![],
            expanded: 0,
            generated: 0,
            dedup_hits: 0,
            viability_pruned: 0,
            cut_pruned: 0,
            dead_write_pruned: 0,
            value_flow_pruned: 0,
            states_kept: 0,
            scratch_reused: 0,
            swar_batches: 0,
            spilled_open: 0,
            spilled_closed: 0,
            ddd_dedup_hits: 0,
            spilled_bytes: 0,
            spill_segments: 0,
            nodes: vec![],
            metas: vec![],
            closed: vec![],
            frontier: vec![],
            spans: vec![],
            frontier_seg: None,
            closed_segs: vec![],
        };
        let bytes = journal.encode();
        assert!(Journal::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(Journal::decode(&bytes).is_ok());
    }

    #[test]
    fn spill_round_trip_and_ddd() {
        let dir = tmp("tier");
        let mut tier = SpillTier::new(dir.clone(), 0).unwrap();
        let a = [
            MachineState::from_values(&[1, 2, 3]),
            MachineState::from_values(&[3, 2, 1]),
        ];
        let b = [MachineState::from_values(&[2, 1, 3])];
        tier.spill_span(1, 5, &a);
        tier.spill_span(1, 7, &b);
        tier.note_fresh(100, 5);
        tier.note_fresh(200, 7);
        tier.seal_frontier();
        assert_eq!(tier.spilled_open, 2);
        // DDD against a closed segment holding key 200 kills id 7.
        tier.append_closed(0, vec![(200, 2), (150, 1)]);
        let dead = tier.ddd_filter();
        assert_eq!(dead, vec![7]);
        assert_eq!(tier.ddd_dedup_hits, 1);
        // Streamed fetch skips the dead record in stride.
        assert_eq!(tier.fetch_span(5), &a[..]);
        // Journal round trip through the tier.
        let journal = Journal {
            fingerprint: 9,
            g: 1,
            bound: 11,
            budget: 0,
            min_perm: vec![],
            goals: vec![],
            expanded: 0,
            generated: 0,
            dedup_hits: 0,
            viability_pruned: 0,
            cut_pruned: 0,
            dead_write_pruned: 0,
            value_flow_pruned: 0,
            states_kept: 0,
            scratch_reused: 0,
            swar_batches: 0,
            spilled_open: tier.spilled_open,
            spilled_closed: tier.spilled_closed,
            ddd_dedup_hits: tier.ddd_dedup_hits,
            spilled_bytes: tier.spilled_bytes,
            spill_segments: tier.segments_created,
            nodes: vec![],
            metas: vec![],
            closed: vec![],
            frontier: vec![5],
            spans: vec![],
            frontier_seg: tier.frontier_seg(),
            closed_segs: tier.closed_segs(),
        };
        tier.write_journal(&journal);
        let loaded = load_journal(&dir, 9).unwrap();
        assert_eq!(loaded.frontier, vec![5]);
        verify_segments(&dir, &loaded).unwrap();
        assert!(matches!(
            load_journal(&dir, 10),
            Err(ResumeError::ConfigMismatch { .. })
        ));
        // A torn byte inside a referenced segment is detected, not replayed.
        let seg = loaded.frontier_seg.clone().unwrap();
        let seg_path = dir.join(&seg.name);
        let mut bytes = fs::read(&seg_path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&seg_path, &bytes).unwrap();
        let err = verify_segments(&dir, &loaded).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        tier.cleanup();
    }

    #[test]
    fn consumed_segment_outlives_the_checkpoint_that_drops_it() {
        // A consumed frontier segment may only be deleted after the next
        // journal rename: a SIGKILL between seal and rename must leave the
        // durable journal with every file it references still on disk.
        let dir = tmp("gc");
        let mut tier = SpillTier::new(dir.clone(), 0).unwrap();
        tier.spill_span(1, 0, &[MachineState::from_values(&[1, 2])]);
        tier.seal_frontier(); // layer-1 segment becomes the read target
        let first = dir.join("frontier-1.seg");
        tier.spill_span(2, 1, &[MachineState::from_values(&[2, 1])]);
        tier.seal_frontier(); // layer 1 consumed — must NOT delete yet
        assert!(
            first.exists(),
            "consumed segment deleted before the checkpoint rename"
        );
        let journal = Journal {
            fingerprint: 9,
            g: 2,
            bound: 11,
            budget: 0,
            min_perm: vec![],
            goals: vec![],
            expanded: 0,
            generated: 0,
            dedup_hits: 0,
            viability_pruned: 0,
            cut_pruned: 0,
            dead_write_pruned: 0,
            value_flow_pruned: 0,
            states_kept: 0,
            scratch_reused: 0,
            swar_batches: 0,
            spilled_open: tier.spilled_open,
            spilled_closed: tier.spilled_closed,
            ddd_dedup_hits: tier.ddd_dedup_hits,
            spilled_bytes: tier.spilled_bytes,
            spill_segments: tier.segments_created,
            nodes: vec![],
            metas: vec![],
            closed: vec![],
            frontier: vec![1],
            spans: vec![],
            frontier_seg: tier.frontier_seg(),
            closed_segs: tier.closed_segs(),
        };
        tier.write_journal(&journal);
        assert!(
            !first.exists(),
            "checkpoint rename must gc consumed segments"
        );
        let loaded = load_journal(&dir, 9).unwrap();
        verify_segments(&dir, &loaded).unwrap();
        tier.cleanup();
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let a = SynthesisConfig::new(Machine::new(3, 1, IsaMode::Cmov));
        let b = SynthesisConfig::new(Machine::new(4, 1, IsaMode::Cmov));
        let c = SynthesisConfig::new(Machine::new(3, 1, IsaMode::Cmov))
            .key_width(crate::config::KeyWidth::U128);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        // Budgets and limits are excluded on purpose.
        let d = SynthesisConfig::new(Machine::new(3, 1, IsaMode::Cmov)).mem_budget_bytes(1 << 20);
        assert_eq!(config_fingerprint(&a), config_fingerprint(&d));
    }
}
