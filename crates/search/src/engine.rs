//! The enumerative synthesis engine: layered (Dijkstra) and A* search with
//! deduplication, viability checks, and cuts (§3 of the paper).

use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use sortsynth_isa::{Instr, Op, Program};

use sortsynth_obs::{names, FieldValue, Level};

use crate::config::{Strategy, SynthesisConfig};
use crate::distance::{DistanceTable, UNSORTABLE};
use crate::heuristics::heuristic_value;
use crate::progress::SearchProgress;
use crate::state::StateSet;

/// Default progress-emission throttle (expansions between snapshots) when
/// [`SynthesisConfig::progress_every`] is 0.
const DEFAULT_PROGRESS_EVERY: u64 = 4096;

/// How a synthesis run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A solution was found (first-solution mode).
    Solved,
    /// Every minimal-length solution reachable under the configuration was
    /// collected (all-solutions mode).
    SolvedAll,
    /// The reachable space within `max_len` was exhausted without finding a
    /// solution. Under an optimality-preserving configuration
    /// ([`SynthesisConfig::guarantees_minimal`]) this *proves* that no
    /// program of length ≤ `max_len` exists.
    Exhausted,
    /// The state budget ([`SynthesisConfig::node_limit`]) was hit.
    NodeLimit,
    /// The wall-clock budget ([`SynthesisConfig::time_limit`] or the
    /// [`crate::SearchBudget`] deadline) was hit.
    TimeLimit,
    /// The run's [`crate::SearchBudget`] was cancelled from another thread.
    Cancelled,
}

/// One sample of search progress, for regenerating the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Seconds since the search started.
    pub elapsed_secs: f64,
    /// Open (not yet expanded) states at the time of the sample.
    pub open_states: u64,
    /// Goal states found so far.
    pub solutions: u64,
}

/// Counters and timings for one synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States produced by applying an instruction (before any pruning).
    pub generated: u64,
    /// States whose successors were explored.
    pub expanded: u64,
    /// Successors dropped because an equivalent state was already known
    /// (§3.6).
    pub dedup_hits: u64,
    /// Successors dropped by the viability checks (§3.3).
    pub viability_pruned: u64,
    /// Successors dropped by the cut (§3.5).
    pub cut_pruned: u64,
    /// Successors skipped by the liveness-based dead-write cut
    /// ([`SynthesisConfig::dead_write_cut`]): the appended instruction would
    /// have made the parent edge's instruction dead.
    pub dead_write_pruned: u64,
    /// Unique states kept (nodes in the solution DAG).
    pub states_kept: u64,
    /// The configuration asked for the distance table, but the machine has
    /// too many actions for [`DistanceTable::supports`]: the search ran with
    /// degraded pruning (no viability budget, no optimal-first-instruction
    /// restriction, no `MaxRemaining` heuristic).
    pub distance_table_skipped: bool,
    /// Time spent building the per-assignment distance table.
    pub distance_build: Duration,
    /// Total wall-clock time of the search (excluding table build).
    pub search_time: Duration,
    /// Progress samples (empty unless `progress_every > 0`).
    pub progress: Vec<ProgressSample>,
}

/// A node of the solution DAG: a unique canonical state, with every
/// minimal-length (parent, instruction) edge that produced it.
#[derive(Debug, Clone)]
struct Node {
    /// Primary parent (`u32::MAX` for the root).
    parent: u32,
    /// Action index on the primary parent edge.
    instr: u8,
    /// Additional same-length parents (populated in all-solutions mode).
    more_parents: Vec<(u32, u8)>,
    /// Program length at which this state is reached.
    len: u16,
}

const NO_PARENT: u32 = u32::MAX;

/// The deduplicated search DAG with its goal nodes; every root-to-goal path
/// is a distinct minimal-length sorting kernel.
#[derive(Debug, Clone)]
pub struct SolutionDag {
    nodes: Vec<Node>,
    goals: Vec<u32>,
    actions: Vec<Instr>,
}

impl SolutionDag {
    /// The action list that edge indices refer to.
    pub fn actions(&self) -> &[Instr] {
        &self.actions
    }

    /// Number of goal *states* (distinct final register-assignment sets).
    pub fn goal_states(&self) -> usize {
        self.goals.len()
    }

    /// Total number of distinct solution programs: root-to-goal paths.
    ///
    /// Computed by dynamic programming over the DAG, so it is exact even
    /// when the count (2 233 360 for n = 4 in the paper) is far too large to
    /// enumerate.
    pub fn count_solutions(&self) -> u64 {
        if self.goals.is_empty() {
            return 0;
        }
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.nodes[i as usize].len);
        let mut count = vec![0u64; self.nodes.len()];
        for &i in &order {
            let node = &self.nodes[i as usize];
            if node.parent == NO_PARENT {
                count[i as usize] = 1;
                continue;
            }
            let mut c = count[node.parent as usize];
            for &(p, _) in &node.more_parents {
                c = c.saturating_add(count[p as usize]);
            }
            count[i as usize] = c;
        }
        self.goals
            .iter()
            .fold(0u64, |acc, &g| acc.saturating_add(count[g as usize]))
    }

    /// Extracts up to `limit` distinct solution programs.
    pub fn programs(&self, limit: usize) -> Vec<Program> {
        let mut out = Vec::new();
        for &goal in &self.goals {
            if out.len() >= limit {
                break;
            }
            let mut suffix = Vec::new();
            self.walk(goal, &mut suffix, limit, &mut out);
        }
        out
    }

    /// The first solution program, if any.
    pub fn first_program(&self) -> Option<Program> {
        self.programs(1).into_iter().next()
    }

    fn walk(&self, node_idx: u32, suffix: &mut Vec<Instr>, limit: usize, out: &mut Vec<Program>) {
        if out.len() >= limit {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        if node.parent == NO_PARENT {
            let mut prog: Program = suffix.clone();
            prog.reverse();
            out.push(prog);
            return;
        }
        let mut edges = vec![(node.parent, node.instr)];
        edges.extend_from_slice(&node.more_parents);
        for (parent, ai) in edges {
            if out.len() >= limit {
                return;
            }
            suffix.push(self.actions[ai as usize]);
            self.walk(parent, suffix, limit, out);
            suffix.pop();
        }
    }
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The deduplicated solution DAG.
    pub dag: SolutionDag,
    /// Length of the found solutions, if any.
    pub found_len: Option<u32>,
    /// Whether the configuration guarantees `found_len` is minimal.
    pub minimal_certified: bool,
    /// How the run ended.
    pub outcome: Outcome,
    /// Counters and timings.
    pub stats: SearchStats,
}

impl SynthesisResult {
    /// The first solution, if any.
    pub fn first_program(&self) -> Option<Program> {
        self.dag.first_program()
    }

    /// Total number of distinct solutions in the DAG.
    pub fn solution_count(&self) -> u64 {
        self.dag.count_solutions()
    }
}

/// Runs the enumerative synthesis described by `cfg`.
///
/// This is the main entry point of the crate; see [`SynthesisConfig`] for
/// the knobs and the crate docs for a guided example.
pub fn synthesize(cfg: &SynthesisConfig) -> SynthesisResult {
    Engine::new(cfg).run()
}

/// What became of one generated successor.
enum Gen {
    Goal(u32),
    Fresh(u32),
    Pruned,
}

/// A successor produced by expansion, before dedup/bookkeeping. In parallel
/// layered mode these are produced by worker threads and merged serially.
struct Candidate {
    parent: u32,
    ai: u8,
    succ: StateSet,
    perm: u32,
    goal: bool,
}

struct Engine<'a> {
    cfg: &'a SynthesisConfig,
    actions: Vec<Instr>,
    table: Option<DistanceTable>,
    nodes: Vec<Node>,
    visited: HashMap<u128, u32>,
    /// Minimum permutation count seen among kept states of each length.
    min_perm: Vec<u32>,
    goals: Vec<u32>,
    /// Inclusive length bound (dynamic: shrinks when solutions are found in
    /// all-solutions mode).
    bound: u32,
    stats: SearchStats,
    start: Instant,
    deadline: Option<Instant>,
    /// Fresh states queued by [`Engine::merge`] for the caller to pick up:
    /// the next layer in layered mode, heap pushes in A* mode.
    pending_frontier: Vec<(StateSet, u32, u32)>,
    /// Current frontier bound for progress snapshots: the layer depth in
    /// layered mode, the last popped `f` in A* mode.
    current_f: Option<u64>,
    /// Expansion count at the last delivered progress snapshot.
    last_progress_expanded: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SynthesisConfig) -> Self {
        let mut stats = SearchStats::default();
        // Machines with many scratch registers overflow the table's action
        // bitset; they search without the distance-based aids instead of
        // panicking.
        let table = if cfg.needs_distance_table() && DistanceTable::supports(&cfg.machine) {
            let t0 = Instant::now();
            let table = DistanceTable::build(&cfg.machine, cfg.optimal_instrs_only);
            stats.distance_build = t0.elapsed();
            Some(table)
        } else {
            // Record the degraded-pruning fallback instead of silently
            // searching without the distance-based aids.
            stats.distance_table_skipped =
                cfg.needs_distance_table() && !DistanceTable::supports(&cfg.machine);
            None
        };
        let start = Instant::now();
        // Effective deadline: the earlier of the relative time limit and the
        // budget's absolute deadline.
        let deadline = match (cfg.time_limit.map(|d| start + d), cfg.budget.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Engine {
            actions: cfg.machine.actions(),
            table,
            nodes: Vec::new(),
            visited: HashMap::new(),
            min_perm: Vec::new(),
            goals: Vec::new(),
            bound: cfg.max_len.unwrap_or(u32::MAX),
            stats,
            start,
            deadline,
            pending_frontier: Vec::new(),
            current_f: None,
            last_progress_expanded: 0,
            cfg,
        }
    }

    fn run(mut self) -> SynthesisResult {
        let init = StateSet::initial(&self.cfg.machine);
        let init_perm = init.perm_count(&self.cfg.machine);
        self.nodes.push(Node {
            parent: NO_PARENT,
            instr: 0,
            more_parents: Vec::new(),
            len: 0,
        });
        self.visited.insert(init.key(), 0);
        self.note_min_perm(0, init_perm);
        self.stats.states_kept = 1;

        let outcome = if init.is_goal(&self.cfg.machine) {
            self.goals.push(0);
            Outcome::Solved
        } else {
            match self.cfg.strategy {
                Strategy::Layered { threads } => self.run_layered(init, init_perm, threads),
                Strategy::AStar { .. } => self.run_astar(init, init_perm),
            }
        };

        self.stats.search_time = self.start.elapsed();
        // Every run — solved, exhausted, limited, or cancelled — flushes one
        // final snapshot (so consumers always see the closing counters) and
        // publishes its totals to the process-wide metrics registry.
        self.emit_progress(self.pending_frontier.len() as u64, Some(outcome));
        self.publish_metrics(outcome);
        let found_len = self
            .goals
            .first()
            .map(|&g| self.nodes[g as usize].len as u32);
        SynthesisResult {
            minimal_certified: found_len.is_some() && self.cfg.guarantees_minimal(),
            dag: SolutionDag {
                nodes: self.nodes,
                goals: self.goals,
                actions: self.actions,
            },
            found_len,
            outcome,
            stats: self.stats,
        }
    }

    // ------------------------------------------------------------------
    // Layered (Dijkstra) search: process all programs of length g before
    // any of length g + 1 (§3.1). First solution is minimal.
    // ------------------------------------------------------------------
    fn run_layered(&mut self, init: StateSet, init_perm: u32, threads: usize) -> Outcome {
        let mut frontier: Vec<(StateSet, u32, u32)> = vec![(init, 0, init_perm)];
        let mut g = 0u32;
        loop {
            if g >= self.bound || frontier.is_empty() {
                return if self.goals.is_empty() {
                    Outcome::Exhausted
                } else {
                    Outcome::SolvedAll
                };
            }
            self.current_f = Some(g as u64);
            let cut_threshold = self.cut_threshold_for(g);
            if threads > 1 && frontier.len() >= 2 * threads {
                let candidates = self.expand_layer_parallel(&frontier, g, cut_threshold, threads);
                for cand in candidates {
                    match self.merge(cand, g + 1) {
                        // Layer order makes the first goal minimal-length.
                        Gen::Goal(_) if !self.cfg.all_solutions => return Outcome::Solved,
                        Gen::Goal(_) => self.bound = self.bound.min(g + 1),
                        Gen::Fresh(_) | Gen::Pruned => {}
                    }
                }
                self.tick_progress(self.pending_frontier.len() as u64);
            } else {
                // Serial: merge each state's successors immediately, so
                // goals (and progress samples) accumulate through the layer
                // instead of appearing all at once at its end.
                let mut candidates = Vec::new();
                for (state, node, _perm) in &frontier {
                    self.stats.expanded += 1;
                    self.expand_into(state, *node, g, cut_threshold, &mut candidates);
                    for cand in candidates.drain(..) {
                        match self.merge(cand, g + 1) {
                            Gen::Goal(_) if !self.cfg.all_solutions => return Outcome::Solved,
                            Gen::Goal(_) => self.bound = self.bound.min(g + 1),
                            Gen::Fresh(_) | Gen::Pruned => {}
                        }
                    }
                    self.sample_progress(self.pending_frontier.len() as u64);
                    if self.over_limits() {
                        return self.limit_outcome();
                    }
                }
            }
            let next = std::mem::take(&mut self.pending_frontier);
            if self.over_limits() {
                return self.limit_outcome();
            }
            frontier = next;
            g += 1;
        }
    }

    fn expand_layer_parallel(
        &mut self,
        frontier: &[(StateSet, u32, u32)],
        g: u32,
        cut_threshold: Option<u32>,
        threads: usize,
    ) -> Vec<Candidate> {
        let chunk = frontier.len().div_ceil(threads);
        let results = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in frontier.chunks(chunk) {
                let eng = &*self;
                handles.push(scope.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut local = WorkerCounters::default();
                    for (state, node, _perm) in part {
                        eng.expand_worker(state, *node, g, cut_threshold, &mut out, &mut local);
                    }
                    (out, local)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("thread scope failed");

        let mut merged = Vec::new();
        for (cands, counters) in results {
            self.stats.expanded += counters.expanded;
            self.stats.generated += counters.generated;
            self.stats.viability_pruned += counters.viability_pruned;
            self.stats.cut_pruned += counters.cut_pruned;
            self.stats.dead_write_pruned += counters.dead_write_pruned;
            merged.extend(cands);
        }
        merged
    }

    // ------------------------------------------------------------------
    // A* / best-first search ordered by f = g + h (§3.1).
    // ------------------------------------------------------------------
    fn run_astar(&mut self, init: StateSet, init_perm: u32) -> Outcome {
        let heuristic = match self.cfg.strategy {
            Strategy::AStar { heuristic } => heuristic,
            Strategy::Layered { .. } => unreachable!("run_astar called for layered strategy"),
        };
        let mut heap: BinaryHeap<OpenEntry> = BinaryHeap::new();
        let h0 = heuristic_value(
            heuristic,
            &init,
            init_perm,
            &self.cfg.machine,
            self.table.as_ref(),
        );
        heap.push(OpenEntry {
            f: h0 as u64,
            g: 0,
            node: 0,
            state: init,
        });

        let mut candidates: Vec<Candidate> = Vec::new();
        while let Some(entry) = heap.pop() {
            self.current_f = Some(entry.f);
            // Goals are queued with f = g and accepted when *popped*, the
            // standard A* discipline: every open state that could lead to a
            // shorter kernel (f < g_goal) is expanded first.
            if entry.state.is_goal(&self.cfg.machine) {
                return Outcome::Solved;
            }
            if entry.g >= self.bound {
                continue;
            }
            // Skip stale entries: the state was re-reached at a shorter
            // length after this entry was pushed.
            if self.nodes[entry.node as usize].len as u32 != entry.g {
                continue;
            }
            self.stats.expanded += 1;
            let cut_threshold = self.cut_threshold_for(entry.g);
            candidates.clear();
            self.expand_into(
                &entry.state,
                entry.node,
                entry.g,
                cut_threshold,
                &mut candidates,
            );
            for cand in candidates.drain(..) {
                let perm = cand.perm;
                let goal_state = cand.goal.then(|| cand.succ.clone());
                match self.merge(cand, entry.g + 1) {
                    Gen::Goal(idx) => {
                        self.bound = self.bound.min(entry.g + 1);
                        if !self.cfg.all_solutions {
                            heap.push(OpenEntry {
                                f: (entry.g + 1) as u64,
                                g: entry.g + 1,
                                node: idx,
                                state: goal_state.expect("goal candidates carry their state"),
                            });
                        }
                    }
                    Gen::Fresh(idx) => {
                        let (state, _node, _perm) = self
                            .pending_frontier
                            .pop()
                            .expect("fresh node queued a frontier entry");
                        let h = heuristic_value(
                            heuristic,
                            &state,
                            perm,
                            &self.cfg.machine,
                            self.table.as_ref(),
                        );
                        heap.push(OpenEntry {
                            f: (entry.g + 1) as u64 + h as u64,
                            g: entry.g + 1,
                            node: idx,
                            state,
                        });
                    }
                    Gen::Pruned => {}
                }
            }
            if self.over_limits() {
                return self.limit_outcome();
            }
            self.sample_progress(heap.len() as u64);
        }
        if self.goals.is_empty() {
            Outcome::Exhausted
        } else {
            Outcome::SolvedAll
        }
    }

    // ------------------------------------------------------------------
    // Shared successor generation and bookkeeping
    // ------------------------------------------------------------------

    /// Expands `state` (serial path): applies every permitted action and
    /// collects surviving candidates.
    fn expand_into(
        &mut self,
        state: &StateSet,
        node: u32,
        g: u32,
        cut_threshold: Option<u32>,
        out: &mut Vec<Candidate>,
    ) {
        // `expanded` stays 0 here; it is counted by callers.
        let mut counters = WorkerCounters::default();
        self.expand_worker(state, node, g, cut_threshold, out, &mut counters);
        self.stats.generated += counters.generated;
        self.stats.viability_pruned += counters.viability_pruned;
        self.stats.cut_pruned += counters.cut_pruned;
        self.stats.dead_write_pruned += counters.dead_write_pruned;
    }

    /// The thread-safe part of expansion: instruction selection (§3.2),
    /// viability (§3.3), goal detection (§3.4), and the cut (§3.5).
    /// Deduplication (§3.6) happens later, in [`Engine::merge`].
    fn expand_worker(
        &self,
        state: &StateSet,
        node: u32,
        g: u32,
        cut_threshold: Option<u32>,
        out: &mut Vec<Candidate>,
        counters: &mut WorkerCounters,
    ) {
        counters.expanded += 1;
        let allowed = match &self.table {
            Some(table) if self.cfg.optimal_instrs_only => Some(table.optimal_first_moves(state)),
            _ => None,
        };
        // The instruction on the parent edge, for the dead-write cut: a
        // successor whose new instruction erases that instruction's effect
        // (cmp overwriting an unread cmp, mov killing an unread write)
        // equals a state already reachable one layer earlier.
        let prev_instr = if self.cfg.dead_write_cut {
            let n = &self.nodes[node as usize];
            (n.parent != NO_PARENT).then(|| self.actions[n.instr as usize])
        } else {
            None
        };
        let machine = &self.cfg.machine;
        for (ai, &instr) in self.actions.iter().enumerate() {
            if let Some(set) = &allowed {
                // `cmp` is always permitted: a shortest program for a single
                // concrete assignment never compares (the values are known,
                // so comparing wastes an instruction), which means the
                // per-assignment guide can by construction never propose a
                // `cmp` — yet every correct sorting kernel needs them.
                // Restrict only the register-writing instructions.
                if instr.op != sortsynth_isa::Op::Cmp && !set.contains(ai) {
                    continue;
                }
            }
            if let Some(prev) = prev_instr {
                let kills_prev = (prev.op == Op::Cmp && instr.op == Op::Cmp)
                    || (prev.op != Op::Cmp
                        && instr.op == Op::Mov
                        && instr.dst == prev.dst
                        && instr.src != prev.dst);
                if kills_prev {
                    counters.dead_write_pruned += 1;
                    continue;
                }
            }
            let succ = state.apply(instr);
            counters.generated += 1;

            // Viability (§3.3): erased values can never be sorted again; a
            // state whose worst per-assignment distance overshoots the
            // remaining budget cannot finish in time.
            if let Some(table) = &self.table {
                let d = table.max_dist(&succ);
                if d == UNSORTABLE {
                    counters.viability_pruned += 1;
                    continue;
                }
                if self.cfg.budget_viability
                    && self.bound != u32::MAX
                    && g + 1 + d as u32 > self.bound
                {
                    counters.viability_pruned += 1;
                    continue;
                }
            } else if succ.has_erased_value(machine) {
                counters.viability_pruned += 1;
                continue;
            }

            let goal = succ.is_goal(machine);
            let perm = succ.perm_count(machine);
            if !goal {
                if let Some(threshold) = cut_threshold {
                    if perm > threshold {
                        counters.cut_pruned += 1;
                        continue;
                    }
                }
            }
            out.push(Candidate {
                parent: node,
                ai: ai as u8,
                succ,
                perm,
                goal,
            });
        }
    }

    /// Deduplicates a surviving candidate (§3.6) and threads it into the
    /// node arena; fresh non-goal states are queued on the pending frontier
    /// for the caller to pick up.
    fn merge(&mut self, cand: Candidate, g_succ: u32) -> Gen {
        let key = cand.succ.key();
        if let Some(&existing) = self.visited.get(&key) {
            let existing_len = self.nodes[existing as usize].len as u32;
            if existing_len < g_succ {
                self.stats.dedup_hits += 1;
                return Gen::Pruned;
            }
            if existing_len == g_succ {
                if self.cfg.all_solutions {
                    self.nodes[existing as usize]
                        .more_parents
                        .push((cand.parent, cand.ai));
                }
                self.stats.dedup_hits += 1;
                return Gen::Pruned;
            }
            // Shorter path to a known state (possible under inadmissible
            // A* ordering): re-parent and treat as fresh.
            let node = &mut self.nodes[existing as usize];
            node.parent = cand.parent;
            node.instr = cand.ai;
            node.len = g_succ as u16;
            node.more_parents.clear();
            if cand.goal {
                return Gen::Goal(existing);
            }
            self.note_min_perm(g_succ, cand.perm);
            self.pending_frontier.push((cand.succ, existing, cand.perm));
            return Gen::Fresh(existing);
        }

        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            parent: cand.parent,
            instr: cand.ai,
            more_parents: Vec::new(),
            len: g_succ as u16,
        });
        self.visited.insert(key, idx);
        self.stats.states_kept += 1;
        if cand.goal {
            self.goals.push(idx);
            return Gen::Goal(idx);
        }
        self.note_min_perm(g_succ, cand.perm);
        self.pending_frontier.push((cand.succ, idx, cand.perm));
        Gen::Fresh(idx)
    }

    fn note_min_perm(&mut self, len: u32, perm: u32) {
        let len = len as usize;
        if self.min_perm.len() <= len {
            self.min_perm.resize(len + 1, u32::MAX);
        }
        if perm < self.min_perm[len] {
            self.min_perm[len] = perm;
        }
    }

    /// Cut threshold for states of length `g + 1`, derived from the best
    /// permutation count at length `g` (§3.5).
    fn cut_threshold_for(&self, g: u32) -> Option<u32> {
        let cut = self.cfg.cut?;
        let min_prev = *self.min_perm.get(g as usize)?;
        (min_prev != u32::MAX).then(|| cut.threshold(min_prev))
    }

    fn over_limits(&self) -> bool {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.generated >= limit {
                return true;
            }
        }
        if self.cfg.budget.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.deadline {
            // Time checks are cheap relative to state expansion; check every
            // call.
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    fn limit_outcome(&self) -> Outcome {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.generated >= limit {
                return Outcome::NodeLimit;
            }
        }
        if self.cfg.budget.is_cancelled() {
            return Outcome::Cancelled;
        }
        Outcome::TimeLimit
    }

    fn sample_progress(&mut self, open: u64) {
        if self.cfg.progress_every != 0
            && self.stats.expanded.is_multiple_of(self.cfg.progress_every)
        {
            self.stats.progress.push(ProgressSample {
                elapsed_secs: self.start.elapsed().as_secs_f64(),
                open_states: open,
                solutions: self.goals.len() as u64,
            });
        }
        self.tick_progress(open);
    }

    /// Throttled mid-search snapshot delivery: at most one snapshot per
    /// `progress_every` expansions (default [`DEFAULT_PROGRESS_EVERY`]).
    fn tick_progress(&mut self, open: u64) {
        if self.cfg.progress_hook.is_none() && !sortsynth_obs::enabled() {
            return;
        }
        let every = if self.cfg.progress_every > 0 {
            self.cfg.progress_every
        } else {
            DEFAULT_PROGRESS_EVERY
        };
        if self.stats.expanded - self.last_progress_expanded < every {
            return;
        }
        self.emit_progress(open, None);
    }

    /// Builds one [`SearchProgress`] snapshot and delivers it to the hook
    /// and (when tracing is active) the structured event stream.
    fn emit_progress(&mut self, open: u64, outcome: Option<Outcome>) {
        if self.cfg.progress_hook.is_none() && !sortsynth_obs::enabled() {
            return;
        }
        self.last_progress_expanded = self.stats.expanded;
        let snapshot = SearchProgress {
            elapsed: self.start.elapsed(),
            expanded: self.stats.expanded,
            generated: self.stats.generated,
            open,
            f_bound: self.current_f,
            viability_pruned: self.stats.viability_pruned,
            cut_pruned: self.stats.cut_pruned,
            dedup_hits: self.stats.dedup_hits,
            dead_write_pruned: self.stats.dead_write_pruned,
            distance_table_skipped: self.stats.distance_table_skipped,
            finished: outcome.is_some(),
            outcome,
        };
        if let Some(hook) = &self.cfg.progress_hook {
            hook.call(&snapshot);
        }
        if sortsynth_obs::enabled() {
            let mut fields = vec![
                ("expanded", FieldValue::U64(snapshot.expanded)),
                ("generated", FieldValue::U64(snapshot.generated)),
                ("open", FieldValue::U64(snapshot.open)),
                (
                    "viability_pruned",
                    FieldValue::U64(snapshot.viability_pruned),
                ),
                ("cut_pruned", FieldValue::U64(snapshot.cut_pruned)),
                ("dedup_hits", FieldValue::U64(snapshot.dedup_hits)),
                (
                    "dead_write_pruned",
                    FieldValue::U64(snapshot.dead_write_pruned),
                ),
                (
                    "distance_table_skipped",
                    FieldValue::Bool(snapshot.distance_table_skipped),
                ),
                ("finished", FieldValue::Bool(snapshot.finished)),
            ];
            if let Some(f) = snapshot.f_bound {
                fields.push(("f_bound", FieldValue::U64(f)));
            }
            if let Some(outcome) = snapshot.outcome {
                fields.push(("outcome", FieldValue::Str(format!("{outcome:?}"))));
            }
            sortsynth_obs::trace::event(Level::Debug, "search_progress", &fields);
        }
    }

    /// Adds this run's totals to the process-wide metric families.
    fn publish_metrics(&self, outcome: Outcome) {
        let r = sortsynth_obs::registry();
        r.counter(
            names::SEARCH_RUNS_TOTAL,
            "Search engine runs completed (any outcome).",
        )
        .inc();
        r.counter(
            names::SEARCH_EXPANDED_TOTAL,
            "States expanded across all searches.",
        )
        .add(self.stats.expanded);
        r.counter(
            names::SEARCH_GENERATED_TOTAL,
            "States generated across all searches.",
        )
        .add(self.stats.generated);
        r.counter(
            names::SEARCH_VIABILITY_PRUNED_TOTAL,
            "States pruned by the viability filter.",
        )
        .add(self.stats.viability_pruned);
        r.counter(
            names::SEARCH_CUT_PRUNED_TOTAL,
            "States pruned by cost-bound cuts.",
        )
        .add(self.stats.cut_pruned);
        r.counter(
            names::SEARCH_DEAD_WRITE_PRUNED_TOTAL,
            "States pruned by the dead-write cut.",
        )
        .add(self.stats.dead_write_pruned);
        r.counter(
            names::SEARCH_DEDUP_HITS_TOTAL,
            "Duplicate states dropped by the closed set.",
        )
        .add(self.stats.dedup_hits);
        if self.stats.distance_table_skipped {
            r.counter(
                names::SEARCH_DISTANCE_TABLE_SKIPPED_TOTAL,
                "Heuristic lookups that skipped the distance table.",
            )
            .inc();
        }
        if outcome == Outcome::Cancelled {
            r.counter(
                names::SEARCH_CANCELLED_TOTAL,
                "Searches cancelled via SearchBudget.",
            )
            .inc();
        }
    }
}

#[derive(Default)]
struct WorkerCounters {
    expanded: u64,
    generated: u64,
    viability_pruned: u64,
    cut_pruned: u64,
    dead_write_pruned: u64,
}

/// Open-list entry for A*: ordered so that the smallest `f` (then `g`, then
/// node id) is popped first from the max-heap.
struct OpenEntry {
    f: u64,
    g: u32,
    node: u32,
    state: StateSet,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.f, self.g, self.node) == (other.f, other.g, other.node)
    }
}
impl Eq for OpenEntry {}
impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest f first.
        (other.f, other.g, other.node).cmp(&(self.f, self.g, self.node))
    }
}
