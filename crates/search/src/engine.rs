//! The enumerative synthesis engine: layered (Dijkstra) and A* search with
//! deduplication, viability checks, and cuts (§3 of the paper).

use std::time::{Duration, Instant};

use sortsynth_isa::{BatchStepper, Instr, MachineState, Op, Program};

use sortsynth_obs::names;
use sortsynth_obs::profile::{Phase, PhaseProbe, PHASE_COUNT};

use crate::bucket::OpenQueue;
use crate::config::{Strategy, SynthesisConfig};
use crate::distance::{DistanceTable, UNSORTABLE};
use crate::heuristics::heuristic_from_meta;
use crate::intern::StateArena;
use crate::progress::{SearchProgress, ShardProgress};
use crate::sizing::{SizingRow, SizingTable};
use crate::spill::{self, Journal, JournalMeta, JournalNode, ResumeError, SpillTier};
use crate::state::{
    assignment_erased, canonicalize_slice, key_of, perm_count_slice, value_reg_mask, ProjScratch,
    StateSet,
};

/// Default progress-emission throttle (expansions between snapshots) when
/// [`SynthesisConfig::progress_every`] is 0.
pub(crate) const DEFAULT_PROGRESS_EVERY: u64 = 4096;

/// Time floor on progress delivery: even when the expansion-count throttle
/// has not tripped, a snapshot is delivered at least this often, so slow
/// expansions (big machines, degraded pruning) still produce a live signal.
pub(crate) const PROGRESS_TIME_FLOOR: Duration = Duration::from_millis(500);

/// How a synthesis run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A solution was found (first-solution mode).
    Solved,
    /// Every minimal-length solution reachable under the configuration was
    /// collected (all-solutions mode).
    SolvedAll,
    /// The reachable space within `max_len` was exhausted without finding a
    /// solution. Under an optimality-preserving configuration
    /// ([`SynthesisConfig::guarantees_minimal`]) this *proves* that no
    /// program of length ≤ `max_len` exists.
    Exhausted,
    /// The state budget ([`SynthesisConfig::node_limit`]) was hit.
    NodeLimit,
    /// The wall-clock budget ([`SynthesisConfig::time_limit`] or the
    /// [`crate::SearchBudget`] deadline) was hit.
    TimeLimit,
    /// The run's [`crate::SearchBudget`] was cancelled from another thread.
    Cancelled,
}

/// One sample of search progress, for regenerating the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Seconds since the search started.
    pub elapsed_secs: f64,
    /// Open (not yet expanded) states at the time of the sample.
    pub open_states: u64,
    /// Goal states found so far.
    pub solutions: u64,
}

/// Counters and timings for one synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States produced by applying an instruction (before any pruning).
    pub generated: u64,
    /// States whose successors were explored.
    pub expanded: u64,
    /// Successors dropped because an equivalent state was already known
    /// (§3.6).
    pub dedup_hits: u64,
    /// Successors dropped by the viability checks (§3.3).
    pub viability_pruned: u64,
    /// Successors dropped by the cut (§3.5).
    pub cut_pruned: u64,
    /// Successors skipped by the liveness-based dead-write cut
    /// ([`SynthesisConfig::dead_write_cut`]): the appended instruction would
    /// have made the parent edge's instruction dead.
    pub dead_write_pruned: u64,
    /// Successors skipped by the symbolic value-flow cut
    /// ([`SynthesisConfig::value_flow_cut`]): the appended instruction was
    /// proven effect-free on every assignment of the parent state (or
    /// subsumed by the plain `mov` generated alongside it).
    pub value_flow_pruned: u64,
    /// Unique states kept (nodes in the solution DAG).
    pub states_kept: u64,
    /// The configuration asked for the distance table, but the machine has
    /// too many actions for [`DistanceTable::supports`]: the search ran with
    /// degraded pruning (no viability budget, no optimal-first-instruction
    /// restriction, no `MaxRemaining` heuristic).
    pub distance_table_skipped: bool,
    /// Time spent building the per-assignment distance table.
    pub distance_build: Duration,
    /// Total wall-clock time of the search (excluding table build).
    pub search_time: Duration,
    /// Progress samples (empty unless `progress_every > 0`).
    pub progress: Vec<ProgressSample>,
    /// Unique canonical states interned into the arena (sequential: equals
    /// [`SearchStats::states_kept`]; parallel: summed over the per-shard
    /// arenas).
    pub interned_states: u64,
    /// Bytes of assignment storage held by the state arena(s) at the end of
    /// the run (contiguous `MachineState` spans, excluding per-state
    /// metadata).
    pub arena_bytes: u64,
    /// Expansions whose scratch buffers were served entirely from already-
    /// reserved capacity — the steady-state, allocation-free path. The
    /// complement (`expanded - scratch_reused`) counts the warm-up
    /// expansions that grew a scratch or arena buffer.
    pub scratch_reused: u64,
    /// Parallel mode only: successors routed across shard boundaries (a
    /// successor whose owning shard is the generating worker's own is merged
    /// in place and not counted here).
    pub routed: u64,
    /// Parallel mode only: open entries taken from another worker's queue by
    /// an idle worker.
    pub steals: u64,
    /// Parallel mode only: states discarded because the shared incumbent
    /// bound proved they cannot lead to a strictly shorter kernel
    /// (`g + 1 ≥ best_cost`). Lossless, unlike [`SearchStats::cut_pruned`].
    pub bound_pruned: u64,
    /// Open entries discarded at pop without expansion: superseded by a
    /// reopen at a shorter length, or overtaken by the length bound while
    /// queued. Sequential best-first runs count their pop-time skips here;
    /// parallel runs aggregate the shards' [`ShardStats::stale_drops`].
    pub stale_pops: u64,
    /// Cursor-advance steps the bucketed open lists spent scanning empty
    /// buckets/lanes (0 under [`crate::OpenList::Heap`] and in layered
    /// sequential runs, which keep no open list). The amortized-O(1)
    /// selection claim is this number staying small relative to
    /// [`SearchStats::expanded`].
    pub bucket_scans: u64,
    /// SWAR passes taken by batch expansion: each pass steps up to
    /// [`sortsynth_isa::SWAR_LANES`] packed parent assignments through one
    /// action's lane kernel.
    pub swar_batches: u64,
    /// Frontier states whose assignment spans were written to a spill
    /// segment instead of the arena (external-memory tier; 0 unless
    /// [`SynthesisConfig::mem_budget_bytes`] is set on a sequential layered
    /// run).
    pub spilled_open: u64,
    /// Closed-map entries evicted to sorted on-disk segments under budget
    /// pressure.
    pub spilled_closed: u64,
    /// Frontier states deleted by delayed duplicate detection: they
    /// duplicated a state whose closed-map entry had been evicted to disk.
    /// These are dedup hits the resident map could no longer see.
    pub ddd_dedup_hits: u64,
    /// Frontier states restored from a resume journal
    /// ([`SynthesisConfig::resume_from`]); 0 for non-resumed runs.
    pub resumed_frontier_states: u64,
    /// Growth reallocations of the arena's backing stores (span store, meta
    /// store, closed map) after construction. A run pre-sized from the
    /// sizing table pins this to zero after warm-up.
    pub arena_reallocs: u64,
    /// Bytes of closed-map storage reserved at end of run (capacity × entry
    /// size at the configured [`crate::config::KeyWidth`]) — halved by the
    /// u64 key representation.
    pub key_bytes: u64,
    /// Bytes appended to spill segments (frontier spans + closed entries).
    pub spilled_bytes: u64,
    /// Spill segment files created over the run.
    pub spill_segments: u64,
    /// Estimated resident footprint at end of run: arena spans, closed map,
    /// per-state metadata, and parent edges. The quantity the spill tier
    /// holds under [`SynthesisConfig::mem_budget_bytes`].
    pub resident_bytes: u64,
    /// Parallel mode only: per-worker/shard counter blocks, in worker order.
    /// Empty for sequential runs. The global counters above are the sums of
    /// these (each shard owns a disjoint slice of the key space, so no state
    /// is ever counted by two shards).
    pub shards: Vec<ShardStats>,
    /// Nanoseconds attributed to each engine phase by the instrumented
    /// profiler, indexed by [`sortsynth_obs::profile::Phase`]. All zero
    /// unless the profiler was enabled for the run
    /// ([`sortsynth_obs::profile::set_enabled`]).
    pub phase_nanos: [u64; PHASE_COUNT],
}

/// Counters owned by one parallel worker (= one closed-set shard). See
/// [`SearchStats::shards`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// States this worker expanded (own or stolen).
    pub expanded: u64,
    /// States this worker generated by applying instructions.
    pub generated: u64,
    /// Successors dropped by this worker's viability checks.
    pub viability_pruned: u64,
    /// Successors dropped by this worker's §3.5 cut checks.
    pub cut_pruned: u64,
    /// Successors skipped by the dead-write cut on this worker.
    pub dead_write_pruned: u64,
    /// Successors skipped by the value-flow cut on this worker.
    pub value_flow_pruned: u64,
    /// Candidates this shard received (routed or merged in place) and
    /// disposed of as the owner of their keys.
    pub merged: u64,
    /// Candidates dropped by this shard's closed set (already known at an
    /// equal or shorter length).
    pub dedup_hits: u64,
    /// Candidates re-admitted at a strictly shorter length than previously
    /// recorded (the old open entry becomes stale).
    pub reopened: u64,
    /// Open entries discarded at pop without expansion: superseded by a
    /// reopen, or overtaken by the shared incumbent bound while queued.
    pub stale_drops: u64,
    /// Candidates discarded at merge against the shared incumbent bound.
    /// Merge-side only, so per shard
    /// `merged == dedup_hits + reopened + bound_pruned + fresh states kept`
    /// holds exactly (the root state is seeded, not merged).
    pub bound_pruned: u64,
    /// Unique states first recorded by this shard's closed set.
    pub states_kept: u64,
    /// Successors this worker sent to another shard's inbox.
    pub routed: u64,
    /// Open entries this worker stole from other workers' queues.
    pub steals: u64,
    /// Expansions this worker served entirely from already-reserved scratch
    /// capacity (see [`SearchStats::scratch_reused`]).
    pub scratch_reused: u64,
    /// SWAR batch passes taken by this worker's expansions (see
    /// [`SearchStats::swar_batches`]).
    pub swar_batches: u64,
}

/// A node of the solution DAG: a unique canonical state, with every
/// minimal-length (parent, instruction) edge that produced it.
#[derive(Debug, Clone)]
struct Node {
    /// Primary parent (`u32::MAX` for the root).
    parent: u32,
    /// Action index on the primary parent edge. `u16` because large
    /// machines exceed 256 actions (n = 2 with 8 scratch has 315).
    instr: u16,
    /// Additional same-length parents (populated in all-solutions mode).
    more_parents: Vec<(u32, u16)>,
    /// Program length at which this state is reached.
    len: u16,
}

const NO_PARENT: u32 = u32::MAX;

/// The deduplicated search DAG with its goal nodes; every root-to-goal path
/// is a distinct minimal-length sorting kernel.
#[derive(Debug, Clone)]
pub struct SolutionDag {
    nodes: Vec<Node>,
    goals: Vec<u32>,
    actions: Vec<Instr>,
}

impl SolutionDag {
    /// Builds a degenerate DAG holding exactly one root-to-goal chain (or
    /// just the root when `path` is `None`). `path` is a sequence of action
    /// indices; an empty path means the initial state itself is the goal.
    /// Used by the parallel engine, whose first-solution mode tracks a
    /// single incumbent path instead of the full parent DAG.
    pub(crate) fn from_path(actions: Vec<Instr>, path: Option<&[u16]>) -> SolutionDag {
        let mut nodes = vec![Node {
            parent: NO_PARENT,
            instr: 0,
            more_parents: Vec::new(),
            len: 0,
        }];
        let mut goals = Vec::new();
        if let Some(path) = path {
            for (i, &ai) in path.iter().enumerate() {
                nodes.push(Node {
                    parent: i as u32,
                    instr: ai,
                    more_parents: Vec::new(),
                    len: (i + 1) as u16,
                });
            }
            goals.push((nodes.len() - 1) as u32);
        }
        SolutionDag {
            nodes,
            goals,
            actions,
        }
    }

    /// The action list that edge indices refer to.
    pub fn actions(&self) -> &[Instr] {
        &self.actions
    }

    /// Number of goal *states* (distinct final register-assignment sets).
    pub fn goal_states(&self) -> usize {
        self.goals.len()
    }

    /// Total number of distinct solution programs: root-to-goal paths.
    ///
    /// Computed by dynamic programming over the DAG, so it is exact even
    /// when the count (2 233 360 for n = 4 in the paper) is far too large to
    /// enumerate.
    pub fn count_solutions(&self) -> u64 {
        if self.goals.is_empty() {
            return 0;
        }
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.nodes[i as usize].len);
        let mut count = vec![0u64; self.nodes.len()];
        for &i in &order {
            let node = &self.nodes[i as usize];
            if node.parent == NO_PARENT {
                count[i as usize] = 1;
                continue;
            }
            let mut c = count[node.parent as usize];
            for &(p, _) in &node.more_parents {
                c = c.saturating_add(count[p as usize]);
            }
            count[i as usize] = c;
        }
        self.goals
            .iter()
            .fold(0u64, |acc, &g| acc.saturating_add(count[g as usize]))
    }

    /// Extracts up to `limit` distinct solution programs.
    pub fn programs(&self, limit: usize) -> Vec<Program> {
        let mut out = Vec::new();
        for &goal in &self.goals {
            if out.len() >= limit {
                break;
            }
            let mut suffix = Vec::new();
            self.walk(goal, &mut suffix, limit, &mut out);
        }
        out
    }

    /// The first solution program, if any.
    pub fn first_program(&self) -> Option<Program> {
        self.programs(1).into_iter().next()
    }

    fn walk(&self, node_idx: u32, suffix: &mut Vec<Instr>, limit: usize, out: &mut Vec<Program>) {
        if out.len() >= limit {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        if node.parent == NO_PARENT {
            let mut prog: Program = suffix.clone();
            prog.reverse();
            out.push(prog);
            return;
        }
        let mut edges = vec![(node.parent, node.instr)];
        edges.extend_from_slice(&node.more_parents);
        for (parent, ai) in edges {
            if out.len() >= limit {
                return;
            }
            suffix.push(self.actions[ai as usize]);
            self.walk(parent, suffix, limit, out);
            suffix.pop();
        }
    }
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The deduplicated solution DAG.
    pub dag: SolutionDag,
    /// Length of the found solutions, if any.
    pub found_len: Option<u32>,
    /// Whether the configuration guarantees `found_len` is minimal.
    pub minimal_certified: bool,
    /// How the run ended.
    pub outcome: Outcome,
    /// Counters and timings.
    pub stats: SearchStats,
}

impl SynthesisResult {
    /// The first solution, if any.
    pub fn first_program(&self) -> Option<Program> {
        self.dag.first_program()
    }

    /// Total number of distinct solutions in the DAG.
    pub fn solution_count(&self) -> u64 {
        self.dag.count_solutions()
    }
}

/// Runs the enumerative synthesis described by `cfg`.
///
/// This is the main entry point of the crate; see [`SynthesisConfig`] for
/// the knobs and the crate docs for a guided example. With
/// [`SynthesisConfig::threads`] resolved to more than one worker the run is
/// handed to the sharded parallel engine ([`crate::parallel`]) — except in
/// all-solutions mode, which needs the sequential engine's globally ordered
/// parent edges to build the full solution DAG.
pub fn synthesize(cfg: &SynthesisConfig) -> SynthesisResult {
    try_synthesize(cfg).unwrap_or_else(|e| panic!("synthesis failed to start: {e}"))
}

/// [`synthesize`], but resume failures surface as a [`ResumeError`] instead
/// of a panic. Only [`SynthesisConfig::resume_from`] runs can fail here: a
/// missing journal, a checksum-detected torn segment, or a configuration
/// mismatch is reported, never silently replayed.
pub fn try_synthesize(cfg: &SynthesisConfig) -> Result<SynthesisResult, ResumeError> {
    if cfg.effective_threads() > 1 && !cfg.all_solutions {
        if cfg.resume_dir.is_some() {
            return Err(ResumeError::Unsupported {
                why: "resume requires the sequential engine (threads = 1)",
            });
        }
        return Ok(crate::parallel::run(cfg));
    }
    Engine::new(cfg).run()
}

/// Builds the per-assignment distance table when the configuration needs it
/// and the machine fits. Machines with many scratch registers overflow the
/// table's action bitset; they search without the distance-based aids
/// instead of panicking, and the fallback is recorded in
/// [`SearchStats::distance_table_skipped`]. Shared by the sequential engine
/// and the parallel shard setup, so the skip flag is reported on both paths.
pub(crate) fn build_distance_table(
    cfg: &SynthesisConfig,
    stats: &mut SearchStats,
) -> Option<DistanceTable> {
    if cfg.needs_distance_table() && DistanceTable::supports(&cfg.machine) {
        let t0 = Instant::now();
        let table = DistanceTable::build(&cfg.machine, cfg.optimal_instrs_only);
        stats.distance_build = t0.elapsed();
        Some(table)
    } else {
        // Record the degraded-pruning fallback instead of silently searching
        // without the distance-based aids.
        stats.distance_table_skipped =
            cfg.needs_distance_table() && !DistanceTable::supports(&cfg.machine);
        None
    }
}

/// What became of one generated successor.
enum Gen {
    Goal(u32),
    Fresh(u32),
    Pruned,
}

/// One successor surviving expansion, described by its span in the shared
/// scratch buffer ([`SuccessorBuf`]) plus every fact computed while it was
/// generated. The owner-side merge ([`Engine::merge`] or a parallel shard)
/// consumes these without touching the assignments again — beyond one
/// `memcpy` of the span into the arena for fresh states.
pub(crate) struct SuccMeta {
    /// Index of the applied action in the machine's action list. `u16`
    /// because large machines exceed 256 actions.
    pub ai: u16,
    /// Span start in [`SuccessorBuf::assigns`].
    pub offset: u32,
    /// Span length (canonical assignment count).
    pub len: u32,
    /// Content hash of the span ([`crate::state::key_of`]).
    pub key: u128,
    /// Permutation count (for cuts and heuristics).
    pub perm: u32,
    /// Max per-assignment distance (0 when the run has no table).
    pub max_dist: u16,
    /// Whether every assignment in the successor is sorted.
    pub goal: bool,
}

/// Reusable successor storage: all survivors of one expansion, their
/// assignments concatenated in `assigns` and described by `metas`. Cleared
/// — never shrunk — between expansions, so the steady state writes into
/// already-reserved memory.
#[derive(Default)]
pub(crate) struct SuccessorBuf {
    pub assigns: Vec<MachineState>,
    pub metas: Vec<SuccMeta>,
}

impl SuccessorBuf {
    pub fn clear(&mut self) {
        self.assigns.clear();
        self.metas.clear();
    }

    /// The assignment span of one successor.
    pub fn assigns_of(&self, m: &SuccMeta) -> &[MachineState] {
        &self.assigns[m.offset as usize..(m.offset + m.len) as usize]
    }
}

/// Per-worker expansion scratch: the successor buffer, the projection
/// scratch used for permutation counting, and the parent's distance-table
/// encodings (filled once per expansion, shared by the whole action sweep).
#[derive(Default)]
pub(crate) struct ExpandScratch {
    pub buf: SuccessorBuf,
    pub(crate) proj: ProjScratch,
    enc: Vec<u32>,
    /// Per-action successor `max_dist` of the state under expansion
    /// ([`DistanceTable::succ_max_dist_sweep`] output).
    succ_worst: Vec<u16>,
}

impl ExpandScratch {
    /// Reserved capacities, for [`SearchStats::scratch_reused`]: an
    /// expansion that leaves the signature unchanged allocated nothing
    /// here.
    pub fn capacity_signature(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.buf.assigns.capacity(),
            self.buf.metas.capacity(),
            self.proj.capacity(),
            self.enc.capacity(),
            self.succ_worst.capacity(),
        )
    }
}

/// The read-only inputs of state expansion, shared between the sequential
/// engine and the parallel workers (which hold no `Engine`).
pub(crate) struct ExpandCtx<'a> {
    pub cfg: &'a SynthesisConfig,
    pub actions: &'a [Instr],
    pub table: Option<&'a DistanceTable>,
}

impl ExpandCtx<'_> {
    /// The thread-safe part of expansion: instruction selection (§3.2),
    /// viability (§3.3), goal detection (§3.4), and the cut (§3.5).
    /// Deduplication (§3.6) happens later, at the owner of the successor's
    /// key ([`Engine::merge`] or the parallel shard owner). `prev_instr` is
    /// the instruction on the edge that produced `state` (used by the
    /// dead-write cut; ignored when the cut is off), `bound` the caller's
    /// current inclusive length bound.
    ///
    /// `state` is a raw canonical assignment slice (arena-resident or
    /// copied scratch); survivors land in `scratch.buf` as spans plus
    /// cached facts, so the whole expansion allocates nothing once the
    /// scratch has grown to steady state.
    ///
    /// Expansion runs in two passes so the phase profiler can attribute
    /// time with one timestamp per pass instead of per candidate: the
    /// action sweep (select, step, viability, cut) leaves survivors as raw
    /// spans, then a second pass canonicalizes each span in place and
    /// computes its content hash. Dedup gaps the canonicalization leaves
    /// between spans are harmless — every consumer reads spans through
    /// `(offset, len)`, never by assuming dense packing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn expand(
        &self,
        state: &[MachineState],
        prev_instr: Option<Instr>,
        g: u32,
        bound: u32,
        cut_threshold: Option<u32>,
        scratch: &mut ExpandScratch,
        counters: &mut WorkerCounters,
        probe: &mut PhaseProbe,
    ) {
        counters.expanded += 1;
        scratch.buf.clear();
        // Successor-distance fast path: with the parent's encodings in hand
        // a candidate's viability check is one table row scan — unsortable
        // and over-budget successors are pruned without ever being stepped.
        let succ_table = self.table.filter(|t| t.has_succ_dist());
        if let Some(table) = succ_table {
            scratch.enc.clear();
            scratch
                .enc
                .extend(state.iter().map(|&a| table.encode_assign(a)));
            // Whole-sweep viability: one streaming pass computes every
            // action's successor distance up front (packed max over
            // contiguous rows), so the action loop below never touches the
            // table row-by-row for viability again.
            table.succ_max_dist_sweep(&scratch.enc, &mut scratch.succ_worst);
        }
        let allowed = match self.table {
            Some(table) if self.cfg.optimal_instrs_only => Some(if succ_table.is_some() {
                table.optimal_first_moves_enc(&scratch.enc)
            } else {
                table.optimal_first_moves_slice(state)
            }),
            _ => None,
        };
        // A successor whose new instruction erases the parent edge's effect
        // (cmp overwriting an unread cmp, mov killing an unread write)
        // equals a state already reachable one layer earlier.
        let prev_instr = if self.cfg.dead_write_cut {
            prev_instr
        } else {
            None
        };
        let machine = &self.cfg.machine;
        let mask = value_reg_mask(machine);
        // Cut-bound permutation counting: a span the cut will discard only
        // needs its count known to exceed the threshold, so the scan stops
        // there. Kept spans never reach the cap — their count stays exact
        // (as [`SuccMeta::perm`] and the layer minima require). Goal spans
        // project to the single sorted tuple and finish at 1 regardless.
        let cut_cap = cut_threshold.unwrap_or(u32::MAX);
        // The sibling-subsumption half of the value-flow cut drops edges
        // whose successor duplicates the plain `mov` successor generated in
        // this same sweep — only safe when the full action set is on the
        // table and the caller does not want every minimal program.
        let vf_subsume =
            self.cfg.value_flow_cut && !self.cfg.all_solutions && !self.cfg.optimal_instrs_only;
        // An action that writes no value register (`cmp`, or any write
        // into a scratch register) leaves the value-register projection of
        // every assignment untouched, so all such successors share the
        // *parent's* permutation count — computed at most once per
        // expansion and reused across the whole sweep.
        let n_vals = machine.n() as usize;
        let mut parent_perm: Option<u32> = None;
        for (ai, &instr) in self.actions.iter().enumerate() {
            if let Some(set) = &allowed {
                // `cmp` is always permitted: a shortest program for a single
                // concrete assignment never compares (the values are known,
                // so comparing wastes an instruction), which means the
                // per-assignment guide can by construction never propose a
                // `cmp` — yet every correct sorting kernel needs them.
                // Restrict only the register-writing instructions.
                if instr.op != sortsynth_isa::Op::Cmp && !set.contains(ai) {
                    continue;
                }
            }
            if let Some(prev) = prev_instr {
                let kills_prev = (prev.op == Op::Cmp && instr.op == Op::Cmp)
                    || (prev.op != Op::Cmp
                        && instr.op == Op::Mov
                        && instr.dst == prev.dst
                        && instr.src != prev.dst);
                if kills_prev {
                    counters.dead_write_pruned += 1;
                    continue;
                }
            }
            if self.cfg.value_flow_cut && value_flow_redundant(state, instr, vf_subsume) {
                counters.value_flow_pruned += 1;
                continue;
            }
            counters.generated += 1;

            // Viability (§3.3): erased values can never be sorted again; a
            // state whose worst per-assignment distance overshoots the
            // remaining budget cannot finish in time. With the
            // successor-distance table the check runs off the *parent's*
            // encodings, so a pruned candidate is never stepped at all.
            // Zero distance iff sorted, so `d == 0` doubles as the §3.4
            // goal check for free.
            let mut max_dist = 0u16;
            let mut goal = false;
            let mut checked = false;
            let mut perm = 0u32;
            if let Some(table) = succ_table {
                let d = scratch.succ_worst[ai];
                if d == UNSORTABLE
                    || (self.cfg.budget_viability && bound != u32::MAX && g + 1 + d as u32 > bound)
                {
                    counters.viability_pruned += 1;
                    continue;
                }
                max_dist = d;
                goal = d == 0;
                checked = true;
                // Pre-step cut (§3.5): the successor span's permutation
                // count equals the distinct count of the parents' packed
                // table projections (the projection is a bijection of the
                // masked value registers), so the cut verdict is known
                // *before* stepping — and the majority of generated
                // candidates die here without ever being stepped.
                let writes_value = instr.op != Op::Cmp && (instr.dst.index() as usize) < n_vals;
                perm = if writes_value {
                    table.succ_perm_capped(ai, &scratch.enc, &mut scratch.proj, cut_cap)
                } else {
                    *parent_perm.get_or_insert_with(|| {
                        table.succ_perm_capped(ai, &scratch.enc, &mut scratch.proj, cut_cap)
                    })
                };
                if !goal {
                    if let Some(threshold) = cut_threshold {
                        if perm > threshold {
                            counters.cut_pruned += 1;
                            continue;
                        }
                    }
                }
            }

            // Apply into the shared buffer; a pruned successor is truncated
            // away again, so survivors stay densely packed. Goal,
            // permutation count, and the cut are all insensitive to order
            // and duplicates, so (on the fallback paths) they run on the
            // *raw* stepped span — the canonicalizing sort (the hottest
            // single operation in the engine) is paid only by candidates
            // that survive every filter.
            let start = scratch.buf.assigns.len();
            // SWAR batch step: one opcode dispatch and a branchless lane
            // kernel for the whole span instead of a per-assignment
            // `step` (whose cmov branch is data-dependent).
            counters.swar_batches +=
                BatchStepper::new(instr).append_stepped(state, &mut scratch.buf.assigns);
            if checked {
                debug_assert_eq!(
                    max_dist,
                    self.table
                        .expect("checked implies table")
                        .max_dist_slice(&scratch.buf.assigns[start..]),
                    "successor-distance table disagrees with direct lookup"
                );
                debug_assert_eq!(
                    perm,
                    {
                        let (head, proj) = (&scratch.buf.assigns[start..], &mut scratch.proj);
                        perm_count_slice(head, mask, proj, u32::MAX)
                    },
                    "packed projections disagree with the stepped span's count"
                );
            } else if let Some(table) = self.table {
                // Fallback for machines whose successor table exceeded the
                // build cap: per-successor lookups on the stepped span.
                let d = table.max_dist_slice(&scratch.buf.assigns[start..]);
                if d == UNSORTABLE
                    || (self.cfg.budget_viability && bound != u32::MAX && g + 1 + d as u32 > bound)
                {
                    counters.viability_pruned += 1;
                    scratch.buf.assigns.truncate(start);
                    continue;
                }
                max_dist = d;
                goal = d == 0;
            } else {
                if scratch.buf.assigns[start..]
                    .iter()
                    .any(|&a| assignment_erased(machine, a))
                {
                    counters.viability_pruned += 1;
                    scratch.buf.assigns.truncate(start);
                    continue;
                }
                goal = scratch.buf.assigns[start..]
                    .iter()
                    .all(|&a| machine.is_sorted(a));
            }

            if !checked {
                perm = {
                    let (head, proj) = (&scratch.buf.assigns[start..], &mut scratch.proj);
                    perm_count_slice(head, mask, proj, cut_cap)
                };
                if !goal {
                    if let Some(threshold) = cut_threshold {
                        if perm > threshold {
                            counters.cut_pruned += 1;
                            scratch.buf.assigns.truncate(start);
                            continue;
                        }
                    }
                }
            }
            scratch.buf.metas.push(SuccMeta {
                ai: ai as u16,
                offset: start as u32,
                len: (scratch.buf.assigns.len() - start) as u32,
                key: 0,
                perm,
                max_dist,
                goal,
            });
        }
        probe.lap(Phase::Step);

        // Second pass: canonicalize every survivor's span in place (the
        // hottest single operation in the engine) and hash it. Dedup may
        // shrink a span, leaving a gap before the next one; `len` is
        // updated to the kept prefix.
        let SuccessorBuf { assigns, metas } = &mut scratch.buf;
        for m in metas {
            let span = &mut assigns[m.offset as usize..(m.offset + m.len) as usize];
            let kept = canonicalize_slice(span);
            m.len = kept as u32;
            m.key = key_of(&span[..kept]);
        }
        probe.lap(Phase::Canonicalize);
    }
}

struct Engine<'a> {
    cfg: &'a SynthesisConfig,
    actions: Vec<Instr>,
    table: Option<DistanceTable>,
    /// The interned states. Node ids and arena ids coincide: exactly the
    /// kept states are interned, in the same order `nodes` grows.
    arena: StateArena,
    nodes: Vec<Node>,
    /// Minimum permutation count seen among kept states of each length.
    min_perm: Vec<u32>,
    goals: Vec<u32>,
    /// Inclusive length bound (dynamic: shrinks when solutions are found in
    /// all-solutions mode).
    bound: u32,
    stats: SearchStats,
    start: Instant,
    deadline: Option<Instant>,
    /// Fresh node ids queued by [`Engine::merge`] for the caller to pick
    /// up: the next layer in layered mode, heap pushes in A* mode.
    pending_frontier: Vec<u32>,
    /// Current frontier bound for progress snapshots: the layer depth in
    /// layered mode, the last popped `f` in A* mode.
    current_f: Option<u64>,
    /// Expansion count at the last delivered progress snapshot.
    last_progress_expanded: u64,
    /// Wall-clock time of the last delivered progress snapshot, for the
    /// [`PROGRESS_TIME_FLOOR`].
    last_progress_at: Instant,
    /// Reused expansion buffers ([`ExpandCtx::expand`] output).
    scratch: ExpandScratch,
    /// Per-run phase profiler probe (inert unless the profiler was enabled
    /// when the run started).
    probe: PhaseProbe,
    /// External-memory tier (layered sequential runs under
    /// [`SynthesisConfig::mem_budget_bytes`], and every resumed run).
    spill: Option<SpillTier>,
    /// Peak frontier/open depth, recorded into the sizing table.
    peak_open: u64,
    /// Per-lane capacity hint for the bucketed open list, derived from the
    /// sizing table's recorded peak open depth (0 = no hint).
    lane_hint: usize,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SynthesisConfig) -> Self {
        // Latch the profiler switch before the table build so its time is
        // attributable; the probe itself stamps from the first expansion.
        let probe = PhaseProbe::new();
        let mut stats = SearchStats::default();
        let table = build_distance_table(cfg, &mut stats);
        let start = Instant::now();
        // Effective deadline: the earlier of the relative time limit and the
        // budget's absolute deadline.
        let deadline = match (cfg.time_limit.map(|d| start + d), cfg.budget.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let actions = cfg.machine.actions();
        // Edge records store action indices as `u16`.
        assert!(actions.len() <= u16::MAX as usize + 1);
        // Pre-size the arena and node store: a measured sizing row beats
        // everything; otherwise derive a (clamped) estimate from the
        // distance table's encoding count. Budgeted runs skip the estimate
        // — pre-reserving a full-population arena would defeat the budget.
        let mut arena = StateArena::with_key_width(cfg.key_width);
        let mut nodes = Vec::new();
        let sizing_row = cfg
            .sizing_path
            .as_deref()
            .map(SizingTable::load)
            .and_then(|t| t.lookup(&cfg.machine, 1));
        if let Some(row) = sizing_row {
            let states = row.states as usize + row.states as usize / 8 + 64;
            let assigns = row.assigns as usize + row.assigns as usize / 8 + 1024;
            arena.reserve(states, assigns);
            nodes.reserve(states);
        } else if cfg.mem_budget_bytes.is_none() {
            if let Some(t) = table.as_ref() {
                let states = (t.encodings() * 32).min(512 * 1024);
                let per_state = sortsynth_isa::factorial(cfg.machine.n()) as usize;
                let assigns = states.saturating_mul(per_state).min(16 * 1024 * 1024);
                arena.reserve(states, assigns);
                nodes.reserve(states);
            }
        }
        Engine {
            actions,
            table,
            arena,
            nodes,
            min_perm: Vec::new(),
            goals: Vec::new(),
            bound: cfg.max_len.unwrap_or(u32::MAX),
            stats,
            start,
            deadline,
            pending_frontier: Vec::new(),
            current_f: None,
            last_progress_expanded: 0,
            last_progress_at: start,
            scratch: ExpandScratch::default(),
            probe,
            spill: None,
            peak_open: 0,
            // Open entries spread over a handful of hot (f, g) lanes; a
            // quarter of the recorded peak per lane covers the densest one
            // without over-reserving the rest.
            lane_hint: sizing_row.map_or(0, |r| (r.open_depth / 4) as usize),
            cfg,
        }
    }

    fn run(mut self) -> Result<SynthesisResult, ResumeError> {
        let cfg = self.cfg;
        let outcome = if let Some(dir) = cfg.resume_dir.clone() {
            let (frontier, g) = self.restore_from(&dir)?;
            self.probe.skip();
            self.run_layered(frontier, g)
        } else {
            let init = StateSet::initial(&cfg.machine);
            let init_perm = init.perm_count(&cfg.machine);
            let init_dist = self.table.as_ref().map_or(0, |t| t.max_dist(&init));
            let init_goal = init.is_goal(&cfg.machine);
            let root = self.arena.insert_new(
                init.key(),
                init.assignments(),
                init_perm,
                init_dist,
                init_goal,
            );
            debug_assert_eq!(root, 0);
            self.nodes.push(Node {
                parent: NO_PARENT,
                instr: 0,
                more_parents: Vec::new(),
                len: 0,
            });
            self.note_min_perm(0, init_perm);
            self.stats.states_kept = 1;

            if init_goal {
                self.goals.push(0);
                Outcome::Solved
            } else {
                // The external-memory tier serves the sequential layered
                // strategy; A* runs ignore the budget (their pop order
                // revisits arbitrary layers, which defeats streaming
                // frontier segments) — documented in DESIGN.md.
                if let Some(budget) = cfg.mem_budget_bytes {
                    if cfg.strategy == Strategy::Layered {
                        let dir = cfg
                            .spill_dir
                            .clone()
                            .unwrap_or_else(spill::default_spill_dir);
                        let tier = SpillTier::new(dir, budget)
                            .unwrap_or_else(|e| panic!("cannot create spill directory: {e}"));
                        self.spill = Some(tier);
                        self.checkpoint(0, &[0]);
                    }
                }
                // Re-stamp so the first Select lap starts at the search
                // proper, not at probe creation (the table build is
                // attributed separately).
                self.probe.skip();
                match self.cfg.strategy {
                    Strategy::Layered => self.run_layered(vec![0], 0),
                    Strategy::AStar { .. } => self.run_astar(),
                }
            }
        };

        self.stats.search_time = self.start.elapsed();
        self.stats.interned_states = self.arena.len() as u64;
        self.stats.arena_bytes = self.arena.assign_bytes();
        self.stats.key_bytes = self.arena.key_bytes();
        self.stats.arena_reallocs = self.arena.reallocs();
        self.stats.resident_bytes = self.resident_bytes();
        if let Some(tier) = &self.spill {
            self.stats.spilled_open = tier.spilled_open;
            self.stats.spilled_closed = tier.spilled_closed;
            self.stats.ddd_dedup_hits = tier.ddd_dedup_hits;
            self.stats.spilled_bytes = tier.spilled_bytes;
            self.stats.spill_segments = tier.segments_created;
        }
        self.stats.phase_nanos = self.probe.nanos();
        if self.probe.is_on() {
            // The table build ran before the first probe stamp; its time is
            // already measured separately, so it joins the attribution for
            // free.
            self.stats.phase_nanos[Phase::TableBuild as usize] =
                self.stats.distance_build.as_nanos() as u64;
        }
        // Every run — solved, exhausted, limited, or cancelled — flushes one
        // final snapshot (so consumers always see the closing counters) and
        // publishes its totals to the process-wide metrics registry.
        self.emit_progress(self.pending_frontier.len() as u64, Some(outcome));
        publish_search_metrics(&self.stats, outcome);
        if matches!(
            outcome,
            Outcome::Solved | Outcome::SolvedAll | Outcome::Exhausted
        ) {
            // Completed runs feed the sizing table, so the next run of this
            // configuration pre-sizes its arena and skips the growth spikes.
            if let Some(path) = self.cfg.sizing_path.as_deref() {
                let mut table = SizingTable::load(path);
                table.record(
                    &self.cfg.machine,
                    1,
                    SizingRow {
                        states: self.arena.len() as u64,
                        assigns: self.arena.assign_len() as u64,
                        arena_bytes: self.arena.assign_bytes(),
                        open_depth: self.peak_open,
                    },
                );
                table.save(path);
            }
            // A completed run that spilled into a default temp directory
            // leaves nothing to resume — reclaim the disk.
            if let Some(tier) = &self.spill {
                if self.cfg.spill_dir.is_none() && self.cfg.resume_dir.is_none() {
                    tier.cleanup();
                }
            }
        }
        let found_len = self
            .goals
            .first()
            .map(|&g| self.nodes[g as usize].len as u32);
        Ok(SynthesisResult {
            minimal_certified: found_len.is_some() && self.cfg.guarantees_minimal(),
            dag: SolutionDag {
                nodes: self.nodes,
                goals: self.goals,
                actions: self.actions,
            },
            found_len,
            outcome,
            stats: self.stats,
        })
    }

    /// Restores engine state from the journal in `dir` and returns the
    /// frontier and layer to re-run. Every byte the journal references is
    /// strictly re-verified (checksums against recorded valid lengths)
    /// before anything is trusted; any defect is a [`ResumeError`]. The
    /// checkpointed layer re-runs from its start — the journal was written
    /// before the layer began, so a mid-layer crash loses at most one
    /// layer's work, and a partially written next-layer frontier segment is
    /// truncated automatically when its writer is recreated.
    fn restore_from(&mut self, dir: &std::path::Path) -> Result<(Vec<u32>, u32), ResumeError> {
        if self.cfg.strategy != Strategy::Layered {
            return Err(ResumeError::Unsupported {
                why: "resume requires the layered strategy",
            });
        }
        let fingerprint = spill::config_fingerprint(self.cfg);
        let journal = spill::load_journal(dir, fingerprint)?;
        spill::verify_segments(dir, &journal)?;
        let budget = self.cfg.mem_budget_bytes.unwrap_or(journal.budget);
        let tier = SpillTier::resumed(dir.to_path_buf(), budget, &journal)?;
        for m in &journal.metas {
            self.arena.restore_meta(m.len, m.perm, m.max_dist, m.goal);
        }
        for &(key, id) in &journal.closed {
            self.arena.restore_closed(key, id);
        }
        for (id, span) in &journal.spans {
            self.arena.restore_span(*id, span);
        }
        self.nodes = journal
            .nodes
            .iter()
            .map(|n| Node {
                parent: n.parent,
                instr: n.instr,
                more_parents: n.more.clone(),
                len: n.len,
            })
            .collect();
        self.min_perm = journal.min_perm.clone();
        self.goals = journal.goals.clone();
        self.bound = journal.bound;
        self.stats.expanded = journal.expanded;
        self.stats.generated = journal.generated;
        self.stats.dedup_hits = journal.dedup_hits;
        self.stats.viability_pruned = journal.viability_pruned;
        self.stats.cut_pruned = journal.cut_pruned;
        self.stats.dead_write_pruned = journal.dead_write_pruned;
        self.stats.value_flow_pruned = journal.value_flow_pruned;
        self.stats.states_kept = journal.states_kept;
        self.stats.scratch_reused = journal.scratch_reused;
        self.stats.swar_batches = journal.swar_batches;
        self.stats.resumed_frontier_states = journal.frontier.len() as u64;
        self.spill = Some(tier);
        Ok((journal.frontier.clone(), journal.g))
    }

    /// Estimated resident footprint: arena spans + closed map + per-state
    /// metadata + parent edges. The spill tier's merge-time trigger.
    fn resident_bytes(&self) -> u64 {
        self.arena.assign_bytes()
            + self.arena.key_bytes()
            + self.arena.len() as u64 * 16
            + self.nodes.len() as u64 * std::mem::size_of::<Node>() as u64
    }

    /// End-of-layer spill maintenance: seal the frontier segment under
    /// construction, run delayed duplicate detection over this layer's
    /// fresh interns (deleting duplicates of evicted states from `next`),
    /// evict already-expanded closed entries under budget pressure, compact
    /// the arena's span store down to the surviving frontier, and write the
    /// journal checkpoint for the next layer.
    fn end_of_layer(&mut self, g: u32, next: &mut Vec<u32>) {
        debug_assert!(next.windows(2).all(|w| w[0] < w[1]), "frontier id order");
        let tier = self.spill.as_mut().expect("end_of_layer without spill");
        tier.seal_frontier();
        let dead = tier.ddd_filter();
        if !dead.is_empty() {
            next.retain(|id| dead.binary_search(id).is_err());
        }
        let over_budget = {
            let budget = self.spill.as_ref().unwrap().budget();
            self.resident_bytes() > budget
        };
        if over_budget {
            let evicted = self
                .arena
                .evict_closed(|id| next.binary_search(&id).is_ok());
            self.spill.as_mut().unwrap().append_closed(g, evicted);
        }
        self.arena.compact_spans(next);
        self.checkpoint(g + 1, next);
    }

    /// Writes the journal checkpoint declaring layer `g` (with frontier
    /// `frontier`) as the next layer to expand.
    fn checkpoint(&mut self, g: u32, frontier: &[u32]) {
        let tier = self.spill.as_ref().expect("checkpoint without spill");
        let journal = Journal {
            fingerprint: spill::config_fingerprint(self.cfg),
            g,
            bound: self.bound,
            budget: tier.budget(),
            min_perm: self.min_perm.clone(),
            goals: self.goals.clone(),
            expanded: self.stats.expanded,
            generated: self.stats.generated,
            dedup_hits: self.stats.dedup_hits,
            viability_pruned: self.stats.viability_pruned,
            cut_pruned: self.stats.cut_pruned,
            dead_write_pruned: self.stats.dead_write_pruned,
            value_flow_pruned: self.stats.value_flow_pruned,
            states_kept: self.stats.states_kept,
            scratch_reused: self.stats.scratch_reused,
            swar_batches: self.stats.swar_batches,
            spilled_open: tier.spilled_open,
            spilled_closed: tier.spilled_closed,
            ddd_dedup_hits: tier.ddd_dedup_hits,
            spilled_bytes: tier.spilled_bytes,
            spill_segments: tier.segments_created,
            nodes: self
                .nodes
                .iter()
                .map(|n| JournalNode {
                    parent: n.parent,
                    instr: n.instr,
                    len: n.len,
                    more: n.more_parents.clone(),
                })
                .collect(),
            metas: (0..self.arena.len() as u32)
                .map(|id| {
                    let m = self.arena.meta(id);
                    JournalMeta {
                        len: m.assign_count(),
                        perm: m.perm,
                        max_dist: m.max_dist,
                        goal: m.goal,
                    }
                })
                .collect(),
            closed: self.arena.closed_entries(),
            frontier: frontier.to_vec(),
            spans: frontier
                .iter()
                .filter(|&&id| self.arena.has_span(id))
                .map(|&id| (id, self.arena.assignments(id).to_vec()))
                .collect(),
            frontier_seg: tier.frontier_seg(),
            closed_segs: tier.closed_segs(),
        };
        self.spill
            .as_mut()
            .expect("checkpoint without spill")
            .write_journal(&journal);
    }

    // ------------------------------------------------------------------
    // Layered (Dijkstra) search: process all programs of length g before
    // any of length g + 1 (§3.1). First solution is minimal.
    // ------------------------------------------------------------------
    fn run_layered(&mut self, mut frontier: Vec<u32>, mut g: u32) -> Outcome {
        loop {
            if g >= self.bound || frontier.is_empty() {
                return if self.goals.is_empty() {
                    Outcome::Exhausted
                } else {
                    Outcome::SolvedAll
                };
            }
            self.current_f = Some(g as u64);
            self.peak_open = self.peak_open.max(frontier.len() as u64);
            let cut_threshold = self.cut_threshold_for(g);
            // Merge each state's successors immediately, so goals (and
            // progress samples) accumulate through the layer instead of
            // appearing all at once at its end.
            for &node in &frontier {
                // One sampled probe cycle per expansion; frontier iteration
                // and bookkeeping up to the expansion are selection.
                self.probe.begin_cycle();
                self.probe.lap(Phase::Select);
                self.expand_node(node, g, cut_threshold);
                // Detach the successor buffer so merging (which grows the
                // arena) can't alias it; the move is two pointer swaps.
                let buf = std::mem::take(&mut self.scratch.buf);
                for m in &buf.metas {
                    match self.merge(node, m, buf.assigns_of(m), g + 1) {
                        // Layer order makes the first goal minimal-length.
                        Gen::Goal(_) if !self.cfg.all_solutions => {
                            self.probe.lap(Phase::Intern);
                            return Outcome::Solved;
                        }
                        Gen::Goal(_) => self.bound = self.bound.min(g + 1),
                        Gen::Fresh(_) | Gen::Pruned => {}
                    }
                }
                self.scratch.buf = buf;
                self.probe.lap(Phase::Intern);
                self.sample_progress(self.pending_frontier.len() as u64);
                if self.over_limits() {
                    return self.limit_outcome();
                }
            }
            let mut next = std::mem::take(&mut self.pending_frontier);
            if self.spill.is_some() {
                self.end_of_layer(g, &mut next);
            }
            if self.over_limits() {
                return self.limit_outcome();
            }
            frontier = next;
            g += 1;
        }
    }

    // ------------------------------------------------------------------
    // A* / best-first search ordered by f = g + h (§3.1).
    // ------------------------------------------------------------------
    fn run_astar(&mut self) -> Outcome {
        let heuristic = match self.cfg.strategy {
            Strategy::AStar { heuristic } => heuristic,
            Strategy::Layered => unreachable!("run_astar called for layered strategy"),
        };
        let mut open = OpenQueue::with_hints(
            self.cfg.open_list,
            open_f_hint(self.bound, self.table.as_ref()),
            self.lane_hint,
        );
        let m0 = *self.arena.meta(0);
        open.push(
            heuristic_from_meta(heuristic, m0.perm, m0.assign_count(), m0.max_dist) as u64,
            0,
            0,
        );

        let outcome = loop {
            // One sampled probe cycle per expansion; the pop and staleness
            // checks are selection.
            self.probe.begin_cycle();
            let Some((f, g, node)) = open.pop() else {
                break if self.goals.is_empty() {
                    Outcome::Exhausted
                } else {
                    Outcome::SolvedAll
                };
            };
            self.probe.lap(Phase::Select);
            self.current_f = Some(f);
            // Goals are queued with f = g and accepted when *popped*, the
            // standard A* discipline: every open state that could lead to a
            // shorter kernel (f < g_goal) is expanded first.
            if self.arena.meta(node).goal {
                break Outcome::Solved;
            }
            if g >= self.bound {
                self.stats.stale_pops += 1;
                continue;
            }
            // Skip stale entries: the state was re-reached at a shorter
            // length after this entry was pushed.
            if self.nodes[node as usize].len as u32 != g {
                self.stats.stale_pops += 1;
                continue;
            }
            let cut_threshold = self.cut_threshold_for(g);
            self.expand_node(node, g, cut_threshold);
            let buf = std::mem::take(&mut self.scratch.buf);
            for m in &buf.metas {
                match self.merge(node, m, buf.assigns_of(m), g + 1) {
                    Gen::Goal(idx) => {
                        self.bound = self.bound.min(g + 1);
                        if !self.cfg.all_solutions {
                            open.push((g + 1) as u64, g + 1, idx);
                        }
                    }
                    Gen::Fresh(idx) => {
                        let queued = self
                            .pending_frontier
                            .pop()
                            .expect("fresh node queued a frontier entry");
                        debug_assert_eq!(queued, idx);
                        let meta = self.arena.meta(idx);
                        let h = heuristic_from_meta(
                            heuristic,
                            meta.perm,
                            meta.assign_count(),
                            meta.max_dist,
                        );
                        open.push((g + 1) as u64 + h as u64, g + 1, idx);
                    }
                    Gen::Pruned => {}
                }
            }
            self.scratch.buf = buf;
            self.probe.lap(Phase::Intern);
            if self.over_limits() {
                break self.limit_outcome();
            }
            self.sample_progress(open.len() as u64);
        };
        self.stats.bucket_scans += open.scans();
        outcome
    }

    // ------------------------------------------------------------------
    // Shared successor generation and bookkeeping
    // ------------------------------------------------------------------

    /// Expands `node` in place: runs the shared expansion core over the
    /// arena-resident state, folds the pruning counters into the run stats,
    /// and leaves survivors in `self.scratch.buf`.
    fn expand_node(&mut self, node: u32, g: u32, cut_threshold: Option<u32>) {
        // The instruction on the parent edge, for the dead-write cut.
        let prev_instr = {
            let n = &self.nodes[node as usize];
            (n.parent != NO_PARENT).then(|| self.actions[n.instr as usize])
        };
        let mut counters = WorkerCounters::default();
        let before = self.scratch.capacity_signature();
        let ctx = ExpandCtx {
            cfg: self.cfg,
            actions: &self.actions,
            table: self.table.as_ref(),
        };
        if self.arena.has_span(node) {
            ctx.expand(
                self.arena.assignments(node),
                prev_instr,
                g,
                self.bound,
                cut_threshold,
                &mut self.scratch,
                &mut counters,
                &mut self.probe,
            );
        } else {
            // Spilled frontier state: stream its span back from the sealed
            // frontier segment. Layered expansion visits frontier ids in
            // increasing (append) order, so this is one sequential read per
            // layer.
            let tier = self
                .spill
                .as_mut()
                .expect("state without a resident span outside spill mode");
            let span = tier.fetch_span(node);
            ctx.expand(
                span,
                prev_instr,
                g,
                self.bound,
                cut_threshold,
                &mut self.scratch,
                &mut counters,
                &mut self.probe,
            );
        }
        if self.scratch.capacity_signature() == before {
            self.stats.scratch_reused += 1;
        }
        self.stats.expanded += counters.expanded;
        self.stats.generated += counters.generated;
        self.stats.viability_pruned += counters.viability_pruned;
        self.stats.cut_pruned += counters.cut_pruned;
        self.stats.dead_write_pruned += counters.dead_write_pruned;
        self.stats.value_flow_pruned += counters.value_flow_pruned;
        self.stats.swar_batches += counters.swar_batches;
    }

    /// Deduplicates a surviving successor (§3.6) against the interner and
    /// threads it into the node arena; fresh non-goal states are queued on
    /// the pending frontier for the caller to pick up.
    fn merge(&mut self, parent: u32, m: &SuccMeta, assigns: &[MachineState], g_succ: u32) -> Gen {
        if let Some(existing) = self.arena.get(m.key) {
            let existing_len = self.nodes[existing as usize].len as u32;
            if existing_len < g_succ {
                self.stats.dedup_hits += 1;
                return Gen::Pruned;
            }
            if existing_len == g_succ {
                if self.cfg.all_solutions {
                    self.nodes[existing as usize]
                        .more_parents
                        .push((parent, m.ai));
                }
                self.stats.dedup_hits += 1;
                return Gen::Pruned;
            }
            // Shorter path to a known state (possible under inadmissible
            // A* ordering): re-parent and treat as fresh.
            let node = &mut self.nodes[existing as usize];
            node.parent = parent;
            node.instr = m.ai;
            node.len = g_succ as u16;
            node.more_parents.clear();
            if m.goal {
                return Gen::Goal(existing);
            }
            self.note_min_perm(g_succ, m.perm);
            self.pending_frontier.push(existing);
            return Gen::Fresh(existing);
        }

        // Spill decision (external-memory tier): once the resident estimate
        // crosses the budget, fresh non-goal states keep their closed-set
        // entry and metadata but their span goes to the frontier segment.
        // Goals stay resident — reconstruction and bound updates touch them
        // immediately.
        let spill_over = match self.spill.as_ref() {
            Some(tier) if !m.goal => self.resident_bytes() > tier.budget(),
            _ => false,
        };
        let idx = if spill_over {
            let idx = self
                .arena
                .insert_spilled(m.key, m.len, m.perm, m.max_dist, m.goal);
            self.spill
                .as_mut()
                .unwrap()
                .spill_span(g_succ, idx, assigns);
            idx
        } else {
            self.arena
                .insert_new(m.key, assigns, m.perm, m.max_dist, m.goal)
        };
        if let Some(spill) = &mut self.spill {
            let stored = self.arena.stored_key(m.key);
            spill.note_fresh(stored, idx);
        }
        debug_assert_eq!(idx as usize, self.nodes.len());
        self.nodes.push(Node {
            parent,
            instr: m.ai,
            more_parents: Vec::new(),
            len: g_succ as u16,
        });
        self.stats.states_kept += 1;
        if m.goal {
            self.goals.push(idx);
            return Gen::Goal(idx);
        }
        self.note_min_perm(g_succ, m.perm);
        self.pending_frontier.push(idx);
        Gen::Fresh(idx)
    }

    fn note_min_perm(&mut self, len: u32, perm: u32) {
        let len = len as usize;
        if self.min_perm.len() <= len {
            self.min_perm.resize(len + 1, u32::MAX);
        }
        if perm < self.min_perm[len] {
            self.min_perm[len] = perm;
        }
    }

    /// Cut threshold for states of length `g + 1`, derived from the best
    /// permutation count at length `g` (§3.5).
    fn cut_threshold_for(&self, g: u32) -> Option<u32> {
        let cut = self.cfg.cut?;
        let min_prev = *self.min_perm.get(g as usize)?;
        (min_prev != u32::MAX).then(|| cut.threshold(min_prev))
    }

    fn over_limits(&self) -> bool {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.generated >= limit {
                return true;
            }
        }
        if self.cfg.budget.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.deadline {
            // Time checks are cheap relative to state expansion; check every
            // call.
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    fn limit_outcome(&self) -> Outcome {
        if let Some(limit) = self.cfg.node_limit {
            if self.stats.generated >= limit {
                return Outcome::NodeLimit;
            }
        }
        if self.cfg.budget.is_cancelled() {
            return Outcome::Cancelled;
        }
        Outcome::TimeLimit
    }

    fn sample_progress(&mut self, open: u64) {
        self.peak_open = self.peak_open.max(open);
        if self.cfg.progress_every != 0
            && self.stats.expanded.is_multiple_of(self.cfg.progress_every)
        {
            self.stats.progress.push(ProgressSample {
                elapsed_secs: self.start.elapsed().as_secs_f64(),
                open_states: open,
                solutions: self.goals.len() as u64,
            });
        }
        self.tick_progress(open);
        if let Some(after) = self.cfg.panic_after {
            // Test-only crash injection, after the progress tick so the
            // snapshot at the threshold is delivered before the unwind.
            if self.stats.expanded >= after {
                panic!("injected panic after {after} expansions (test harness)");
            }
        }
    }

    /// Throttled mid-search snapshot delivery: at most one snapshot per
    /// `progress_every` expansions (default [`DEFAULT_PROGRESS_EVERY`]),
    /// but at least one per [`PROGRESS_TIME_FLOOR`] so slow expansions
    /// still produce a live signal.
    fn tick_progress(&mut self, open: u64) {
        if !crate::progress::delivery_active(self.cfg.progress_hook.as_ref()) {
            return;
        }
        let every = if self.cfg.progress_every > 0 {
            self.cfg.progress_every
        } else {
            DEFAULT_PROGRESS_EVERY
        };
        if self.stats.expanded - self.last_progress_expanded < every
            && self.last_progress_at.elapsed() < PROGRESS_TIME_FLOOR
        {
            return;
        }
        self.emit_progress(open, None);
    }

    /// Builds one [`SearchProgress`] snapshot and delivers it to the hook
    /// and (when tracing is active) the structured event stream.
    fn emit_progress(&mut self, open: u64, outcome: Option<Outcome>) {
        if !crate::progress::delivery_active(self.cfg.progress_hook.as_ref()) {
            return;
        }
        self.last_progress_expanded = self.stats.expanded;
        self.last_progress_at = Instant::now();
        let snapshot = SearchProgress {
            elapsed: self.start.elapsed(),
            expanded: self.stats.expanded,
            generated: self.stats.generated,
            open,
            f_bound: self.current_f,
            viability_pruned: self.stats.viability_pruned,
            cut_pruned: self.stats.cut_pruned,
            dedup_hits: self.stats.dedup_hits,
            dead_write_pruned: self.stats.dead_write_pruned,
            value_flow_pruned: self.stats.value_flow_pruned,
            distance_table_skipped: self.stats.distance_table_skipped,
            finished: outcome.is_some(),
            outcome,
            spilled_open: self.spill.as_ref().map_or(0, |t| t.spilled_open),
            spilled_closed: self.spill.as_ref().map_or(0, |t| t.spilled_closed),
            ddd_dedup_hits: self.spill.as_ref().map_or(0, |t| t.ddd_dedup_hits),
            resumed_frontier_states: self.stats.resumed_frontier_states,
            resident_bytes: self.resident_bytes(),
            spilled_bytes: self.spill.as_ref().map_or(0, |t| t.spilled_bytes),
            shards: vec![ShardProgress {
                interned_states: self.arena.len() as u64,
                arena_bytes: self.arena.assign_bytes(),
                open_depth: open,
            }],
        };
        crate::progress::deliver(self.cfg.progress_hook.as_ref(), &snapshot);
    }
}

/// Adds one run's totals to the process-wide metric families. Shared by the
/// sequential engine and the parallel coordinator.
pub(crate) fn publish_search_metrics(stats: &SearchStats, outcome: Outcome) {
    let r = sortsynth_obs::registry();
    r.counter(
        names::SEARCH_RUNS_TOTAL,
        "Search engine runs completed (any outcome).",
    )
    .inc();
    r.counter(
        names::SEARCH_EXPANDED_TOTAL,
        "States expanded across all searches.",
    )
    .add(stats.expanded);
    r.counter(
        names::SEARCH_GENERATED_TOTAL,
        "States generated across all searches.",
    )
    .add(stats.generated);
    r.counter(
        names::SEARCH_VIABILITY_PRUNED_TOTAL,
        "States pruned by the viability filter.",
    )
    .add(stats.viability_pruned);
    r.counter(
        names::SEARCH_CUT_PRUNED_TOTAL,
        "States pruned by cost-bound cuts.",
    )
    .add(stats.cut_pruned);
    r.counter(
        names::SEARCH_DEAD_WRITE_PRUNED_TOTAL,
        "States pruned by the dead-write cut.",
    )
    .add(stats.dead_write_pruned);
    r.counter(
        names::SEARCH_VALUE_FLOW_PRUNED_TOTAL,
        "States pruned by the symbolic value-flow cut.",
    )
    .add(stats.value_flow_pruned);
    r.counter(
        names::SEARCH_DEDUP_HITS_TOTAL,
        "Duplicate states dropped by the closed set.",
    )
    .add(stats.dedup_hits);
    r.counter(
        names::SEARCH_INTERNED_STATES_TOTAL,
        "Unique canonical states interned into search arenas.",
    )
    .add(stats.interned_states);
    r.counter(
        names::SEARCH_SCRATCH_REUSED_TOTAL,
        "Expansions served from already-reserved scratch capacity.",
    )
    .add(stats.scratch_reused);
    r.counter(
        names::SEARCH_STALE_POPS_TOTAL,
        "Open entries discarded at pop as stale (reopened or bound-overtaken).",
    )
    .add(stats.stale_pops);
    r.counter(
        names::SEARCH_BUCKET_SCANS_TOTAL,
        "Empty-bucket cursor scans performed by bucketed open lists.",
    )
    .add(stats.bucket_scans);
    r.counter(
        names::SEARCH_SWAR_BATCHES_TOTAL,
        "SWAR lane passes taken by batch expansion.",
    )
    .add(stats.swar_batches);
    r.gauge(
        names::SEARCH_ARENA_BYTES,
        "Assignment bytes held by the last run's state arena(s).",
    )
    .set(stats.arena_bytes as i64);
    r.gauge(
        names::SEARCH_RESIDENT_BYTES,
        "Estimated resident search footprint at end of the last run.",
    )
    .set(stats.resident_bytes as i64);
    r.gauge(
        names::SEARCH_SPILLED_BYTES,
        "Bytes held by the last run's spill segments.",
    )
    .set(stats.spilled_bytes as i64);
    r.gauge(
        names::SEARCH_SPILL_SEGMENTS,
        "Spill segment files created by the last run.",
    )
    .set(stats.spill_segments as i64);
    r.counter(
        names::SEARCH_SPILLED_OPEN_TOTAL,
        "Frontier spans written to spill segments.",
    )
    .add(stats.spilled_open);
    r.counter(
        names::SEARCH_SPILLED_CLOSED_TOTAL,
        "Closed-map entries evicted to spill segments.",
    )
    .add(stats.spilled_closed);
    r.counter(
        names::SEARCH_DDD_DEDUP_HITS_TOTAL,
        "Frontier states deleted by delayed duplicate detection.",
    )
    .add(stats.ddd_dedup_hits);
    r.counter(
        names::SEARCH_RESUMED_FRONTIER_TOTAL,
        "Frontier states restored from resume journals.",
    )
    .add(stats.resumed_frontier_states);
    if stats.distance_table_skipped {
        r.counter(
            names::SEARCH_DISTANCE_TABLE_SKIPPED_TOTAL,
            "Heuristic lookups that skipped the distance table.",
        )
        .inc();
    }
    if outcome == Outcome::Cancelled {
        r.counter(
            names::SEARCH_CANCELLED_TOTAL,
            "Searches cancelled via SearchBudget.",
        )
        .inc();
    }
    sortsynth_obs::profile::publish_phase_nanos(&stats.phase_nanos);
    if !stats.shards.is_empty() {
        r.counter(
            names::SEARCH_PARALLEL_RUNS_TOTAL,
            "Search runs executed by the sharded parallel engine.",
        )
        .inc();
        r.counter(
            names::SEARCH_ROUTED_TOTAL,
            "Successors routed across shard boundaries.",
        )
        .add(stats.routed);
        r.counter(
            names::SEARCH_STEALS_TOTAL,
            "Open entries stolen by idle parallel workers.",
        )
        .add(stats.steals);
    }
}

/// Expansion-side counters accumulated by one worker (or the sequential
/// engine) and folded into [`SearchStats`] by the caller.
#[derive(Default)]
pub(crate) struct WorkerCounters {
    pub expanded: u64,
    pub generated: u64,
    pub viability_pruned: u64,
    pub cut_pruned: u64,
    pub dead_write_pruned: u64,
    pub value_flow_pruned: u64,
    pub swar_batches: u64,
}

/// Whether the symbolic value-flow cut may discard `instr` as a successor of
/// `state` without losing any reachable state.
///
/// The unconditional half fires when the instruction is effect-free on every
/// assignment: the successor *is* the parent (same canonical set), which the
/// search already expanded one layer earlier, so dropping the edge removes
/// only a guaranteed dedup hit. With `subsume` the cut additionally fires
/// when the instruction selects the source value in every assignment — the
/// successor then duplicates the one reached by `mov dst, src`, which the
/// same action sweep generates (callers must ensure the full action set is
/// in play and duplicate DAG edges are not wanted).
fn value_flow_redundant(state: &[MachineState], instr: Instr, subsume: bool) -> bool {
    if state.iter().all(|&a| a.step(instr) == a) {
        return true;
    }
    if !subsume {
        return false;
    }
    match instr.op {
        Op::Cmovl => state.iter().all(|&a| a.lt_flag()),
        Op::Cmovg => state.iter().all(|&a| a.gt_flag()),
        Op::Min => state.iter().all(|&a| a.reg(instr.src) <= a.reg(instr.dst)),
        Op::Max => state.iter().all(|&a| a.reg(instr.src) >= a.reg(instr.dst)),
        _ => false,
    }
}

/// Pre-sizing hint for a bucketed open list: f-values are bounded by
/// `bound + max_dist` when the admissible distance heuristic is in play,
/// and stay near the depth bound otherwise. Clamped to keep an unbounded
/// run (`bound == u32::MAX`) from pre-allocating absurdly; the queue
/// grows past the hint on demand either way (see [`crate::BucketQueue`]).
pub(crate) fn open_f_hint(bound: u32, table: Option<&DistanceTable>) -> usize {
    let depth = if bound == u32::MAX {
        64
    } else {
        bound as usize + 1
    };
    let dist = table.map_or(0, |t| t.max_finite_dist() as usize);
    (depth + dist + 1).min(4096)
}
