//! Canonical search states: sets of register assignments.
//!
//! A search state represents a partial program by its *effect*: the set of
//! register assignments obtained by running the partial program on every
//! input permutation (§3 of the paper). Two partial programs with the same
//! effect are interchangeable, so states are canonicalized (assignments
//! sorted lexicographically and deduplicated, §3.6) and hashed for
//! deduplication.

use sortsynth_isa::{Instr, Machine, MachineState};

/// A canonicalized set of register assignments — one search state.
///
/// Invariant: `assigns` is sorted ascending by packed bits and contains no
/// duplicates. [`StateSet::initial`] and [`StateSet::apply`] maintain this.
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_search::StateSet;
///
/// let machine = Machine::new(3, 1, IsaMode::Cmov);
/// let init = StateSet::initial(&machine);
/// assert_eq!(init.assign_count(), 6);
/// assert_eq!(init.perm_count(&machine), 6);
/// assert!(!init.is_goal(&machine));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateSet {
    assigns: Box<[MachineState]>,
}

impl StateSet {
    /// The initial state: one register assignment per input permutation of
    /// `1..=n` (§3, "the initial state consists of register assignments for
    /// each possible permutation").
    pub fn initial(machine: &Machine) -> Self {
        Self::from_assignments(machine.initial_states())
    }

    /// Builds a canonical state from arbitrary assignments (sorts + dedups).
    pub fn from_assignments(mut assigns: Vec<MachineState>) -> Self {
        canonicalize_tail(&mut assigns, 0);
        StateSet {
            assigns: assigns.into_boxed_slice(),
        }
    }

    /// The canonical assignments, sorted ascending.
    pub fn assignments(&self) -> &[MachineState] {
        &self.assigns
    }

    /// Number of distinct register assignments (§3.1's second heuristic:
    /// includes scratch registers and flags).
    pub fn assign_count(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Number of distinct *permutations* remaining: distinct projections of
    /// the assignments onto the value registers `r1..rn` (§3.1's first and
    /// §3.5's cut heuristic). Scratch registers and flags are ignored.
    pub fn perm_count(&self, machine: &Machine) -> u32 {
        let mut scratch = ProjScratch::default();
        perm_count_slice(
            &self.assigns,
            value_reg_mask(machine),
            &mut scratch,
            u32::MAX,
        )
    }

    /// Executes `instr` on every assignment and re-canonicalizes.
    pub fn apply(&self, instr: Instr) -> StateSet {
        let assigns: Vec<MachineState> = self.assigns.iter().map(|a| a.step(instr)).collect();
        Self::from_assignments(assigns)
    }

    /// Whether every assignment is sorted — the final-state test (§3.4).
    pub fn is_goal(&self, machine: &Machine) -> bool {
        self.assigns.iter().all(|&a| machine.is_sorted(a))
    }

    /// Whether some assignment has irrecoverably erased one of the values
    /// `1..=n` (§3.3): such a state can never be completed to a correct
    /// program.
    pub fn has_erased_value(&self, machine: &Machine) -> bool {
        self.assigns.iter().any(|a| assignment_erased(machine, *a))
    }

    /// A 128-bit content hash for deduplication (§3.6). Collision probability
    /// over even billions of states is negligible.
    pub fn key(&self) -> u128 {
        key_of(&self.assigns)
    }
}

/// The [`StateSet::key`] content hash over a canonical assignment slice.
/// Shared with the expansion hot loop, which hashes successors in the
/// scratch buffer before they become `StateSet`s (if they ever do).
pub(crate) fn key_of(assigns: &[MachineState]) -> u128 {
    // Two independent FxHash-style accumulators with distinct odd
    // multipliers, combined into 128 bits.
    const K1: u64 = 0x517c_c1b7_2722_0a95;
    const K2: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h1: u64 = 0x243f_6a88_85a3_08d3;
    let mut h2: u64 = 0x1319_8a2e_0370_7344;
    for a in assigns {
        let x = a.bits();
        h1 = (h1.rotate_left(5) ^ x).wrapping_mul(K1);
        h2 = (h2.rotate_left(7) ^ x).wrapping_mul(K2);
    }
    // Finalize both halves. The multiply chains never diffuse the *last*
    // element's high bits downward (a wrapping multiply only carries
    // upward), so without this the two halves differ only in their top
    // bits when states differ only in trailing flag bits — and the
    // [`narrow_key`] xor-fold cancels exactly those, colliding distinct
    // states. Caught by the key_width collision fuzz.
    h1 = mix(h1 ^ assigns.len() as u64);
    h2 = mix(h2);
    ((h1 as u128) << 64) | h2 as u128
}

/// Splitmix64 finalizer: full avalanche, so every input bit reaches every
/// output bit before the halves are folded.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a 128-bit content key to the 64-bit closed-set key used by
/// [`crate::KeyWidth::U64`]. This is exactly the xor-fold the identity
/// hasher applies for bucket selection, so narrowing changes the stored key
/// width without changing any probe sequence. Public so the collision-fuzz
/// suite and benches can probe the fold directly.
#[inline]
pub fn narrow_key(key: u128) -> u64 {
    (key >> 64) as u64 ^ key as u64
}

/// Canonicalizes a span in place (sorts ascending, dedups adjacent
/// duplicates) and returns the deduplicated length; the elements past the
/// returned length are stale. The expansion loop uses this to canonicalize
/// each successor's span inside one shared scratch buffer — deferred to a
/// second pass after the whole action sweep, so the profiler can attribute
/// step/filter time and canonicalize/hash time with two timestamps per
/// expansion instead of two per candidate.
pub(crate) fn canonicalize_slice(s: &mut [MachineState]) -> usize {
    crate::netsort::sort_by_size(s, MachineState::from_bits(u64::MAX));
    let mut w = 0;
    for r in 0..s.len() {
        if w == 0 || s[r] != s[w - 1] {
            s[w] = s[r];
            w += 1;
        }
    }
    w
}

/// Canonicalizes `v[start..]` in place (sorts ascending, removes adjacent
/// duplicates, truncates). `start == 0` canonicalizes the whole vector.
pub(crate) fn canonicalize_tail(v: &mut Vec<MachineState>, start: usize) {
    let kept = canonicalize_slice(&mut v[start..]);
    v.truncate(start + kept);
}

/// Reusable scratch for [`perm_count_slice`]. The epoch-stamp half serves
/// values that fit 16 bits (machines through n = 4): a lazily-allocated
/// stamp per value, where "seen this call" is `stamp[v] == epoch`.
/// Bumping the epoch invalidates every stamp at once, so there is no
/// per-call reset pass — and unlike a shared-word bitmap, distinct values
/// never touch the same slot, so the scan carries no store-to-load
/// dependency between elements (only true duplicates revisit a slot).
/// Only the slots actually probed (≤ span length per call, clustered in
/// the low projection range) occupy cache. Wider masks fall back to the
/// sort-and-dedup path over `proj`.
#[derive(Default)]
pub(crate) struct ProjScratch {
    proj: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ProjScratch {
    /// Combined reserved capacity, for the scratch-reuse counter.
    pub fn capacity(&self) -> usize {
        self.proj.capacity() + self.stamp.len()
    }

    /// Starts a fresh count: bumps the epoch (clearing the stamp array on
    /// the ~never wrap) and returns the stamp slots with the new epoch.
    /// Values stamped `== epoch` have been seen since this call.
    #[inline]
    pub(crate) fn stamp_begin(&mut self) -> (&mut [u32], u32) {
        if self.stamp.is_empty() {
            self.stamp.resize(1 << 16, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        (&mut self.stamp, self.epoch)
    }
}

/// Counts distinct `mask`-projections of `assigns` using `scratch` (the
/// permutation count when `mask` covers the value registers).
///
/// `cap` bounds the useful answer: once the count *exceeds* `cap` the scan
/// stops and returns the running count (some value `> cap`). Callers that
/// only compare the count against a cut threshold pass that threshold and
/// skip the tail of every span the cut will discard anyway; `u32::MAX`
/// counts exactly. Any return `<= cap` is always the exact count.
pub(crate) fn perm_count_slice(
    assigns: &[MachineState],
    mask: u64,
    scratch: &mut ProjScratch,
    cap: u32,
) -> u32 {
    if mask <= u16::MAX as u64 {
        let (stamp, epoch) = scratch.stamp_begin();
        let mut count = 0u32;
        // Chunked cap check: the fixed-size inner loop stays branch-lean
        // (exit tests per element would chain every iteration's branch on
        // the preceding stamp load), while the between-chunk test still
        // abandons spans the cut is going to discard.
        let mut chunks = assigns.chunks(8);
        for c in &mut chunks {
            for a in c {
                let v = (a.bits() & mask) as usize;
                let s = &mut stamp[v];
                count += u32::from(*s != epoch);
                *s = epoch;
            }
            if count > cap {
                break;
            }
        }
        count
    } else {
        let proj = &mut scratch.proj;
        proj.clear();
        proj.extend(assigns.iter().map(|a| a.bits() & mask));
        crate::netsort::sort_by_size(proj, u64::MAX);
        proj.dedup();
        proj.len() as u32
    }
}

/// Bitmask selecting the value registers `r1..rn` of a packed state (drops
/// scratch registers and flags).
pub(crate) fn value_reg_mask(machine: &Machine) -> u64 {
    let bits = 4 * machine.n() as u32;
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Whether `assign` is missing one of the values `1..=n` across *all*
/// registers (value erased ⇒ unsortable).
pub(crate) fn assignment_erased(machine: &Machine, assign: MachineState) -> bool {
    let mut present = 0u16;
    for r in machine.regs() {
        present |= 1 << assign.reg(r);
    }
    let needed: u16 = ((1u16 << machine.n()) - 1) << 1; // bits 1..=n
    present & needed != needed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Op, Reg};

    fn machine3() -> Machine {
        Machine::new(3, 1, IsaMode::Cmov)
    }

    fn instr(op: Op, dst: u8, src: u8) -> Instr {
        Instr::new(op, Reg::new(dst), Reg::new(src))
    }

    #[test]
    fn initial_counts() {
        let m = machine3();
        let s = StateSet::initial(&m);
        assert_eq!(s.assign_count(), 6);
        assert_eq!(s.perm_count(&m), 6);
        assert!(!s.is_goal(&m));
        assert!(!s.has_erased_value(&m));
    }

    #[test]
    fn canonicalization_sorts_and_dedups() {
        let m = machine3();
        let a = m.initial_state(&[1, 2, 3]);
        let b = m.initial_state(&[2, 1, 3]);
        let s1 = StateSet::from_assignments(vec![b, a, a]);
        let s2 = StateSet::from_assignments(vec![a, b]);
        assert_eq!(s1, s2);
        assert_eq!(s1.key(), s2.key());
        assert_eq!(s1.assign_count(), 2);
    }

    #[test]
    fn apply_reduces_permutations() {
        // The paper's §3.5 example: a compare-and-swap of r1/r2 halves the
        // distinct permutations of the 3-element initial state projections.
        let m = machine3();
        let s = StateSet::initial(&m);
        let cas = [
            instr(Op::Mov, 3, 1),
            instr(Op::Cmp, 0, 1),
            instr(Op::Cmovg, 1, 0),
            instr(Op::Cmovg, 0, 3),
        ];
        let after = cas.iter().fold(s, |st, &i| st.apply(i));
        assert_eq!(after.perm_count(&m), 3); // r1 <= r2 holds in all
        assert!(!after.has_erased_value(&m));
    }

    #[test]
    fn goal_detection() {
        let m = machine3();
        let sorted = m.initial_state(&[1, 2, 3]);
        let mut other = sorted;
        other.set_reg(Reg::new(3), 2);
        other.set_flags(true, false);
        let s = StateSet::from_assignments(vec![sorted, other]);
        assert!(s.is_goal(&m));
    }

    #[test]
    fn erasure_detection() {
        let m = machine3();
        let s = StateSet::initial(&m);
        // mov r1 r2 erases r1's value in every assignment (scratch is 0).
        let after = s.apply(instr(Op::Mov, 0, 1));
        assert!(after.has_erased_value(&m));
        // mov s1 r2 erases nothing (scratch held no needed value).
        let after = s.apply(instr(Op::Mov, 3, 1));
        assert!(!after.has_erased_value(&m));
    }

    #[test]
    fn perm_count_ignores_scratch_and_flags() {
        let m = machine3();
        let a = m.initial_state(&[1, 2, 3]);
        let mut b = a;
        b.set_reg(Reg::new(3), 3);
        b.set_flags(false, true);
        let s = StateSet::from_assignments(vec![a, b]);
        assert_eq!(s.assign_count(), 2);
        assert_eq!(s.perm_count(&m), 1);
    }

    #[test]
    fn keys_differ_for_different_states() {
        let m = machine3();
        let s = StateSet::initial(&m);
        let t = s.apply(instr(Op::Cmp, 0, 1));
        assert_ne!(s.key(), t.key());
    }
}
