//! Solution-space analysis: command signatures, scoring, and the §5.3
//! stratified sampling strategy.

use std::collections::BTreeMap;

use sortsynth_isa::{sampling_score, Instr, Op, Program};

/// The *command combination* of a program: how often each opcode occurs.
///
/// The paper observes (§5.1) that of the 5602 optimal n = 3 kernels only 23
/// are distinct "regarding their command combination", i.e. modulo
/// instruction order and register renaming; the opcode multiset is the
/// canonical representative used for that count.
///
/// Order: `(mov, cmp, cmovl, cmovg, min, max)`.
pub fn command_signature(prog: &[Instr]) -> [u32; 6] {
    let mut sig = [0u32; 6];
    for instr in prog {
        let slot = match instr.op {
            Op::Mov => 0,
            Op::Cmp => 1,
            Op::Cmovl => 2,
            Op::Cmovg => 3,
            Op::Min => 4,
            Op::Max => 5,
        };
        sig[slot] += 1;
    }
    sig
}

/// Number of distinct [`command_signature`]s among `progs`.
pub fn distinct_command_signatures<'a>(progs: impl IntoIterator<Item = &'a Program>) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for p in progs {
        seen.insert(command_signature(p));
    }
    seen.len()
}

/// Groups programs by their §5.3 sampling score
/// (`weighted instruction cost + critical path`), ascending.
///
/// The paper reports scores `{55, 58, 61, 64, 67, 70}` for the n = 4
/// solution space and samples only from the two lowest strata.
pub fn score_strata(progs: Vec<Program>) -> BTreeMap<u32, Vec<Program>> {
    let mut strata: BTreeMap<u32, Vec<Program>> = BTreeMap::new();
    for p in progs {
        strata.entry(sampling_score(&p)).or_default().push(p);
    }
    strata
}

/// The §5.3 sampling strategy: take up to `per_stratum` programs from each
/// of the `strata_count` lowest-score strata. Deterministic: programs are
/// taken evenly spaced within each stratum, so the sample covers the
/// stratum rather than its prefix.
pub fn sample_lowest_strata(
    progs: Vec<Program>,
    strata_count: usize,
    per_stratum: usize,
) -> Vec<Program> {
    let strata = score_strata(progs);
    let mut out = Vec::new();
    for (_score, group) in strata.into_iter().take(strata_count) {
        if group.len() <= per_stratum {
            out.extend(group);
        } else {
            let step = group.len() as f64 / per_stratum as f64;
            let mut taken = 0;
            let mut cursor = 0.0f64;
            let mut group = group;
            // Evenly spaced indices; collected back-to-front so we can
            // swap_remove without disturbing earlier picks.
            let mut indices: Vec<usize> = Vec::with_capacity(per_stratum);
            while taken < per_stratum {
                indices.push(cursor as usize);
                cursor += step;
                taken += 1;
            }
            for &i in indices.iter().rev() {
                out.push(group.swap_remove(i.min(group.len() - 1)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    fn parse(m: &Machine, text: &str) -> Program {
        m.parse_program(text).unwrap()
    }

    #[test]
    fn signature_counts_opcodes() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let p = parse(&m, "mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1");
        assert_eq!(command_signature(&p), [1, 1, 0, 2, 0, 0]);
    }

    #[test]
    fn distinct_signatures_merge_renamings() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        // Same opcode multiset, different registers/order.
        let a = parse(&m, "mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1");
        let b = parse(&m, "mov s1 r1; cmp r1 r2; cmovg r1 r2; cmovg r2 s1");
        let c = parse(&m, "cmp r1 r2; mov s1 r2; cmovg r2 r1; cmovg r1 s1");
        let d = parse(&m, "mov s1 r2; cmp r1 r2; cmovl r2 r1; cmovg r1 s1");
        assert_eq!(distinct_command_signatures([&a, &b, &c].into_iter()), 1);
        assert_eq!(distinct_command_signatures([&a, &d].into_iter()), 2);
    }

    #[test]
    fn strata_are_ascending_and_partition() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let progs = vec![
            parse(&m, "mov s1 r2"),
            parse(&m, "cmp r1 r2; cmovl r1 r2"),
            parse(&m, "mov s1 r2; mov s1 r1"),
        ];
        let strata = score_strata(progs.clone());
        let total: usize = strata.values().map(Vec::len).sum();
        assert_eq!(total, progs.len());
        let keys: Vec<u32> = strata.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn sampling_respects_limits() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        // Ten score-2 programs (single mov variants) and one score-8 one.
        let mut progs = Vec::new();
        for _ in 0..10 {
            progs.push(parse(&m, "mov s1 r2"));
        }
        progs.push(parse(&m, "cmp r1 r2; cmovl r1 r2"));
        let sample = sample_lowest_strata(progs, 1, 4);
        assert_eq!(sample.len(), 4);
        assert!(sample.iter().all(|p| p.len() == 1));

        // Asking for more than a stratum holds returns the whole stratum.
        let m2 = Machine::new(2, 1, IsaMode::Cmov);
        let progs = vec![parse(&m2, "mov s1 r2")];
        assert_eq!(sample_lowest_strata(progs, 2, 100).len(), 1);
    }
}
