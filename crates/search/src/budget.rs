//! Cooperative search budgets: absolute deadlines and external cancellation.
//!
//! A [`SearchBudget`] is threaded into the engine through
//! [`crate::SynthesisConfig::search_budget`] and is checked at the engine's
//! existing limit points (per expansion in the serial paths, per layer in
//! parallel layered mode). It complements the relative
//! [`crate::SynthesisConfig::time_limit`]:
//!
//! * a budget carries an **absolute** deadline, so a service can derive it
//!   once from a request's arrival time and hand it down through queueing
//!   delays without the clock restarting when the search starts, and
//! * a budget can be **cancelled from another thread** via its
//!   [`CancelHandle`], which is how a request server revokes work whose
//!   client has gone away.
//!
//! Expiry and cancellation are cooperative: the engine returns with
//! [`crate::Outcome::TimeLimit`] or [`crate::Outcome::Cancelled`] and the
//! partial [`crate::SearchStats`] collected so far; no thread is killed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline and/or cancellation token bounding one synthesis run.
///
/// Cloning shares the underlying cancellation flags: cancelling through a
/// [`CancelHandle`] stops every search running under a clone of this budget.
///
/// Budgets *chain*: calling [`SearchBudget::cancellable`] on a budget that
/// already carries a flag adds a second one, and the budget trips when
/// *either* is set. This is how the portfolio executor derives per-race
/// budgets from a request budget — the service can still revoke the whole
/// request, while the race separately cancels losing arms.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    deadline: Option<Instant>,
    cancel: Vec<Arc<AtomicBool>>,
}

/// Remote control for a [`SearchBudget`]: lets another thread request that
/// the search stop at its next limit check.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl SearchBudget {
    /// A budget that never expires and cannot be cancelled.
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// A budget expiring at an absolute instant.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchBudget {
            deadline: Some(deadline),
            cancel: Vec::new(),
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Attaches a fresh cancellation flag, returning the handle that trips
    /// it. Any flags already attached stay live: the budget is exhausted
    /// when *any* of them is set, so derived budgets still honour their
    /// parent's cancellation.
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel.push(Arc::clone(&flag));
        (self, CancelHandle { flag })
    }

    /// The raw cancellation flags, for cooperative engines outside this
    /// crate (e.g. the SAT core) that poll stop flags directly rather than
    /// threading a `SearchBudget` through their API.
    pub fn stop_flags(&self) -> Vec<Arc<AtomicBool>> {
        self.cancel.clone()
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is set,
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether cancellation has been requested through any attached
    /// [`CancelHandle`].
    pub fn is_cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the search should stop (expired or cancelled).
    pub fn is_exhausted(&self) -> bool {
        self.is_cancelled() || self.is_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let budget = SearchBudget::unlimited();
        assert!(!budget.is_exhausted());
        assert!(budget.deadline().is_none());
        assert!(budget.remaining().is_none());
    }

    #[test]
    fn deadline_expiry() {
        let budget = SearchBudget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(budget.is_expired());
        assert!(budget.is_exhausted());
        assert_eq!(budget.remaining(), Some(Duration::ZERO));

        let future = SearchBudget::with_timeout(Duration::from_secs(3600));
        assert!(!future.is_expired());
        assert!(future.remaining().unwrap() > Duration::from_secs(3599));
    }

    #[test]
    fn chained_flags_both_cancel() {
        // A child budget derived from an already-cancellable parent trips on
        // either handle (service-revokes-request vs race-cancels-arm).
        let (parent, outer) = SearchBudget::unlimited().cancellable();
        let (child, inner) = parent.clone().cancellable();
        assert_eq!(child.stop_flags().len(), 2);
        assert!(!child.is_cancelled());
        inner.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "inner flag is child-only");

        let (child2, _inner2) = parent.clone().cancellable();
        outer.cancel();
        assert!(child2.is_cancelled(), "parent flag propagates to children");
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        let clone = budget.clone();
        assert!(!budget.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(budget.is_cancelled());
        assert!(clone.is_cancelled());
        assert!(clone.is_exhausted());
    }
}
