//! Cooperative search budgets: absolute deadlines and external cancellation.
//!
//! A [`SearchBudget`] is threaded into the engine through
//! [`crate::SynthesisConfig::search_budget`] and is checked at the engine's
//! existing limit points (per expansion in the serial paths, per layer in
//! parallel layered mode). It complements the relative
//! [`crate::SynthesisConfig::time_limit`]:
//!
//! * a budget carries an **absolute** deadline, so a service can derive it
//!   once from a request's arrival time and hand it down through queueing
//!   delays without the clock restarting when the search starts, and
//! * a budget can be **cancelled from another thread** via its
//!   [`CancelHandle`], which is how a request server revokes work whose
//!   client has gone away.
//!
//! Expiry and cancellation are cooperative: the engine returns with
//! [`crate::Outcome::TimeLimit`] or [`crate::Outcome::Cancelled`] and the
//! partial [`crate::SearchStats`] collected so far; no thread is killed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline and/or cancellation token bounding one synthesis run.
///
/// Cloning shares the underlying cancellation flag: cancelling through a
/// [`CancelHandle`] stops every search running under a clone of this budget.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

/// Remote control for a [`SearchBudget`]: lets another thread request that
/// the search stop at its next limit check.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl SearchBudget {
    /// A budget that never expires and cannot be cancelled.
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// A budget expiring at an absolute instant.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchBudget {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation flag, returning the handle that trips it.
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel = Some(Arc::clone(&flag));
        (self, CancelHandle { flag })
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is set,
    /// zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether cancellation has been requested through a [`CancelHandle`].
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the search should stop (expired or cancelled).
    pub fn is_exhausted(&self) -> bool {
        self.is_cancelled() || self.is_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let budget = SearchBudget::unlimited();
        assert!(!budget.is_exhausted());
        assert!(budget.deadline().is_none());
        assert!(budget.remaining().is_none());
    }

    #[test]
    fn deadline_expiry() {
        let budget = SearchBudget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(budget.is_expired());
        assert!(budget.is_exhausted());
        assert_eq!(budget.remaining(), Some(Duration::ZERO));

        let future = SearchBudget::with_timeout(Duration::from_secs(3600));
        assert!(!future.is_expired());
        assert!(future.remaining().unwrap() > Duration::from_secs(3599));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let (budget, handle) = SearchBudget::unlimited().cancellable();
        let clone = budget.clone();
        assert!(!budget.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(budget.is_cancelled());
        assert!(clone.is_cancelled());
        assert!(clone.is_exhausted());
    }
}
