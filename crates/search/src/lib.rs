//! Enumerative synthesis of branchless sorting kernels — the core
//! contribution of Ullrich & Hack, *Synthesis of Sorting Kernels* (CGO
//! 2025), §3.
//!
//! The synthesizer explores the space of straight-line `mov`/`cmp`/`cmovl`/
//! `cmovg` (or `mov`/`min`/`max`) programs with a Dijkstra-style layered
//! enumeration or an A* best-first search over *sets of register
//! assignments*. Six ingredients (one per subsection of the paper's §3) make
//! the search practical:
//!
//! 1. **Open-state selection** — layered by program length, or best-first by
//!    `g + h` ([`Strategy`], [`Heuristic`]).
//! 2. **Instruction selection** — symmetry-reduced action set, optionally
//!    restricted to precomputed per-assignment optimal first moves
//!    ([`SynthesisConfig::optimal_instrs_only`]).
//! 3. **Viability** — erased-value detection and a per-assignment
//!    remaining-budget check against the precomputed [`DistanceTable`].
//! 4. **Correctness** — a state is a goal when every register assignment is
//!    sorted.
//! 5. **Cuts** — the non-optimality-preserving permutation-count cut
//!    ([`Cut`]).
//! 6. **Deduplication** — canonical hashing of assignment sets; every
//!    minimal-length parent edge is kept, so the search produces a DAG whose
//!    root-to-goal paths are exactly the distinct optimal kernels
//!    ([`SolutionDag`]).
//!
//! # Quick start
//!
//! ```
//! use sortsynth_isa::{IsaMode, Machine};
//! use sortsynth_search::{synthesize, SynthesisConfig};
//!
//! // Synthesize an optimal kernel sorting 2 values (the 4-instruction CAS).
//! let machine = Machine::new(2, 1, IsaMode::Cmov);
//! let result = synthesize(&SynthesisConfig::best(machine.clone()));
//! let kernel = result.first_program().expect("a kernel exists");
//! assert_eq!(kernel.len(), 4);
//! assert!(machine.is_correct(&kernel));
//! ```

mod bucket;
mod budget;
mod config;
mod distance;
mod engine;
mod hashers;
mod heuristics;
mod intern;
mod lower_bound;
mod netsort;
mod parallel;
mod progress;
mod sizing;
mod solutions;
mod spill;
mod state;

pub use bucket::BucketQueue;
pub use budget::{CancelHandle, SearchBudget};
pub use config::{Cut, Heuristic, KeyWidth, OpenList, Strategy, SynthesisConfig};
pub use distance::{ActionSet, DistanceTable, UNSORTABLE};
pub use engine::{
    synthesize, try_synthesize, Outcome, ProgressSample, SearchStats, ShardStats, SolutionDag,
    SynthesisResult,
};
pub use heuristics::heuristic_value;
pub use lower_bound::{prove_no_solution, prove_optimal_length, BoundVerdict, LowerBoundResult};
pub use progress::{ProgressHook, SearchProgress, ShardProgress};
pub use solutions::{
    command_signature, distinct_command_signatures, sample_lowest_strata, score_strata,
};
pub use spill::ResumeError;
pub use state::{narrow_key, StateSet};

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::{IsaMode, Machine};

    fn check_kernel(machine: &Machine, cfg: SynthesisConfig, expected_len: u32) {
        let result = synthesize(&cfg);
        assert_eq!(
            result.found_len,
            Some(expected_len),
            "outcome {:?}, stats {:?}",
            result.outcome,
            result.stats
        );
        let prog = result.first_program().expect("solution");
        assert_eq!(prog.len() as u32, expected_len);
        assert!(
            machine.is_correct(&prog),
            "{}",
            machine.format_program(&prog)
        );
    }

    #[test]
    fn n2_layered_finds_optimal_cas() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        check_kernel(&m, SynthesisConfig::new(m.clone()), 4);
    }

    #[test]
    fn n2_astar_variants_find_optimal_cas() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        for heuristic in [
            Heuristic::None,
            Heuristic::PermCount,
            Heuristic::AssignCount,
            Heuristic::MaxRemaining,
        ] {
            check_kernel(
                &m,
                SynthesisConfig::new(m.clone()).strategy(Strategy::AStar { heuristic }),
                4,
            );
        }
    }

    #[test]
    fn n3_best_config_finds_length_11() {
        // The paper's headline result for n = 3: optimal kernels have 11
        // instructions (§2.3, §5.3).
        let m = Machine::new(3, 1, IsaMode::Cmov);
        check_kernel(&m, SynthesisConfig::best(m.clone()), 11);
    }

    #[test]
    fn n3_layered_certifies_length_11() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let cfg = SynthesisConfig::new(m.clone())
            .budget_viability(true)
            .max_len(11);
        let result = synthesize(&cfg);
        assert_eq!(result.found_len, Some(11));
        assert!(result.minimal_certified);
    }

    #[test]
    fn n3_minmax_finds_length_8() {
        // §5.4: the synthesized min/max kernel for n = 3 has 8 instructions
        // (one movdqa shorter than the 9-instruction sorting network).
        let m = Machine::new(3, 1, IsaMode::MinMax);
        check_kernel(&m, SynthesisConfig::best(m.clone()), 8);
    }

    #[test]
    fn n2_all_solutions_dag_counts_paths() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let cfg = SynthesisConfig::new(m.clone()).all_solutions(true);
        let result = synthesize(&cfg);
        assert_eq!(result.outcome, Outcome::SolvedAll);
        let count = result.solution_count();
        assert!(count >= 1);
        let progs = result.dag.programs(usize::MAX);
        assert_eq!(progs.len() as u64, count, "enumeration matches DP count");
        for p in &progs {
            assert_eq!(p.len(), 4);
            assert!(m.is_correct(p), "{}", m.format_program(p));
        }
        // All enumerated programs are distinct.
        let mut unique = progs.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), progs.len());
    }

    #[test]
    fn cut_prunes_search() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let uncut = synthesize(
            &SynthesisConfig::new(m.clone())
                .strategy(Strategy::AStar {
                    heuristic: Heuristic::PermCount,
                })
                .budget_viability(true)
                .max_len(11),
        );
        let cut = synthesize(
            &SynthesisConfig::new(m.clone())
                .strategy(Strategy::AStar {
                    heuristic: Heuristic::PermCount,
                })
                .budget_viability(true)
                .cut(Cut::Factor(1.0))
                .max_len(11),
        );
        assert_eq!(uncut.found_len, Some(11));
        assert_eq!(cut.found_len, Some(11));
        assert!(
            cut.stats.generated <= uncut.stats.generated,
            "cut {} vs uncut {}",
            cut.stats.generated,
            uncut.stats.generated
        );
    }

    #[test]
    fn parallel_layered_agrees_with_serial() {
        let m = Machine::new(2, 2, IsaMode::Cmov);
        let serial = synthesize(&SynthesisConfig::new(m.clone()));
        let parallel = synthesize(&SynthesisConfig::new(m.clone()).threads(4));
        assert_eq!(serial.found_len, parallel.found_len);
        assert_eq!(parallel.stats.shards.len(), 4);
    }

    #[test]
    fn node_limit_stops_search() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let result = synthesize(&SynthesisConfig::new(m).node_limit(10));
        assert_eq!(result.outcome, Outcome::NodeLimit);
        assert!(result.found_len.is_none());
    }

    #[test]
    fn progress_samples_recorded() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let result = synthesize(&SynthesisConfig::best(m).progress_every(1));
        assert!(!result.stats.progress.is_empty());
    }
}
