//! Exhaustive lower-bound proofs on kernel length (§5.3).
//!
//! The paper establishes that the shortest n = 4 kernel has exactly 20
//! instructions by exhaustively enumerating the length-19 space and finding
//! no solution. This module packages that methodology: an
//! optimality-preserving exhaustion of all programs up to a length bound.

use std::time::Duration;

use sortsynth_isa::Machine;

use crate::config::{Strategy, SynthesisConfig};
use crate::engine::{synthesize, Outcome, SearchStats};

/// Verdict of a lower-bound exhaustion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// The space of programs of length ≤ the bound holds no sorting kernel:
    /// the bound is proven strict (`optimal > bound`).
    NoSolution,
    /// A kernel of length ≤ the bound exists (a witness was found).
    SolutionExists,
    /// The exhaustion hit a node or time budget before finishing; nothing is
    /// proven.
    Inconclusive,
}

/// Result of [`prove_no_solution`].
#[derive(Debug, Clone)]
pub struct LowerBoundResult {
    /// The inclusive length bound that was exhausted.
    pub bound: u32,
    /// What the run established.
    pub verdict: BoundVerdict,
    /// Search counters.
    pub stats: SearchStats,
}

/// Exhaustively searches all programs of length ≤ `bound` (layered search,
/// optimality-preserving pruning only: deduplication plus the per-assignment
/// budget check, both of which never discard the last representative of a
/// solution class).
///
/// Returns [`BoundVerdict::NoSolution`] iff the space was fully exhausted
/// without finding a kernel — the paper's method for proving the length-20
/// optimum at n = 4. Pass `node_limit`/`time_limit` to bound the attempt;
/// hitting a limit yields [`BoundVerdict::Inconclusive`].
pub fn prove_no_solution(
    machine: &Machine,
    bound: u32,
    node_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> LowerBoundResult {
    let mut cfg = SynthesisConfig::new(machine.clone())
        .strategy(Strategy::Layered)
        .budget_viability(true)
        .max_len(bound);
    cfg.node_limit = node_limit;
    cfg.time_limit = time_limit;
    debug_assert!(cfg.guarantees_minimal());

    let result = synthesize(&cfg);
    let verdict = match result.outcome {
        Outcome::Exhausted => BoundVerdict::NoSolution,
        Outcome::Solved | Outcome::SolvedAll => BoundVerdict::SolutionExists,
        Outcome::NodeLimit | Outcome::TimeLimit | Outcome::Cancelled => BoundVerdict::Inconclusive,
    };
    LowerBoundResult {
        bound,
        verdict,
        stats: result.stats,
    }
}

/// Proves that `len` is the exact optimal kernel length for `machine`:
/// exhausts length `len - 1` (no solution) and synthesizes a witness at
/// `len`.
///
/// Returns `None` if either phase hit the given budgets.
pub fn prove_optimal_length(
    machine: &Machine,
    len: u32,
    node_limit: Option<u64>,
    time_limit: Option<Duration>,
) -> Option<bool> {
    let below = prove_no_solution(machine, len - 1, node_limit, time_limit);
    match below.verdict {
        BoundVerdict::Inconclusive => return None,
        BoundVerdict::SolutionExists => return Some(false),
        BoundVerdict::NoSolution => {}
    }
    let mut cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(len);
    cfg.node_limit = node_limit;
    cfg.time_limit = time_limit;
    let at = synthesize(&cfg);
    match at.outcome {
        Outcome::Solved | Outcome::SolvedAll => Some(true),
        Outcome::Exhausted => Some(false),
        Outcome::NodeLimit | Outcome::TimeLimit | Outcome::Cancelled => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn n2_cmov_optimum_is_four() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        assert_eq!(
            prove_no_solution(&m, 3, None, None).verdict,
            BoundVerdict::NoSolution
        );
        assert_eq!(
            prove_no_solution(&m, 4, None, None).verdict,
            BoundVerdict::SolutionExists
        );
        assert_eq!(prove_optimal_length(&m, 4, None, None), Some(true));
        assert_eq!(prove_optimal_length(&m, 5, None, None), Some(false));
    }

    #[test]
    fn n2_minmax_optimum_is_three() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        assert_eq!(prove_optimal_length(&m, 3, None, None), Some(true));
    }

    #[test]
    fn budget_limits_yield_inconclusive() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let r = prove_no_solution(&m, 10, Some(5), None);
        assert_eq!(r.verdict, BoundVerdict::Inconclusive);
    }
}
