//! Per-assignment optimal-distance precomputation.
//!
//! Before the main search starts, the paper (§3.1, third heuristic; §3.2;
//! §3.3) precomputes, for every *single* register assignment, the length of
//! the shortest instruction sequence that sorts it. The space of single
//! assignments is tiny (`(n+1)^(n+m) · 3` flag configurations), so this is a
//! quick fixed-point computation. The table serves three purposes:
//!
//! * the admissible `MaxRemaining` search heuristic — the maximum per-
//!   assignment distance in a state lower-bounds the remaining program
//!   length;
//! * the §3.3 viability check — a state whose `g + max distance` exceeds the
//!   length budget can be pruned without losing optimality;
//! * the §3.2 action restriction — only instructions that start an optimal
//!   completion for *some* assignment of the state are explored.

use sortsynth_isa::{Instr, Machine, MachineState, Reg};

use crate::state::{ProjScratch, StateSet};

/// Distance value meaning "cannot be sorted" (a value was erased).
pub const UNSORTABLE: u16 = u16::MAX;

/// A bitset over action indices (supports up to 256 actions, which covers
/// every machine this workspace constructs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActionSet([u64; 4]);

impl ActionSet {
    /// The empty set.
    pub fn empty() -> Self {
        ActionSet::default()
    }

    /// Inserts action index `i`.
    pub fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Whether action index `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &ActionSet) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// Number of actions in the set.
    pub fn len(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }
}

/// Precomputed per-assignment shortest sorting distances (and optionally the
/// optimal first moves) for a [`Machine`].
///
/// # Examples
///
/// ```
/// use sortsynth_isa::{IsaMode, Machine};
/// use sortsynth_search::DistanceTable;
///
/// let machine = Machine::new(2, 1, IsaMode::Cmov);
/// let table = DistanceTable::build(&machine, false);
/// // The sorted assignment is at distance 0; the swapped one is fixed by a
/// // 3-mov rotation through the scratch register (no comparison needed —
/// // the concrete values are known).
/// assert_eq!(table.dist(machine.initial_state(&[1, 2])), 0);
/// assert_eq!(table.dist(machine.initial_state(&[2, 1])), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DistanceTable {
    machine: Machine,
    actions: Vec<Instr>,
    dist: Vec<u16>,
    first_moves: Option<Vec<ActionSet>>,
    /// Radix for value digits: `n + 1` (values `0..=n`).
    radix: usize,
    /// Stride between flag planes: `radix^(n+m)`.
    flag_stride: usize,
    /// Largest finite distance in the table.
    max_finite: u16,
    /// Successor distances, *encoding-major*: `succ_dist[enc * actions +
    /// ai]` is `dist(step(decode(enc), actions[ai]))`. One contiguous row
    /// holds a parent assignment's distance under *every* action, so
    /// [`DistanceTable::succ_max_dist_sweep`] streams the whole action
    /// sweep as packed integer max instead of gathering one scattered
    /// entry per (action, assignment) pair (n = 4, m = 1 cmp/cmov: 66
    /// actions × 9 375 encodings ≈ 1.2 MiB). Kept separate from
    /// [`DistanceTable::succ_proj`] — rather than packed into one u32 —
    /// so each of the two expansion passes streams only the 1.2 MiB half
    /// it reads, keeping both L2-resident. `None` when the product
    /// exceeds [`SUCC_DIST_MAX_ENTRIES`] or the projection outgrows 16
    /// bits.
    succ_dist: Option<Vec<u16>>,
    /// The radix-packed value-register projection of each successor (a
    /// bijection of the §3.5 permutation projection), same shape as
    /// [`DistanceTable::succ_dist`]. Lets the expansion loop count a
    /// candidate's distinct successor projections — the permutation-count
    /// cut — *before* the candidate is ever stepped.
    succ_proj: Option<Vec<u16>>,
}

/// Cap on `actions × encodings` for the successor-distance table (two u16
/// arrays, so 64 MiB total). Covers every machine through n = 5, m = 1;
/// beyond that the expansion loop falls back to per-successor lookups.
const SUCC_DIST_MAX_ENTRIES: usize = 1 << 24;

impl DistanceTable {
    /// Whether `machine` is within the table's representable limits
    /// ([`ActionSet`] holds at most 256 action indices). Machines with many
    /// scratch registers exceed this; callers should fall back to searching
    /// without the table rather than calling [`DistanceTable::build`].
    pub fn supports(machine: &Machine) -> bool {
        machine.actions().len() <= 256
    }

    /// Builds the table by backward induction from the sorted assignments.
    ///
    /// With `with_first_moves`, additionally records for every assignment the
    /// set of actions that start *some* shortest sorting sequence (the §3.2
    /// "optimal instructions" guide). This roughly doubles memory.
    pub fn build(machine: &Machine, with_first_moves: bool) -> Self {
        let actions = machine.actions();
        assert!(
            actions.len() <= 256,
            "ActionSet supports at most 256 actions"
        );
        let regs = machine.num_regs() as usize;
        let radix = machine.n() as usize + 1;
        let flag_stride = radix.pow(regs as u32);
        let total = 3 * flag_stride;

        let mut dist = vec![UNSORTABLE; total];
        // Seed: every assignment whose value registers read 1..=n is sorted.
        let mut frontier: Vec<u32> = Vec::new();
        for (idx, d) in dist.iter_mut().enumerate() {
            let st = decode(machine, radix, flag_stride, idx);
            if machine.is_sorted(st) {
                *d = 0;
                frontier.push(idx as u32);
            }
        }

        // Backward induction: a state has distance d+1 if some action leads
        // to a distance-d state. We iterate over the undecided states each
        // round; the per-assignment space is small enough that this
        // O(rounds · states · actions) sweep finishes in milliseconds for
        // n ≤ 5.
        let mut undecided: Vec<u32> = (0..total as u32)
            .filter(|&i| dist[i as usize] == UNSORTABLE)
            .collect();
        let mut d: u16 = 0;
        let mut max_finite = 0;
        while !undecided.is_empty() {
            let mut still = Vec::with_capacity(undecided.len());
            let mut progressed = false;
            for &idx in &undecided {
                let st = decode(machine, radix, flag_stride, idx as usize);
                let reaches_d = actions.iter().any(|&a| {
                    let succ = encode(machine, radix, flag_stride, st.step(a));
                    dist[succ] == d
                });
                if reaches_d {
                    dist[idx as usize] = d + 1;
                    max_finite = d + 1;
                    progressed = true;
                } else {
                    still.push(idx);
                }
            }
            undecided = still;
            if !progressed {
                break; // the rest are unsortable (erased values)
            }
            d += 1;
        }

        let first_moves = with_first_moves.then(|| {
            let mut moves = vec![ActionSet::empty(); total];
            for idx in 0..total {
                let here = dist[idx];
                if here == 0 || here == UNSORTABLE {
                    continue;
                }
                let st = decode(machine, radix, flag_stride, idx);
                for (ai, &a) in actions.iter().enumerate() {
                    let succ = encode(machine, radix, flag_stride, st.step(a));
                    if dist[succ] == here - 1 {
                        moves[idx].insert(ai);
                    }
                }
            }
            moves
        });

        // The packed projection must fit the entry's low 16 bits; machines
        // big enough to overflow it also blow the entry cap, but gate
        // explicitly rather than rely on that coincidence.
        let proj_fits = (radix as u64).pow(machine.n() as u32) <= 1 << 16;
        let (succ_dist, succ_proj) = if proj_fits && actions.len() * total <= SUCC_DIST_MAX_ENTRIES
        {
            let mut td = vec![0u16; actions.len() * total];
            let mut tp = vec![0u16; actions.len() * total];
            for idx in 0..total {
                let st = decode(machine, radix, flag_stride, idx);
                for (ai, &a) in actions.iter().enumerate() {
                    let succ = st.step(a);
                    td[idx * actions.len() + ai] = dist[encode(machine, radix, flag_stride, succ)];
                    tp[idx * actions.len() + ai] = packed_proj(machine, radix, succ);
                }
            }
            (Some(td), Some(tp))
        } else {
            (None, None)
        };

        DistanceTable {
            machine: machine.clone(),
            actions,
            dist,
            first_moves,
            radix,
            flag_stride,
            max_finite,
            succ_dist,
            succ_proj,
        }
    }

    /// The action list the table indexes into (identical to
    /// [`Machine::actions`]).
    pub fn actions(&self) -> &[Instr] {
        &self.actions
    }

    /// Shortest number of instructions sorting `assign`, or [`UNSORTABLE`].
    pub fn dist(&self, assign: MachineState) -> u16 {
        self.dist[encode(&self.machine, self.radix, self.flag_stride, assign)]
    }

    /// Number of per-assignment encodings the table covers — an upper bound
    /// on distinct single assignments, which the engine scales into an
    /// arena pre-sizing estimate when no measured sizing row exists.
    pub fn encodings(&self) -> usize {
        self.dist.len()
    }

    /// The largest finite distance of any assignment — a lower bound on no
    /// program, but a useful diagnostic.
    pub fn max_finite_dist(&self) -> u16 {
        self.max_finite
    }

    /// Admissible heuristic for a search state: the maximum per-assignment
    /// distance (§3.1). Returns [`UNSORTABLE`] if any assignment is
    /// unsortable.
    pub fn max_dist(&self, set: &StateSet) -> u16 {
        self.max_dist_slice(set.assignments())
    }

    /// [`DistanceTable::max_dist`] over a raw assignment slice — the
    /// expansion hot loop evaluates successors while they still live in the
    /// shared scratch buffer, before (and usually instead of) building a
    /// `StateSet`.
    pub fn max_dist_slice(&self, assigns: &[MachineState]) -> u16 {
        let mut worst = 0;
        for &a in assigns {
            let d = self.dist(a);
            if d == UNSORTABLE {
                return UNSORTABLE;
            }
            worst = worst.max(d);
        }
        worst
    }

    /// The §3.2 action guide: the union, over all assignments of `set`, of
    /// the actions starting a shortest sorting sequence for that assignment.
    ///
    /// # Panics
    ///
    /// Panics if the table was built without first moves.
    pub fn optimal_first_moves(&self, set: &StateSet) -> ActionSet {
        self.optimal_first_moves_slice(set.assignments())
    }

    /// [`DistanceTable::optimal_first_moves`] over a raw assignment slice
    /// (same panic contract).
    pub fn optimal_first_moves_slice(&self, assigns: &[MachineState]) -> ActionSet {
        let moves = self
            .first_moves
            .as_ref()
            .expect("DistanceTable built without first moves");
        let mut out = ActionSet::empty();
        for &a in assigns {
            out.union_with(&moves[encode(&self.machine, self.radix, self.flag_stride, a)]);
        }
        out
    }

    /// [`DistanceTable::optimal_first_moves_slice`] over already-computed
    /// assignment encodings ([`DistanceTable::encode_assign`]), so callers
    /// that hold the encodings anyway skip re-encoding every assignment.
    pub(crate) fn optimal_first_moves_enc(&self, enc: &[u32]) -> ActionSet {
        let moves = self
            .first_moves
            .as_ref()
            .expect("DistanceTable built without first moves");
        let mut out = ActionSet::empty();
        for &e in enc {
            out.union_with(&moves[e as usize]);
        }
        out
    }

    /// Whether first moves were recorded at build time.
    pub fn has_first_moves(&self) -> bool {
        self.first_moves.is_some()
    }

    /// Whether the successor-distance table was built (see
    /// [`DistanceTable::succ_max_dist`]).
    pub fn has_succ_dist(&self) -> bool {
        self.succ_dist.is_some()
    }

    /// The table encoding of one assignment, for use with
    /// [`DistanceTable::succ_max_dist`]. Computed once per *expanded* state
    /// and reused across its whole action sweep.
    pub fn encode_assign(&self, assign: MachineState) -> u32 {
        encode(&self.machine, self.radix, self.flag_stride, assign) as u32
    }

    /// `max_dist` of the successor reached by action `ai` from the parent
    /// whose assignment encodings are `enc` — without materializing the
    /// successor. Returns [`UNSORTABLE`] as soon as any assignment's
    /// successor is unsortable.
    ///
    /// # Panics
    ///
    /// Panics if the table was built without successor distances
    /// ([`DistanceTable::has_succ_dist`]).
    pub fn succ_max_dist(&self, ai: usize, enc: &[u32]) -> u16 {
        let table = self
            .succ_dist
            .as_ref()
            .expect("DistanceTable built without successor distances");
        let na = self.actions.len();
        let mut worst = 0;
        for &e in enc {
            let d = table[e as usize * na + ai];
            if d == UNSORTABLE {
                return UNSORTABLE;
            }
            worst = worst.max(d);
        }
        worst
    }

    /// [`DistanceTable::succ_max_dist`] for *every* action at once:
    /// `worst[ai]` becomes the successor `max_dist` under action `ai`
    /// ([`UNSORTABLE`] — the numeric maximum — propagates through the
    /// running max for free). One expansion's whole viability sweep is a
    /// single streaming pass over `enc.len()` contiguous rows, which the
    /// compiler turns into packed integer max — replacing one scattered
    /// gather per surviving (action, assignment) pair.
    ///
    /// # Panics
    ///
    /// Panics if the table was built without successor distances
    /// ([`DistanceTable::has_succ_dist`]).
    pub fn succ_max_dist_sweep(&self, enc: &[u32], worst: &mut Vec<u16>) {
        let table = self
            .succ_dist
            .as_ref()
            .expect("DistanceTable built without successor distances");
        let na = self.actions.len();
        worst.clear();
        worst.resize(na, 0);
        for &e in enc {
            let row = &table[e as usize * na..(e as usize + 1) * na];
            for (w, &d) in worst.iter_mut().zip(row) {
                *w = (*w).max(d);
            }
        }
    }

    /// The radix-packed value-register projections of the successors of
    /// the parent assignments `enc` under action `ai`, in parent order.
    /// Feeding these to a distinct-count gives the successor's permutation
    /// count (§3.5) *before* the successor is ever stepped: packing is a
    /// bijection on value-register contents, so distinct packed
    /// projections are exactly distinct permutation projections.
    ///
    /// # Panics
    ///
    /// Panics if the table was built without successor distances
    /// ([`DistanceTable::has_succ_dist`]).
    #[inline]
    pub fn succ_projs<'a>(&'a self, ai: usize, enc: &'a [u32]) -> impl Iterator<Item = u16> + 'a {
        let table = self
            .succ_proj
            .as_ref()
            .expect("DistanceTable built without successor distances");
        let na = self.actions.len();
        enc.iter().map(move |&e| table[e as usize * na + ai])
    }

    /// Distinct successor projections of `enc` under action `ai` — the
    /// §3.5 permutation count of the successor, computed straight off the
    /// projection table with no successor materialized and nothing copied.
    /// Same cap contract and chunked cap placement as
    /// [`crate::state::perm_count_slice`]: a return `> cap` means the scan
    /// stopped early, any return `<= cap` is exact.
    ///
    /// # Panics
    ///
    /// Panics if the table was built without successor distances
    /// ([`DistanceTable::has_succ_dist`]).
    pub(crate) fn succ_perm_capped(
        &self,
        ai: usize,
        enc: &[u32],
        scratch: &mut ProjScratch,
        cap: u32,
    ) -> u32 {
        let table = self
            .succ_proj
            .as_ref()
            .expect("DistanceTable built without successor distances");
        let na = self.actions.len();
        let (stamp, epoch) = scratch.stamp_begin();
        let mut count = 0u32;
        let mut chunks = enc.chunks(8);
        for c in &mut chunks {
            for &e in c {
                let v = table[e as usize * na + ai] as usize;
                let s = &mut stamp[v];
                count += u32::from(*s != epoch);
                *s = epoch;
            }
            if count > cap {
                break;
            }
        }
        count
    }
}

fn flag_code(st: MachineState) -> usize {
    match (st.lt_flag(), st.gt_flag()) {
        (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (true, true) => unreachable!("cmp never sets both flags"),
    }
}

/// Radix-packs the value registers `r1..rn` of `st`: `Σ reg(r) · radixʳ`.
/// A bijection of the §3.5 permutation projection (each register holds a
/// digit `< radix`) that fits 16 bits for every table-supported machine.
fn packed_proj(machine: &Machine, radix: usize, st: MachineState) -> u16 {
    let mut p = 0usize;
    for r in (0..machine.n() as usize).rev() {
        p = p * radix + st.reg(Reg::new(r as u8)) as usize;
    }
    p as u16
}

fn encode(machine: &Machine, radix: usize, flag_stride: usize, st: MachineState) -> usize {
    let mut idx = 0usize;
    for r in (0..machine.num_regs()).rev() {
        let v = st.reg(Reg::new(r)) as usize;
        debug_assert!(v < radix);
        idx = idx * radix + v;
    }
    flag_code(st) * flag_stride + idx
}

fn decode(machine: &Machine, radix: usize, flag_stride: usize, idx: usize) -> MachineState {
    let flags = idx / flag_stride;
    let mut rest = idx % flag_stride;
    let mut st = MachineState::default();
    for r in 0..machine.num_regs() {
        st.set_reg(Reg::new(r), (rest % radix) as u8);
        rest /= radix;
    }
    st.set_flags(flags == 1, flags == 2);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn encode_decode_round_trip() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let radix = 4;
        let stride = radix_pow(radix, 4);
        for idx in 0..3 * stride {
            let st = decode(&m, radix, stride, idx);
            assert_eq!(encode(&m, radix, stride, st), idx);
        }
    }

    /// The successor-distance table must agree with stepping and looking
    /// up directly, for every assignment and every action.
    #[test]
    fn succ_dist_agrees_with_direct_lookup() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let table = DistanceTable::build(&m, false);
        assert!(table.has_succ_dist());
        let stride = radix_pow(4, 4);
        for idx in 0..3 * stride {
            let st = decode(&m, 4, stride, idx);
            let enc = [table.encode_assign(st)];
            for (ai, &a) in table.actions().iter().enumerate() {
                assert_eq!(
                    table.succ_max_dist(ai, &enc),
                    table.dist(st.step(a)),
                    "idx {idx} action {ai}"
                );
            }
        }
    }

    fn radix_pow(radix: usize, e: u32) -> usize {
        radix.pow(e)
    }

    #[test]
    fn sorted_assignment_has_distance_zero() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        assert_eq!(t.dist(m.initial_state(&[1, 2, 3])), 0);
    }

    #[test]
    fn single_swap_needs_three_instructions_cmov() {
        // For a single *concrete* assignment the values are known, so no
        // comparison is needed: a transposition is a 3-mov rotation through
        // the scratch register. (This is why the per-assignment distance is
        // only a lower bound for the oblivious sorting kernel, which needs a
        // 4-instruction compare-and-swap.)
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        assert_eq!(t.dist(m.initial_state(&[2, 1])), 3);
    }

    #[test]
    fn single_swap_needs_three_instructions_minmax() {
        let m = Machine::new(2, 1, IsaMode::MinMax);
        let t = DistanceTable::build(&m, false);
        assert_eq!(t.dist(m.initial_state(&[2, 1])), 3);
    }

    #[test]
    fn erased_assignment_is_unsortable() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        // r = [1, 1], s = 0: the value 2 is gone.
        let st = MachineState::from_values(&[1, 1, 0]);
        assert_eq!(t.dist(st), UNSORTABLE);
    }

    #[test]
    fn scratch_can_rescue_values() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        // r = [1, 1], s = 2: one mov fixes it.
        let st = MachineState::from_values(&[1, 1, 2]);
        assert_eq!(t.dist(st), 1);
    }

    #[test]
    fn max_dist_over_state_set() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        let set = StateSet::initial(&m);
        assert_eq!(t.max_dist(&set), 3);
    }

    #[test]
    fn optimal_first_moves_decrease_distance() {
        let m = Machine::new(2, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, true);
        let set = StateSet::initial(&m);
        let moves = t.optimal_first_moves(&set);
        assert!(!moves.is_empty());
        // Every allowed move keeps the state sortable and at least one
        // strictly decreases the unsorted assignment's distance.
        let unsorted = m.initial_state(&[2, 1]);
        let mut improved = false;
        for (ai, &a) in t.actions().iter().enumerate() {
            if moves.contains(ai) && t.dist(unsorted.step(a)) == 2 {
                improved = true;
            }
        }
        assert!(improved);
    }

    #[test]
    fn action_set_basics() {
        let mut s = ActionSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(130);
        assert!(s.contains(0) && s.contains(130) && !s.contains(64));
        assert_eq!(s.len(), 2);
        let mut t = ActionSet::empty();
        t.insert(64);
        t.union_with(&s);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn distances_are_consistent_one_step() {
        // Triangle inequality / Bellman consistency: dist(s) <= dist(succ)+1.
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let t = DistanceTable::build(&m, false);
        for perm in sortsynth_isa::permutations(3) {
            let st = m.initial_state(&perm);
            let d = t.dist(st);
            for &a in t.actions() {
                let ds = t.dist(st.step(a));
                if ds != UNSORTABLE {
                    assert!(d <= ds + 1, "inconsistent distance at {perm:?}");
                }
            }
        }
    }
}
