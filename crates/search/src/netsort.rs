//! Fixed-size sorting networks for the canonicalization hot path.
//!
//! Canonicalizing a successor (sorting its register assignments, §3.6) is
//! the single hottest sort in the engine: it runs once per generated state,
//! on slices that are almost always tiny (≤ n! assignments; 24 for n = 4).
//! A general comparison sort pays branch mispredictions and dispatch
//! overhead exactly where the input is smallest. For lengths ≤ 32 we
//! instead run a Batcher odd-even merge network padded to the next power of
//! two with a max sentinel: a straight line of branch-free
//! compare-exchanges, no recursion, no allocator, and a comparator schedule
//! the branch predictor learns perfectly.

/// Largest slice the network path handles; longer slices fall back to
/// `sort_unstable`.
pub(crate) const NETSORT_MAX: usize = 32;

/// Comparator schedule of the Batcher odd-even merge sort for a
/// power-of-two `n` (the classic iterative formulation).
fn batcher_pairs(n: usize) -> Vec<(u8, u8)> {
    debug_assert!(n.is_power_of_two() && n <= NETSORT_MAX);
    let mut pairs = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        pairs.push(((i + j) as u8, (i + j + k) as u8));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// The five network tiers (sizes 2, 4, 8, 16, 32), built once per process.
fn tiers() -> &'static [Vec<(u8, u8)>; 5] {
    static TIERS: std::sync::OnceLock<[Vec<(u8, u8)>; 5]> = std::sync::OnceLock::new();
    TIERS.get_or_init(|| {
        [
            batcher_pairs(2),
            batcher_pairs(4),
            batcher_pairs(8),
            batcher_pairs(16),
            batcher_pairs(32),
        ]
    })
}

/// Sorts `v` (length ≤ [`NETSORT_MAX`]) through the smallest network tier
/// that fits, padding with `pad`. `pad` must compare `>=` every element so
/// the sentinels sink past the real data.
pub(crate) fn sort_small<T: Copy + Ord>(v: &mut [T], pad: T) {
    let len = v.len();
    debug_assert!(len <= NETSORT_MAX);
    if len < 2 {
        return;
    }
    let size = len.next_power_of_two();
    let mut buf = [pad; NETSORT_MAX];
    buf[..len].copy_from_slice(v);
    let tier = &tiers()[size.trailing_zeros() as usize - 1];
    for &(i, j) in tier.iter() {
        let (a, b) = (buf[i as usize], buf[j as usize]);
        // Branch-free compare-exchange: both arms compile to conditional
        // moves (min/max), never a branch on data.
        let swap = b < a;
        buf[i as usize] = if swap { b } else { a };
        buf[j as usize] = if swap { a } else { b };
    }
    v.copy_from_slice(&buf[..len]);
}

/// Largest slice the network path is *profitable* for. Above 8 elements
/// the padded tier grows faster than the data: a 24-element span pads to
/// the 32-wide tier's 191 compare-exchanges, while insertion sort on the
/// same span — which in the canonicalization path is one instruction away
/// from an already-sorted parent, so nearly sorted — does ~1 comparison
/// per element. Measured on the n = 4 cmp/cmov headline search, insertion
/// above this threshold is the difference between the arena engine
/// regressing and beating the pre-rework baseline (see EXPERIMENTS.md E-M).
const NETWORK_PROFIT_MAX: usize = 8;

/// Plain insertion sort: branchy, but O(n + inversions) on the
/// nearly-sorted successor spans the engine feeds it.
fn insertion_sort<T: Copy + Ord>(v: &mut [T]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && x < v[j - 1] {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Sorts a slice of any length: network tier while padding stays cheap,
/// insertion sort through [`NETSORT_MAX`], `sort_unstable` beyond.
pub(crate) fn sort_by_size<T: Copy + Ord>(v: &mut [T], pad: T) {
    if v.len() <= NETWORK_PROFIT_MAX {
        sort_small(v, pad);
    } else if v.len() <= NETSORT_MAX {
        insertion_sort(v);
    } else {
        v.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1 principle: a comparator network sorts every input iff it sorts
    /// every 0-1 vector. Exhaustive for the tiers small enough to sweep.
    #[test]
    fn zero_one_principle_exhaustive_through_16() {
        for size in [2usize, 4, 8, 16] {
            for bits in 0u32..(1 << size) {
                let mut v: Vec<u64> = (0..size).map(|i| u64::from(bits >> i & 1)).collect();
                sort_small(&mut v, u64::MAX);
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "size {size} bits {bits:b}"
                );
            }
        }
    }

    #[test]
    fn matches_sort_unstable_on_random_inputs() {
        // xorshift; covers every length 0..=32 including the padded tiers.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in 0..=NETSORT_MAX {
            for _ in 0..200 {
                let mut v: Vec<u64> = (0..len).map(|_| next() % 64).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_small(&mut v, u64::MAX);
                assert_eq!(v, expect, "len {len}");
            }
        }
    }

    #[test]
    fn sort_by_size_falls_back_past_the_largest_tier() {
        let mut v: Vec<u64> = (0..100).rev().collect();
        sort_by_size(&mut v, u64::MAX);
        assert_eq!(v, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn sort_by_size_agrees_across_all_regimes() {
        // Exercises the network (<=8), insertion (9..=32), and fallback
        // (>32) regimes against sort_unstable.
        let mut x = 0xA076_1D64_78BD_642Fu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [0, 1, 5, 8, 9, 17, 24, 32, 33, 70] {
            for _ in 0..100 {
                let mut v: Vec<u64> = (0..len).map(|_| next() % 32).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_by_size(&mut v, u64::MAX);
                assert_eq!(v, expect, "len {len}");
            }
        }
    }
}
