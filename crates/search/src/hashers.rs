//! Identity hashing for keys that are already uniform hashes.
//!
//! The closed/visited maps of both engines are keyed by [`crate::StateSet`]
//! content keys: 128-bit values produced by two independent multiply-rotate
//! accumulators ([`crate::state::key_of`]). Re-hashing them through SipHash
//! (the `std` default) costs a full keyed permutation per probe and adds
//! nothing — the key bits are already uniformly distributed. The identity
//! hasher below just folds the two halves together, turning every map
//! operation into a mask-and-probe.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// `BuildHasher` for maps keyed by `u128` state keys.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct IdentityKeyHasher;

impl BuildHasher for IdentityKeyHasher {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

/// Passes key bits straight through to the table. The xor-fold keeps both
/// 64-bit halves of a state key relevant to the bucket index, so a
/// collision in the *map* still requires a collision of the full fold.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by the u128 fast path).
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }

    fn write_u128(&mut self, v: u128) {
        self.0 = (v >> 64) as u64 ^ v as u64;
    }
}

/// A `u128`-keyed map probing on the key's own bits.
pub(crate) type KeyMap<V> = HashMap<u128, V, IdentityKeyHasher>;

/// A `u64`-keyed map for narrowed keys ([`crate::KeyWidth::U64`]). The
/// narrow key *is* the xor-fold the `write_u128` path would compute, so
/// wide and narrow maps probe identical bucket sequences — only the stored
/// key (and thus the entry size) differs.
pub(crate) type NarrowKeyMap<V> = HashMap<u64, V, IdentityKeyHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: KeyMap<u32> = KeyMap::default();
        for i in 0..1000u32 {
            // Spread keys across both halves.
            let k = ((i as u128) << 64) | (i as u128).wrapping_mul(0x9E37_79B9);
            m.insert(k, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            let k = ((i as u128) << 64) | (i as u128).wrapping_mul(0x9E37_79B9);
            assert_eq!(m.get(&k), Some(&i));
        }
    }

    #[test]
    fn fold_uses_both_halves() {
        let mut h = IdentityKeyHasher.build_hasher();
        h.write_u128(1 << 64);
        let hi = h.finish();
        let mut h = IdentityKeyHasher.build_hasher();
        h.write_u128(1);
        let lo = h.finish();
        assert_eq!(hi, lo, "xor-fold maps both halves onto the same lane");
        let mut h = IdentityKeyHasher.build_hasher();
        h.write_u128((1 << 64) | 1);
        assert_eq!(h.finish(), 0);
    }
}
