//! Arena-backed state interning: canonical states as dense `u32` ids.
//!
//! The engines used to carry every state as its own heap object
//! (`Box<[MachineState]>`) and key every bookkeeping structure by the full
//! 128-bit content hash. The arena replaces that layout with three dense
//! structures:
//!
//! * one contiguous `Vec<MachineState>` holding every kept state's
//!   assignments back to back (a state is an `(offset, len)` span);
//! * a `Vec<StateMeta>` of per-state facts — span, permutation count,
//!   max per-assignment distance, goal flag — computed **once** when the
//!   state is interned, so heuristics and goal checks become field reads;
//! * an identity-hashed `key → id` map that doubles as the closed set.
//!
//! Ids are dense and allocation stops once the backing vectors reach their
//! high-water mark, so the steady-state cost of keeping a state is a
//! `memcpy` of its span plus one map insert. The sequential engine owns one
//! arena; each parallel shard owns its own (single-writer, behind the
//! shard's existing lock), so interning never takes a global lock.

use sortsynth_isa::MachineState;

use crate::config::KeyWidth;
use crate::hashers::{KeyMap, NarrowKeyMap};
use crate::state::narrow_key;

/// Sentinel offset marking a state whose span is not resident (spilled to
/// a frontier segment, or compacted away after its layer was expanded).
pub(crate) const SPAN_NONE: u32 = u32::MAX;

/// Per-state facts cached at intern time. Everything the hot loop needs
/// after interning — heuristic inputs, goal flag, the span — without
/// touching the assignments again.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateMeta {
    /// Span start in the arena's assignment store.
    offset: u32,
    /// Number of assignments (also §3.1's `AssignCount` heuristic).
    len: u32,
    /// Distinct value-register projections (§3.1/§3.5's permutation count).
    pub perm: u32,
    /// Maximum per-assignment sorting distance ([`crate::DistanceTable`]),
    /// `0` when the run has no table — the `MaxRemaining` heuristic then
    /// degrades to uniform cost, matching the documented table-skip
    /// behavior.
    pub max_dist: u16,
    /// Whether every assignment is sorted (§3.4).
    pub goal: bool,
}

impl StateMeta {
    /// §3.1's second heuristic: the number of distinct assignments.
    pub fn assign_count(&self) -> u32 {
        self.len
    }
}

/// The closed map at its configured key width ([`KeyWidth`]). Both arms
/// probe identical bucket sequences (the narrow key *is* the wide key's
/// xor-fold); the narrow arm halves the per-entry footprint from 32 to
/// 16 bytes.
pub(crate) enum KeyStore {
    Wide(KeyMap<u32>),
    Narrow(NarrowKeyMap<u32>),
}

impl KeyStore {
    fn new(width: KeyWidth) -> Self {
        match width {
            KeyWidth::U64 => KeyStore::Narrow(NarrowKeyMap::default()),
            KeyWidth::U128 => KeyStore::Wide(KeyMap::default()),
        }
    }

    #[inline]
    fn get(&self, key: u128) -> Option<u32> {
        match self {
            KeyStore::Wide(m) => m.get(&key).copied(),
            KeyStore::Narrow(m) => m.get(&narrow_key(key)).copied(),
        }
    }

    #[inline]
    fn insert(&mut self, key: u128, id: u32) -> Option<u32> {
        match self {
            KeyStore::Wide(m) => m.insert(key, id),
            KeyStore::Narrow(m) => m.insert(narrow_key(key), id),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            KeyStore::Wide(m) => m.capacity(),
            KeyStore::Narrow(m) => m.capacity(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            KeyStore::Wide(m) => m.reserve(additional),
            KeyStore::Narrow(m) => m.reserve(additional),
        }
    }

    fn width(&self) -> KeyWidth {
        match self {
            KeyStore::Wide(_) => KeyWidth::U128,
            KeyStore::Narrow(_) => KeyWidth::U64,
        }
    }
}

/// The interner. See the module docs for the layout.
pub(crate) struct StateArena {
    assigns: Vec<MachineState>,
    metas: Vec<StateMeta>,
    ids: KeyStore,
    /// Growth events (capacity change of the span store, meta store, or
    /// closed map) since construction/pre-sizing — the
    /// [`crate::SearchStats::arena_reallocs`] counter. A correctly
    /// pre-sized run pins this to zero.
    reallocs: u64,
}

impl Default for StateArena {
    fn default() -> Self {
        StateArena::with_key_width(KeyWidth::default())
    }
}

impl StateArena {
    pub fn with_key_width(width: KeyWidth) -> Self {
        StateArena {
            assigns: Vec::new(),
            metas: Vec::new(),
            ids: KeyStore::new(width),
            reallocs: 0,
        }
    }

    /// Pre-sizes the backing structures for an expected population
    /// (`states` interned states holding `assign_total` assignments in
    /// all), so steady-state interning never reallocates.
    pub fn reserve(&mut self, states: usize, assign_total: usize) {
        self.assigns.reserve(assign_total);
        self.metas.reserve(states);
        self.ids.reserve(states);
    }

    /// Looks up the id interned for `key`, if any.
    #[inline]
    pub fn get(&self, key: u128) -> Option<u32> {
        self.ids.get(key)
    }

    /// Interns a state known to be absent (callers check [`StateArena::get`]
    /// first) and returns its dense id.
    pub fn insert_new(
        &mut self,
        key: u128,
        assigns: &[MachineState],
        perm: u32,
        max_dist: u16,
        goal: bool,
    ) -> u32 {
        let assign_cap = self.assigns.capacity();
        let offset = u32::try_from(self.assigns.len()).expect("state arena span overflow");
        self.assigns.extend_from_slice(assigns);
        let id = self.push_meta(StateMeta {
            offset,
            len: assigns.len() as u32,
            perm,
            max_dist,
            goal,
        });
        if assign_cap != 0 && self.assigns.capacity() != assign_cap {
            self.reallocs += 1;
        }
        let map_cap = self.ids.capacity();
        let previous = self.ids.insert(key, id);
        if map_cap != 0 && self.ids.capacity() != map_cap {
            self.reallocs += 1;
        }
        debug_assert!(previous.is_none(), "intern of an already-interned key");
        id
    }

    /// Interns a state whose span lives in a spill segment rather than the
    /// arena (external-memory tier): full closed-set membership and cached
    /// facts, no resident assignments.
    pub fn insert_spilled(
        &mut self,
        key: u128,
        len: u32,
        perm: u32,
        max_dist: u16,
        goal: bool,
    ) -> u32 {
        let id = self.push_meta(StateMeta {
            offset: SPAN_NONE,
            len,
            perm,
            max_dist,
            goal,
        });
        let previous = self.ids.insert(key, id);
        debug_assert!(previous.is_none(), "intern of an already-interned key");
        id
    }

    fn push_meta(&mut self, meta: StateMeta) -> u32 {
        let meta_cap = self.metas.capacity();
        let id = u32::try_from(self.metas.len()).expect("state arena id overflow");
        self.metas.push(meta);
        if meta_cap != 0 && self.metas.capacity() != meta_cap {
            self.reallocs += 1;
        }
        id
    }

    /// Whether state `id`'s assignments are resident in the arena.
    #[inline]
    pub fn has_span(&self, id: u32) -> bool {
        self.metas[id as usize].offset != SPAN_NONE
    }

    /// The canonical assignments of state `id`. Panics (via slice bounds)
    /// if the span was spilled or compacted away — the spill tier streams
    /// those from disk instead.
    #[inline]
    pub fn assignments(&self, id: u32) -> &[MachineState] {
        let m = &self.metas[id as usize];
        debug_assert!(m.offset != SPAN_NONE, "assignments of a spilled state");
        &self.assigns[m.offset as usize..(m.offset + m.len) as usize]
    }

    /// The cached facts of state `id`.
    #[inline]
    pub fn meta(&self, id: u32) -> &StateMeta {
        &self.metas[id as usize]
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Assignments currently held by the span store (the sizing table's
    /// `assigns` mark; equals the total interned assignment count when no
    /// span was spilled or compacted).
    pub fn assign_len(&self) -> usize {
        self.assigns.len()
    }

    /// Bytes of assignment storage currently reserved (the arena's dominant
    /// memory term; per-state metadata is excluded by definition of
    /// [`crate::SearchStats::arena_bytes`]).
    pub fn assign_bytes(&self) -> u64 {
        (self.assigns.capacity() * std::mem::size_of::<MachineState>()) as u64
    }

    /// Bytes of closed-map storage currently reserved (capacity × entry
    /// size at the configured [`KeyWidth`]) — the
    /// [`crate::SearchStats::key_bytes`] stat the `memory_scale` bench
    /// compares across widths.
    pub fn key_bytes(&self) -> u64 {
        self.ids.capacity() as u64 * self.ids.width().entry_bytes()
    }

    /// Growth events since construction (see the `reallocs` field).
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Drops every resident span except those of `live` ids (the next
    /// frontier), rewriting the span store densely in `live` order. Part of
    /// the external-memory tier's end-of-layer compaction: expanded layers'
    /// assignments are never read again (only their keys, metas, and parent
    /// edges are), so their spans are reclaimed.
    pub fn compact_spans(&mut self, live: &[u32]) {
        let total: usize = live
            .iter()
            .map(|&id| {
                let m = &self.metas[id as usize];
                if m.offset == SPAN_NONE {
                    0
                } else {
                    m.len as usize
                }
            })
            .sum();
        let mut packed = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(live.len());
        for &id in live {
            let m = &self.metas[id as usize];
            if m.offset == SPAN_NONE {
                offsets.push(SPAN_NONE);
                continue;
            }
            let start = u32::try_from(packed.len()).expect("state arena span overflow");
            packed.extend_from_slice(&self.assigns[m.offset as usize..(m.offset + m.len) as usize]);
            offsets.push(start);
        }
        for m in &mut self.metas {
            m.offset = SPAN_NONE;
        }
        for (&id, &offset) in live.iter().zip(&offsets) {
            self.metas[id as usize].offset = offset;
        }
        self.assigns = packed;
    }

    /// Evicts closed-map entries whose id fails `keep`, returning the
    /// evicted `(wide key, id)` pairs (narrow keys zero-extended) for the
    /// caller to persist in a sorted closed segment. Delayed duplicate
    /// detection re-checks future candidates against those segments.
    pub fn evict_closed<F: FnMut(u32) -> bool>(&mut self, mut keep: F) -> Vec<(u128, u32)> {
        let mut evicted = Vec::new();
        match &mut self.ids {
            KeyStore::Wide(m) => m.retain(|&k, &mut id| {
                let live = keep(id);
                if !live {
                    evicted.push((k, id));
                }
                live
            }),
            KeyStore::Narrow(m) => m.retain(|&k, &mut id| {
                let live = keep(id);
                if !live {
                    evicted.push((k as u128, id));
                }
                live
            }),
        }
        evicted
    }

    /// All resident closed-map entries as `(wide key, id)` pairs (narrow
    /// keys zero-extended) — journal checkpoint material.
    pub fn closed_entries(&self) -> Vec<(u128, u32)> {
        match &self.ids {
            KeyStore::Wide(m) => m.iter().map(|(&k, &id)| (k, id)).collect(),
            KeyStore::Narrow(m) => m.iter().map(|(&k, &id)| (k as u128, id)).collect(),
        }
    }

    /// The key a spill segment / DDD comparison stores for a candidate's
    /// content key at this arena's width: the full key in wide mode, the
    /// zero-extended fold in narrow mode.
    #[inline]
    pub fn stored_key(&self, key: u128) -> u128 {
        match self.ids.width() {
            KeyWidth::U128 => key,
            KeyWidth::U64 => narrow_key(key) as u128,
        }
    }

    /// Resume support: re-registers a closed-map entry for an
    /// already-restored meta. `key` is a stored-width key as persisted by
    /// [`StateArena::closed_entries`].
    pub fn restore_closed(&mut self, key: u128, id: u32) {
        match &mut self.ids {
            KeyStore::Wide(m) => {
                m.insert(key, id);
            }
            KeyStore::Narrow(m) => {
                m.insert(key as u64, id);
            }
        }
    }

    /// Resume support: appends a meta (in dense id order) without a span or
    /// closed-map entry.
    pub fn restore_meta(&mut self, len: u32, perm: u32, max_dist: u16, goal: bool) -> u32 {
        self.push_meta(StateMeta {
            offset: SPAN_NONE,
            len,
            perm,
            max_dist,
            goal,
        })
    }

    /// Resume support: re-attaches a resident span to a restored meta.
    pub fn restore_span(&mut self, id: u32, assigns: &[MachineState]) {
        let offset = u32::try_from(self.assigns.len()).expect("state arena span overflow");
        self.assigns.extend_from_slice(assigns);
        let m = &mut self.metas[id as usize];
        debug_assert_eq!(
            m.len as usize,
            assigns.len(),
            "restored span length mismatch"
        );
        m.offset = offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{key_of, StateSet};
    use sortsynth_isa::{IsaMode, Machine};

    #[test]
    fn intern_round_trip() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let set = StateSet::initial(&m);
        let mut arena = StateArena::default();
        assert_eq!(arena.get(set.key()), None);
        let id = arena.insert_new(set.key(), set.assignments(), 6, 4, false);
        assert_eq!(arena.get(set.key()), Some(id));
        assert_eq!(arena.assignments(id), set.assignments());
        let meta = arena.meta(id);
        assert_eq!((meta.perm, meta.assign_count()), (6, 6));
        assert_eq!(meta.max_dist, 4);
        assert!(!meta.goal);
        assert_eq!(arena.len(), 1);
        assert!(arena.assign_bytes() >= 6 * 8);
    }

    #[test]
    fn key_widths_agree_and_presizing_pins_reallocs() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let init = StateSet::initial(&m);
        let mut wide = StateArena::with_key_width(KeyWidth::U128);
        let mut narrow = StateArena::with_key_width(KeyWidth::U64);
        narrow.reserve(512, 8192);
        let mut frontier = vec![init];
        for _ in 0..2 {
            let mut next = Vec::new();
            for state in frontier {
                let key = key_of(state.assignments());
                let w = match wide.get(key) {
                    Some(id) => id,
                    None => {
                        let id = wide.insert_new(key, state.assignments(), 0, 0, false);
                        for a in m.actions() {
                            next.push(state.apply(a));
                        }
                        id
                    }
                };
                let n = match narrow.get(key) {
                    Some(id) => id,
                    None => narrow.insert_new(key, state.assignments(), 0, 0, false),
                };
                assert_eq!(w, n, "wide and narrow maps intern identical id sequences");
            }
            frontier = next;
        }
        assert!(wide.len() > 10);
        assert_eq!(narrow.len(), wide.len());
        assert_eq!(narrow.reallocs(), 0, "pre-sized arena must not grow");
        assert!(wide.reallocs() > 0, "unsized arena grows from empty");
        // Map bytes per entry: the narrow store costs half the wide store.
        assert_eq!(
            KeyWidth::U128.entry_bytes(),
            2 * KeyWidth::U64.entry_bytes()
        );
    }

    #[test]
    fn spill_span_lifecycle() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let a = StateSet::initial(&m);
        let b = a.apply(m.actions()[0]);
        let mut arena = StateArena::default();
        let ia = arena.insert_new(a.key(), a.assignments(), 0, 0, false);
        let ib = arena.insert_spilled(b.key(), b.assignments().len() as u32, 0, 0, false);
        assert!(arena.has_span(ia));
        assert!(!arena.has_span(ib));
        assert_eq!(arena.get(b.key()), Some(ib));
        arena.restore_span(ib, b.assignments());
        assert_eq!(arena.assignments(ib), b.assignments());
        arena.compact_spans(&[ib]);
        assert!(!arena.has_span(ia));
        assert_eq!(arena.assignments(ib), b.assignments());
        let evicted = arena.evict_closed(|id| id != ia);
        assert_eq!(evicted, vec![(arena.stored_key(a.key()), ia)]);
        assert_eq!(arena.get(a.key()), None);
        assert_eq!(arena.get(b.key()), Some(ib));
        arena.restore_closed(arena.stored_key(a.key()), ia);
        assert_eq!(arena.get(a.key()), Some(ia));
    }

    /// Satellite property: interner id equality must coincide with
    /// [`StateSet`] equality — distinct canonical states get distinct ids,
    /// and re-deriving a state (different instruction order, same effect)
    /// maps to the same id via the same key.
    #[test]
    fn id_equality_matches_state_equality() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let init = StateSet::initial(&m);
        let mut arena = StateArena::default();
        let mut seen: Vec<(StateSet, u32)> = Vec::new();
        let mut frontier = vec![init];
        for _ in 0..3 {
            let mut next = Vec::new();
            for state in frontier {
                let key = key_of(state.assignments());
                assert_eq!(key, state.key(), "slice key matches StateSet::key");
                let id = match arena.get(key) {
                    Some(id) => id,
                    None => {
                        let id = arena.insert_new(key, state.assignments(), 0, 0, false);
                        for a in m.actions() {
                            next.push(state.apply(a));
                        }
                        id
                    }
                };
                for (other, other_id) in &seen {
                    assert_eq!(
                        id == *other_id,
                        state == *other,
                        "id equality must match state equality"
                    );
                }
                if seen.iter().all(|(_, i)| *i != id) {
                    seen.push((state, id));
                }
            }
            frontier = next;
        }
        assert!(arena.len() > 10, "walk interned a real population");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use sortsynth_isa::MachineState;

        /// Random single assignment for the n = 3, m = 1 machine.
        fn arb_assignment() -> impl Strategy<Value = MachineState> {
            (
                prop::collection::vec(0u8..=3, 4),
                prop_oneof![
                    Just((false, false)),
                    Just((true, false)),
                    Just((false, true))
                ],
            )
                .prop_map(|(vals, (lt, gt))| {
                    let mut st = MachineState::from_values(&vals);
                    st.set_flags(lt, gt);
                    st
                })
        }

        proptest! {
            /// Satellite property over *random* sets: get-or-insert through
            /// the arena assigns equal ids exactly to equal `StateSet`s.
            #[test]
            fn random_sets_intern_to_matching_ids(
                sets in prop::collection::vec(
                    prop::collection::vec(arb_assignment(), 1..10),
                    2..8,
                ),
            ) {
                let sets: Vec<StateSet> = sets
                    .into_iter()
                    .map(StateSet::from_assignments)
                    .collect();
                let mut arena = StateArena::default();
                let ids: Vec<u32> = sets
                    .iter()
                    .map(|s| match arena.get(s.key()) {
                        Some(id) => id,
                        None => arena.insert_new(s.key(), s.assignments(), 0, 0, false),
                    })
                    .collect();
                for i in 0..sets.len() {
                    for j in 0..sets.len() {
                        prop_assert_eq!(
                            ids[i] == ids[j],
                            sets[i] == sets[j],
                            "id equality must match state equality"
                        );
                        prop_assert_eq!(
                            arena.assignments(ids[i]) == sets[i].assignments(),
                            true
                        );
                    }
                }
            }
        }
    }
}
