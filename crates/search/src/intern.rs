//! Arena-backed state interning: canonical states as dense `u32` ids.
//!
//! The engines used to carry every state as its own heap object
//! (`Box<[MachineState]>`) and key every bookkeeping structure by the full
//! 128-bit content hash. The arena replaces that layout with three dense
//! structures:
//!
//! * one contiguous `Vec<MachineState>` holding every kept state's
//!   assignments back to back (a state is an `(offset, len)` span);
//! * a `Vec<StateMeta>` of per-state facts — span, permutation count,
//!   max per-assignment distance, goal flag — computed **once** when the
//!   state is interned, so heuristics and goal checks become field reads;
//! * an identity-hashed `key → id` map that doubles as the closed set.
//!
//! Ids are dense and allocation stops once the backing vectors reach their
//! high-water mark, so the steady-state cost of keeping a state is a
//! `memcpy` of its span plus one map insert. The sequential engine owns one
//! arena; each parallel shard owns its own (single-writer, behind the
//! shard's existing lock), so interning never takes a global lock.

use sortsynth_isa::MachineState;

use crate::hashers::KeyMap;

/// Per-state facts cached at intern time. Everything the hot loop needs
/// after interning — heuristic inputs, goal flag, the span — without
/// touching the assignments again.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StateMeta {
    /// Span start in the arena's assignment store.
    offset: u32,
    /// Number of assignments (also §3.1's `AssignCount` heuristic).
    len: u32,
    /// Distinct value-register projections (§3.1/§3.5's permutation count).
    pub perm: u32,
    /// Maximum per-assignment sorting distance ([`crate::DistanceTable`]),
    /// `0` when the run has no table — the `MaxRemaining` heuristic then
    /// degrades to uniform cost, matching the documented table-skip
    /// behavior.
    pub max_dist: u16,
    /// Whether every assignment is sorted (§3.4).
    pub goal: bool,
}

impl StateMeta {
    /// §3.1's second heuristic: the number of distinct assignments.
    pub fn assign_count(&self) -> u32 {
        self.len
    }
}

/// The interner. See the module docs for the layout.
#[derive(Default)]
pub(crate) struct StateArena {
    assigns: Vec<MachineState>,
    metas: Vec<StateMeta>,
    ids: KeyMap<u32>,
}

impl StateArena {
    pub fn new() -> Self {
        StateArena::default()
    }

    /// Looks up the id interned for `key`, if any.
    #[inline]
    pub fn get(&self, key: u128) -> Option<u32> {
        self.ids.get(&key).copied()
    }

    /// Interns a state known to be absent (callers check [`StateArena::get`]
    /// first) and returns its dense id.
    pub fn insert_new(
        &mut self,
        key: u128,
        assigns: &[MachineState],
        perm: u32,
        max_dist: u16,
        goal: bool,
    ) -> u32 {
        let offset = u32::try_from(self.assigns.len()).expect("state arena span overflow");
        self.assigns.extend_from_slice(assigns);
        let id = u32::try_from(self.metas.len()).expect("state arena id overflow");
        self.metas.push(StateMeta {
            offset,
            len: assigns.len() as u32,
            perm,
            max_dist,
            goal,
        });
        let previous = self.ids.insert(key, id);
        debug_assert!(previous.is_none(), "intern of an already-interned key");
        id
    }

    /// The canonical assignments of state `id`.
    #[inline]
    pub fn assignments(&self, id: u32) -> &[MachineState] {
        let m = &self.metas[id as usize];
        &self.assigns[m.offset as usize..(m.offset + m.len) as usize]
    }

    /// The cached facts of state `id`.
    #[inline]
    pub fn meta(&self, id: u32) -> &StateMeta {
        &self.metas[id as usize]
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Bytes of assignment storage currently reserved (the arena's dominant
    /// memory term; per-state metadata is excluded by definition of
    /// [`crate::SearchStats::arena_bytes`]).
    pub fn assign_bytes(&self) -> u64 {
        (self.assigns.capacity() * std::mem::size_of::<MachineState>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{key_of, StateSet};
    use sortsynth_isa::{IsaMode, Machine};

    #[test]
    fn intern_round_trip() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let set = StateSet::initial(&m);
        let mut arena = StateArena::new();
        assert_eq!(arena.get(set.key()), None);
        let id = arena.insert_new(set.key(), set.assignments(), 6, 4, false);
        assert_eq!(arena.get(set.key()), Some(id));
        assert_eq!(arena.assignments(id), set.assignments());
        let meta = arena.meta(id);
        assert_eq!((meta.perm, meta.assign_count()), (6, 6));
        assert_eq!(meta.max_dist, 4);
        assert!(!meta.goal);
        assert_eq!(arena.len(), 1);
        assert!(arena.assign_bytes() >= 6 * 8);
    }

    /// Satellite property: interner id equality must coincide with
    /// [`StateSet`] equality — distinct canonical states get distinct ids,
    /// and re-deriving a state (different instruction order, same effect)
    /// maps to the same id via the same key.
    #[test]
    fn id_equality_matches_state_equality() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let init = StateSet::initial(&m);
        let mut arena = StateArena::new();
        let mut seen: Vec<(StateSet, u32)> = Vec::new();
        let mut frontier = vec![init];
        for _ in 0..3 {
            let mut next = Vec::new();
            for state in frontier {
                let key = key_of(state.assignments());
                assert_eq!(key, state.key(), "slice key matches StateSet::key");
                let id = match arena.get(key) {
                    Some(id) => id,
                    None => {
                        let id = arena.insert_new(key, state.assignments(), 0, 0, false);
                        for a in m.actions() {
                            next.push(state.apply(a));
                        }
                        id
                    }
                };
                for (other, other_id) in &seen {
                    assert_eq!(
                        id == *other_id,
                        state == *other,
                        "id equality must match state equality"
                    );
                }
                if seen.iter().all(|(_, i)| *i != id) {
                    seen.push((state, id));
                }
            }
            frontier = next;
        }
        assert!(arena.len() > 10, "walk interned a real population");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use sortsynth_isa::MachineState;

        /// Random single assignment for the n = 3, m = 1 machine.
        fn arb_assignment() -> impl Strategy<Value = MachineState> {
            (
                prop::collection::vec(0u8..=3, 4),
                prop_oneof![
                    Just((false, false)),
                    Just((true, false)),
                    Just((false, true))
                ],
            )
                .prop_map(|(vals, (lt, gt))| {
                    let mut st = MachineState::from_values(&vals);
                    st.set_flags(lt, gt);
                    st
                })
        }

        proptest! {
            /// Satellite property over *random* sets: get-or-insert through
            /// the arena assigns equal ids exactly to equal `StateSet`s.
            #[test]
            fn random_sets_intern_to_matching_ids(
                sets in prop::collection::vec(
                    prop::collection::vec(arb_assignment(), 1..10),
                    2..8,
                ),
            ) {
                let sets: Vec<StateSet> = sets
                    .into_iter()
                    .map(StateSet::from_assignments)
                    .collect();
                let mut arena = StateArena::new();
                let ids: Vec<u32> = sets
                    .iter()
                    .map(|s| match arena.get(s.key()) {
                        Some(id) => id,
                        None => arena.insert_new(s.key(), s.assignments(), 0, 0, false),
                    })
                    .collect();
                for i in 0..sets.len() {
                    for j in 0..sets.len() {
                        prop_assert_eq!(
                            ids[i] == ids[j],
                            sets[i] == sets[j],
                            "id equality must match state equality"
                        );
                        prop_assert_eq!(
                            arena.assignments(ids[i]) == sets[i].assignments(),
                            true
                        );
                    }
                }
            }
        }
    }
}
