//! Live search progress: a throttled callback hook plus structured trace
//! events, so a running search can be watched without waiting for
//! [`crate::SearchStats`] at the end.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Outcome;

/// A snapshot of a running (or just-finished) search, delivered to the
/// [`ProgressHook`] and mirrored as a `search_progress` trace event.
///
/// Emission is throttled by expansion count (see
/// [`crate::SynthesisConfig::progress_every`]); a final snapshot with
/// `finished = true` is always delivered regardless of the throttle — even
/// for cancelled searches — so the last event's `expanded` always equals the
/// run's [`crate::SearchStats::expanded`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchProgress {
    /// Wall-clock time since the search started.
    pub elapsed: Duration,
    /// States whose successors have been explored so far.
    pub expanded: u64,
    /// States produced by applying instructions so far.
    pub generated: u64,
    /// Open (not yet expanded) states at the time of the snapshot.
    pub open: u64,
    /// Current frontier bound: the layer depth in layered mode, the `f`
    /// value of the most recently popped entry in A* mode. `None` before
    /// the first expansion.
    pub f_bound: Option<u64>,
    /// Successors dropped by the viability checks so far.
    pub viability_pruned: u64,
    /// Successors dropped by the permutation-count cut so far.
    pub cut_pruned: u64,
    /// Successors dropped as duplicates so far.
    pub dedup_hits: u64,
    /// Successors skipped by the dead-write cut so far.
    pub dead_write_pruned: u64,
    /// Successors skipped by the symbolic value-flow cut so far.
    pub value_flow_pruned: u64,
    /// Whether this run fell back to degraded pruning because the machine
    /// exceeds the distance table's limits.
    pub distance_table_skipped: bool,
    /// Open states whose assignment spans were spilled to disk so far.
    pub spilled_open: u64,
    /// Closed-set entries evicted to disk segments so far.
    pub spilled_closed: u64,
    /// Duplicates caught by delayed duplicate detection against spilled
    /// closed segments so far.
    pub ddd_dedup_hits: u64,
    /// Frontier states restored from a resume journal (0 for fresh runs).
    pub resumed_frontier_states: u64,
    /// Estimated bytes of resident (in-memory) search state.
    pub resident_bytes: u64,
    /// Bytes written to spill segments so far.
    pub spilled_bytes: u64,
    /// `true` exactly once, on the final snapshot of the run.
    pub finished: bool,
    /// How the run ended; only set when `finished`.
    pub outcome: Option<Outcome>,
    /// Per-shard memory state at snapshot time: one entry per parallel
    /// worker shard, or a single entry for the sequential engine. These are
    /// live values — their running maxima are the high-water marks the
    /// flight recorder exists to capture.
    pub shards: Vec<ShardProgress>,
}

/// One shard's memory/backlog state inside a [`SearchProgress`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardProgress {
    /// Unique canonical states interned into this shard's arena.
    pub interned_states: u64,
    /// Bytes of assignment storage held by this shard's arena.
    pub arena_bytes: u64,
    /// This shard's open-list depth.
    pub open_depth: u64,
}

impl SearchProgress {
    /// Total interned states across shards.
    pub fn interned_states(&self) -> u64 {
        self.shards.iter().map(|s| s.interned_states).sum()
    }

    /// Total arena bytes across shards.
    pub fn arena_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.arena_bytes).sum()
    }

    /// Converts this snapshot into a flight-recorder frame (`seq` is
    /// assigned by the recorder at append time).
    pub fn recorder_frame(&self) -> sortsynth_obs::recorder::Frame {
        sortsynth_obs::recorder::Frame {
            seq: 0,
            elapsed_micros: self.elapsed.as_micros() as u64,
            expanded: self.expanded,
            generated: self.generated,
            open: self.open,
            f_bound: self.f_bound,
            viability_pruned: self.viability_pruned,
            cut_pruned: self.cut_pruned,
            dedup_hits: self.dedup_hits,
            dead_write_pruned: self.dead_write_pruned,
            value_flow_pruned: self.value_flow_pruned,
            distance_table_skipped: self.distance_table_skipped,
            spilled_open: self.spilled_open,
            spilled_closed: self.spilled_closed,
            ddd_dedup_hits: self.ddd_dedup_hits,
            resumed_frontier_states: self.resumed_frontier_states,
            resident_bytes: self.resident_bytes,
            spilled_bytes: self.spilled_bytes,
            finished: self.finished,
            outcome: self.outcome.map(|o| format!("{o:?}")),
            shards: self
                .shards
                .iter()
                .map(|s| sortsynth_obs::recorder::ShardFrame {
                    interned_states: s.interned_states,
                    arena_bytes: s.arena_bytes,
                    open_depth: s.open_depth,
                })
                .collect(),
        }
    }
}

/// A callback receiving [`SearchProgress`] snapshots mid-search.
///
/// Wrapped in an `Arc` so [`crate::SynthesisConfig`] stays `Clone`; the
/// manual [`Debug`] keeps the config's derive working over the closure.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(&SearchProgress) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&SearchProgress) + Send + Sync + 'static) -> Self {
        ProgressHook(Arc::new(f))
    }

    /// Delivers one snapshot.
    pub fn call(&self, progress: &SearchProgress) {
        (self.0)(progress);
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Whether snapshot delivery would reach any consumer: skip building
/// snapshots entirely when neither a hook nor tracing is active.
pub(crate) fn delivery_active(hook: Option<&ProgressHook>) -> bool {
    hook.is_some() || sortsynth_obs::enabled()
}

/// Delivers one snapshot to the hook (if any) and, when tracing is active,
/// mirrors it as a `search_progress` trace event. Shared by the sequential
/// engine and the parallel coordinator/workers.
pub(crate) fn deliver(hook: Option<&ProgressHook>, snapshot: &SearchProgress) {
    use sortsynth_obs::{FieldValue, Level};

    if let Some(hook) = hook {
        hook.call(snapshot);
    }
    if sortsynth_obs::enabled() {
        let mut fields = vec![
            ("expanded", FieldValue::U64(snapshot.expanded)),
            ("generated", FieldValue::U64(snapshot.generated)),
            ("open", FieldValue::U64(snapshot.open)),
            (
                "viability_pruned",
                FieldValue::U64(snapshot.viability_pruned),
            ),
            ("cut_pruned", FieldValue::U64(snapshot.cut_pruned)),
            ("dedup_hits", FieldValue::U64(snapshot.dedup_hits)),
            (
                "dead_write_pruned",
                FieldValue::U64(snapshot.dead_write_pruned),
            ),
            (
                "value_flow_pruned",
                FieldValue::U64(snapshot.value_flow_pruned),
            ),
            (
                "distance_table_skipped",
                FieldValue::Bool(snapshot.distance_table_skipped),
            ),
            (
                "interned_states",
                FieldValue::U64(snapshot.interned_states()),
            ),
            ("arena_bytes", FieldValue::U64(snapshot.arena_bytes())),
            ("finished", FieldValue::Bool(snapshot.finished)),
        ];
        if let Some(f) = snapshot.f_bound {
            fields.push(("f_bound", FieldValue::U64(f)));
        }
        if let Some(outcome) = snapshot.outcome {
            fields.push(("outcome", FieldValue::Str(format!("{outcome:?}"))));
        }
        sortsynth_obs::trace::event(Level::Debug, "search_progress", &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hook_is_callable_and_cloneable() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let hook = ProgressHook::new(move |p| {
            assert!(p.finished);
            c.fetch_add(1, Ordering::Relaxed);
        });
        let snapshot = SearchProgress {
            elapsed: Duration::ZERO,
            expanded: 0,
            generated: 0,
            open: 0,
            f_bound: None,
            viability_pruned: 0,
            cut_pruned: 0,
            dedup_hits: 0,
            dead_write_pruned: 0,
            value_flow_pruned: 0,
            distance_table_skipped: false,
            spilled_open: 0,
            spilled_closed: 0,
            ddd_dedup_hits: 0,
            resumed_frontier_states: 0,
            resident_bytes: 0,
            spilled_bytes: 0,
            finished: true,
            outcome: Some(Outcome::Exhausted),
            shards: vec![ShardProgress {
                interned_states: 10,
                arena_bytes: 640,
                open_depth: 3,
            }],
        };
        hook.clone().call(&snapshot);
        hook.call(&snapshot);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(format!("{hook:?}"), "ProgressHook(..)");
    }

    #[test]
    fn recorder_frame_mirrors_the_snapshot() {
        let snapshot = SearchProgress {
            elapsed: Duration::from_micros(1234),
            expanded: 7,
            generated: 21,
            open: 4,
            f_bound: Some(5),
            viability_pruned: 1,
            cut_pruned: 2,
            dedup_hits: 3,
            dead_write_pruned: 4,
            value_flow_pruned: 5,
            distance_table_skipped: true,
            spilled_open: 11,
            spilled_closed: 12,
            ddd_dedup_hits: 13,
            resumed_frontier_states: 14,
            resident_bytes: 1500,
            spilled_bytes: 1600,
            finished: true,
            outcome: Some(Outcome::Solved),
            shards: vec![
                ShardProgress {
                    interned_states: 6,
                    arena_bytes: 384,
                    open_depth: 2,
                },
                ShardProgress {
                    interned_states: 4,
                    arena_bytes: 256,
                    open_depth: 2,
                },
            ],
        };
        assert_eq!(snapshot.interned_states(), 10);
        assert_eq!(snapshot.arena_bytes(), 640);
        let frame = snapshot.recorder_frame();
        assert_eq!(frame.elapsed_micros, 1234);
        assert_eq!(frame.expanded, 7);
        assert_eq!(frame.f_bound, Some(5));
        assert!(frame.distance_table_skipped && frame.finished);
        assert_eq!(frame.spilled_open, 11);
        assert_eq!(frame.resident_bytes, 1500);
        assert_eq!(frame.spilled_bytes, 1600);
        assert_eq!(frame.outcome.as_deref(), Some("Solved"));
        assert_eq!(frame.shards.len(), 2);
        assert_eq!(frame.shards[0].arena_bytes, 384);
    }
}
