//! Persisted arena-sizing table: per-(n, scratch, ISA, threads) high-water
//! marks from completed runs, used to pre-size the state arena, node store,
//! and open-list lanes so steady-state search never pays a growth
//! reallocation spike.
//!
//! The table is a tiny human-readable text file (one row per
//! configuration), written next to the kernel cache when the CLI/service
//! passes [`crate::SynthesisConfig::sizing_path`]. Rows max-merge: a rerun
//! only ever raises the recorded high-water marks. Parsing is best-effort —
//! a missing or damaged file simply yields an empty table, and saving
//! ignores I/O errors (sizing is an optimization, never a correctness
//! input).

use std::fs;
use std::path::Path;

use sortsynth_isa::{IsaMode, Machine};

/// First line of the sizing file; a file with any other header is ignored.
const HEADER: &str = "# sortsynth sizing v1";

/// One configuration's identity in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SizingKey {
    pub n: u8,
    pub scratch: u8,
    pub minmax: bool,
    pub threads: u32,
}

impl SizingKey {
    fn of(machine: &Machine, threads: u32) -> SizingKey {
        SizingKey {
            n: machine.n(),
            scratch: machine.scratch(),
            minmax: machine.mode() == IsaMode::MinMax,
            threads,
        }
    }
}

/// High-water marks of one completed run (max-merged across runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SizingRow {
    /// Unique canonical states interned.
    pub states: u64,
    /// Total assignments held by the arena's span store.
    pub assigns: u64,
    /// Assignment bytes reserved at end of run.
    pub arena_bytes: u64,
    /// Peak open-list / frontier depth.
    pub open_depth: u64,
}

impl SizingRow {
    fn max_merge(&mut self, other: SizingRow) {
        self.states = self.states.max(other.states);
        self.assigns = self.assigns.max(other.assigns);
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.open_depth = self.open_depth.max(other.open_depth);
    }
}

/// The in-memory table. Tiny (a handful of rows), so a `Vec` beats a map.
#[derive(Debug, Default)]
pub(crate) struct SizingTable {
    rows: Vec<(SizingKey, SizingRow)>,
}

impl SizingTable {
    /// Best-effort load: missing file, bad header, or unparsable rows yield
    /// an empty (or partial) table.
    pub fn load(path: &Path) -> SizingTable {
        let mut table = SizingTable::default();
        let Ok(text) = fs::read_to_string(path) else {
            return table;
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return table;
        }
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() != 8 {
                continue;
            }
            let parsed = (|| {
                let key = SizingKey {
                    n: f[0].parse().ok()?,
                    scratch: f[1].parse().ok()?,
                    minmax: match f[2] {
                        "cmov" => false,
                        "minmax" => true,
                        _ => return None,
                    },
                    threads: f[3].parse().ok()?,
                };
                let row = SizingRow {
                    states: f[4].parse().ok()?,
                    assigns: f[5].parse().ok()?,
                    arena_bytes: f[6].parse().ok()?,
                    open_depth: f[7].parse().ok()?,
                };
                Some((key, row))
            })();
            if let Some((key, row)) = parsed {
                table.merge(key, row);
            }
        }
        table
    }

    fn merge(&mut self, key: SizingKey, row: SizingRow) {
        match self.rows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, existing)) => existing.max_merge(row),
            None => self.rows.push((key, row)),
        }
    }

    /// The recorded high-water marks for `machine` at `threads` workers.
    pub fn lookup(&self, machine: &Machine, threads: u32) -> Option<SizingRow> {
        let key = SizingKey::of(machine, threads);
        self.rows.iter().find(|(k, _)| *k == key).map(|&(_, r)| r)
    }

    /// Max-merges one completed run's marks into the table.
    pub fn record(&mut self, machine: &Machine, threads: u32, row: SizingRow) {
        self.merge(SizingKey::of(machine, threads), row);
    }

    /// Atomically rewrites the file (tmp + rename). I/O errors are ignored:
    /// a sizing table that fails to persist costs the next run a warm-up,
    /// nothing more.
    pub fn save(&self, path: &Path) {
        let mut text = String::from(HEADER);
        text.push('\n');
        text.push_str("# n scratch isa threads states assigns arena_bytes open_depth\n");
        for (key, row) in &self.rows {
            let isa = if key.minmax { "minmax" } else { "cmov" };
            text.push_str(&format!(
                "{} {} {} {} {} {} {} {}\n",
                key.n,
                key.scratch,
                isa,
                key.threads,
                row.states,
                row.assigns,
                row.arena_bytes,
                row.open_depth
            ));
        }
        let tmp = path.with_extension("tmp");
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = fs::create_dir_all(dir);
        }
        if fs::write(&tmp, text).is_ok() {
            let _ = fs::rename(&tmp, path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sssizing-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("sizing.txt")
    }

    #[test]
    fn round_trip_and_max_merge() {
        let path = tmp("rt");
        let m3 = Machine::new(3, 1, IsaMode::Cmov);
        let m3mm = Machine::new(3, 1, IsaMode::MinMax);
        let mut table = SizingTable::load(&path);
        assert!(table.lookup(&m3, 1).is_none());
        table.record(
            &m3,
            1,
            SizingRow {
                states: 100,
                assigns: 600,
                arena_bytes: 4800,
                open_depth: 40,
            },
        );
        table.record(
            &m3mm,
            4,
            SizingRow {
                states: 50,
                assigns: 300,
                arena_bytes: 2400,
                open_depth: 20,
            },
        );
        table.save(&path);

        let mut loaded = SizingTable::load(&path);
        assert_eq!(
            loaded.lookup(&m3, 1).unwrap(),
            SizingRow {
                states: 100,
                assigns: 600,
                arena_bytes: 4800,
                open_depth: 40,
            }
        );
        assert!(
            loaded.lookup(&m3, 4).is_none(),
            "threads are part of the key"
        );
        assert!(loaded.lookup(&m3mm, 4).is_some());
        // Max-merge: a smaller rerun never lowers the marks, a larger one
        // raises them fieldwise.
        loaded.record(
            &m3,
            1,
            SizingRow {
                states: 80,
                assigns: 900,
                arena_bytes: 100,
                open_depth: 50,
            },
        );
        let merged = loaded.lookup(&m3, 1).unwrap();
        assert_eq!(merged.states, 100);
        assert_eq!(merged.assigns, 900);
        assert_eq!(merged.arena_bytes, 4800);
        assert_eq!(merged.open_depth, 50);
    }

    #[test]
    fn damaged_file_loads_as_empty() {
        let path = tmp("bad");
        fs::write(&path, "not a sizing file\n3 1 cmov 1 1 1 1 1\n").unwrap();
        let table = SizingTable::load(&path);
        assert!(table
            .lookup(&Machine::new(3, 1, IsaMode::Cmov), 1)
            .is_none());
        // Bad rows under a good header are skipped, good rows kept.
        fs::write(
            &path,
            format!("{HEADER}\ngarbage row\n3 1 cmov 1 10 60 480 7\n"),
        )
        .unwrap();
        let table = SizingTable::load(&path);
        assert_eq!(
            table.lookup(&Machine::new(3, 1, IsaMode::Cmov), 1).unwrap(),
            SizingRow {
                states: 10,
                assigns: 60,
                arena_bytes: 480,
                open_depth: 7,
            }
        );
    }
}
