//! Heuristic evaluation for A* open-state selection (§3.1).

use sortsynth_isa::Machine;

use crate::config::Heuristic;
use crate::distance::DistanceTable;
use crate::state::StateSet;

/// Evaluates `heuristic` on `state`.
///
/// `perm` is the precomputed permutation count of `state` (the engine always
/// has it at hand, so we avoid recomputing the projection). `table` must be
/// `Some` for [`Heuristic::MaxRemaining`].
///
/// # Panics
///
/// Panics if [`Heuristic::MaxRemaining`] is requested without a distance
/// table.
pub fn heuristic_value(
    heuristic: Heuristic,
    state: &StateSet,
    perm: u32,
    machine: &Machine,
    table: Option<&DistanceTable>,
) -> u32 {
    let _ = machine;
    match heuristic {
        Heuristic::None => 0,
        Heuristic::PermCount => perm,
        Heuristic::AssignCount => state.assign_count(),
        Heuristic::MaxRemaining => {
            let table = table.expect("MaxRemaining heuristic requires the distance table");
            table.max_dist(state) as u32
        }
    }
}

/// [`heuristic_value`] from facts cached at intern time
/// ([`crate::intern::StateMeta`]): no state walk, no table lookup — three
/// field reads. `max_dist` is `0` when the run has no distance table, so
/// `MaxRemaining` degrades to uniform cost there (the documented
/// table-skip behavior; see [`crate::SearchStats::distance_table_skipped`]).
pub(crate) fn heuristic_from_meta(
    heuristic: Heuristic,
    perm: u32,
    assign_count: u32,
    max_dist: u16,
) -> u32 {
    match heuristic {
        Heuristic::None => 0,
        Heuristic::PermCount => perm,
        Heuristic::AssignCount => assign_count,
        Heuristic::MaxRemaining => max_dist as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortsynth_isa::IsaMode;

    #[test]
    fn heuristic_values_on_initial_state() {
        let m = Machine::new(3, 1, IsaMode::Cmov);
        let s = StateSet::initial(&m);
        let perm = s.perm_count(&m);
        assert_eq!(heuristic_value(Heuristic::None, &s, perm, &m, None), 0);
        assert_eq!(heuristic_value(Heuristic::PermCount, &s, perm, &m, None), 6);
        assert_eq!(
            heuristic_value(Heuristic::AssignCount, &s, perm, &m, None),
            6
        );
        let table = DistanceTable::build(&m, false);
        let h = heuristic_value(Heuristic::MaxRemaining, &s, perm, &m, Some(&table));
        // Worst single assignment for n = 3 is a 3-cycle: a 4-mov rotation.
        // (Per-assignment programs know the concrete values, so they never
        // compare — the bound is weak but admissible.)
        assert_eq!(h, 4);
        // Admissibility: never exceeds the known optimum of 11.
        assert!(h <= 11);
    }
}
