//! Bucketed open lists for the best-first engines.
//!
//! f-values in this search are small dense integers — bounded by
//! `max_len + max_dist` when the distance table is on, and by the depth
//! bound plus the largest heuristic value otherwise — so a bucket queue
//! (Dial's structure) replaces the `BinaryHeap`'s `O(log n)` sift with
//! `O(1)` pushes and an amortized-`O(1)` monotone cursor scan on pops.
//!
//! # Exact heap-order equivalence
//!
//! The binary-heap open list pops entries in ascending `(f, g, id)`
//! order, and the differential harness (`bucket_equivalence.rs`) pins the
//! two implementations to *identical* expansion traces in single-thread
//! runs. A flat bucket-per-f with FIFO lanes cannot promise that — f-ties
//! between goal entries (f = g) and frontier entries interleave by
//! arrival, not by `(g, id)`. So the queue is two-level: the outer `Vec`
//! is indexed by f, each f-bucket's inner `Vec` is indexed by g, and each
//! `(f, g)` lane holds state ids consumed through a cursor. Fresh arena
//! ids are allocated in increasing order, so within a lane pushes arrive
//! (almost) sorted; the rare out-of-order push — a reopened state or a
//! re-generated goal re-pushing an old id — bubbles backward into the
//! lane's unconsumed tail, which stays sorted. Pop therefore returns the
//! exact `(f, g, id)` minimum, and a heap-vs-bucket run is bit-identical.
//!
//! # Monotone cursor and admissibility
//!
//! With an admissible, consistent heuristic the sequence of popped
//! f-values is non-decreasing and the outer cursor only ever advances —
//! the classic Dijkstra/A* argument, and why the cursor scan amortizes to
//! `O(max_f)` over the whole search. The engine, however, also runs
//! *inadmissible* heuristics (`PermCount`, `AssignCount`), under which a
//! successor's f can undercut the current pop. Correctness does not rest
//! on monotonicity: every push compares the target index against the
//! cursor and moves it *backward* when undercut (likewise for the per-f
//! g-cursor), so the minimum is never skipped; the scan bound degrades
//! gracefully instead of the result.
//!
//! # Staleness
//!
//! Like the heap, the queue never removes or rewrites an entry in place:
//! a reopened state is pushed again at its improved `(f, g)` and the old
//! entry is discarded lazily at pop time by the engines' staleness checks
//! against `StateMeta`/`ParEdge` (counted in `stale_pops`). The queue
//! itself only promises ordered delivery of everything pushed.
//!
//! # Growth
//!
//! Both levels grow on demand. The engines size the outer level from the
//! `max_len + max_dist` estimate, but f-values above it are legal —
//! machines past the distance table's action limit skip the table and
//! search with weaker, unbounded heuristics — so `push` grows rather
//! than panicking (regression-tested next to the oversized-machine test).

use std::collections::BinaryHeap;

use crate::config::OpenList;

/// An `(f, g)` lane: state ids sorted ascending from `next` on, consumed
/// through `next`. A fully drained lane releases its buffer only via
/// [`Lane::reset`] (cheap `Vec::clear`, capacity kept).
#[derive(Clone, Debug, Default)]
struct Lane {
    ids: Vec<u32>,
    next: usize,
}

impl Lane {
    #[inline]
    fn is_drained(&self) -> bool {
        self.next >= self.ids.len()
    }

    #[inline]
    fn reset(&mut self) {
        self.ids.clear();
        self.next = 0;
    }
}

/// One f-value's bucket: lanes indexed by g plus a backward-movable
/// g-cursor and a live-entry count.
#[derive(Clone, Debug, Default)]
struct FBucket {
    lanes: Vec<Lane>,
    cursor: usize,
    live: usize,
}

/// A two-level bucket queue over `(f, g, state id)` triples, popping the
/// exact `(f, g, id)` minimum like the `BinaryHeap` it replaces.
///
/// # Examples
///
/// ```
/// use sortsynth_search::BucketQueue;
///
/// let mut q = BucketQueue::with_f_hint(4);
/// q.push(3, 2, 7);
/// q.push(1, 1, 9);
/// q.push(3, 1, 4);
/// assert_eq!(q.pop(), Some((1, 1, 9)));
/// assert_eq!(q.pop(), Some((3, 1, 4)));
/// assert_eq!(q.pop(), Some((3, 2, 7)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BucketQueue {
    buckets: Vec<FBucket>,
    cursor: usize,
    len: usize,
    scans: u64,
    /// Initial id capacity of freshly created lanes (0 = grow on demand).
    /// Sized from the sizing table's recorded peak open depth so the hot
    /// lanes never pay growth reallocations mid-layer.
    lane_hint: usize,
}

impl BucketQueue {
    /// An empty queue with no pre-sized buckets.
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// An empty queue with the outer level pre-allocated for f-values up
    /// to `hint` (exclusive). Larger f-values still work — the level
    /// grows on demand.
    pub fn with_f_hint(hint: usize) -> Self {
        BucketQueue {
            buckets: Vec::with_capacity(hint),
            ..BucketQueue::default()
        }
    }

    /// [`BucketQueue::with_f_hint`] plus a per-lane id-capacity hint for
    /// freshly created lanes.
    pub fn with_hints(f_hint: usize, lane_hint: usize) -> Self {
        BucketQueue {
            buckets: Vec::with_capacity(f_hint),
            lane_hint,
            ..BucketQueue::default()
        }
    }

    /// Live (un-popped) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cursor-advance steps over empty buckets/lanes so far — the
    /// `bucket_scans` search counter.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Inserts `(f, g, id)`. Amortized `O(1)`: out-of-order ids within a
    /// lane (reopens, goal re-pushes) bubble backward, but fresh ids —
    /// the overwhelming majority — are already in arrival order.
    pub fn push(&mut self, f: u64, g: u32, id: u32) {
        let fi = usize::try_from(f).expect("f-value fits a usize");
        if fi >= self.buckets.len() {
            self.buckets.resize_with(fi + 1, FBucket::default);
        }
        let bucket = &mut self.buckets[fi];
        let gi = g as usize;
        if gi >= bucket.lanes.len() {
            let hint = self.lane_hint;
            bucket.lanes.resize_with(gi + 1, || Lane {
                ids: Vec::with_capacity(hint),
                next: 0,
            });
        }
        let lane = &mut bucket.lanes[gi];
        if lane.is_drained() {
            lane.reset();
        }
        lane.ids.push(id);
        let mut i = lane.ids.len() - 1;
        while i > lane.next && lane.ids[i - 1] > id {
            lane.ids.swap(i - 1, i);
            i -= 1;
        }
        if bucket.live == 0 || gi < bucket.cursor {
            bucket.cursor = gi;
        }
        bucket.live += 1;
        if self.len == 0 || fi < self.cursor {
            self.cursor = fi;
        }
        self.len += 1;
    }

    /// Removes and returns the `(f, g, id)` minimum, or `None` when
    /// empty.
    pub fn pop(&mut self) -> Option<(u64, u32, u32)> {
        if self.len == 0 {
            return None;
        }
        // A non-empty bucket exists at or past the cursor: pushes move
        // the cursor backward whenever they land below it.
        while self.buckets[self.cursor].live == 0 {
            self.cursor += 1;
            self.scans += 1;
        }
        let fi = self.cursor;
        let bucket = &mut self.buckets[fi];
        while bucket.lanes[bucket.cursor].is_drained() {
            bucket.cursor += 1;
            self.scans += 1;
        }
        let gi = bucket.cursor;
        let lane = &mut bucket.lanes[gi];
        let id = lane.ids[lane.next];
        lane.next += 1;
        if lane.is_drained() {
            lane.reset();
        }
        bucket.live -= 1;
        self.len -= 1;
        Some((fi as u64, gi as u32, id))
    }
}

/// An entry in the binary-heap variant; ordered so the `BinaryHeap`
/// max-heap pops the smallest `(f, g, id)` first, matching
/// [`BucketQueue::pop`] exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct HeapEntry {
    f: u64,
    g: u32,
    id: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.f, other.g, other.id).cmp(&(self.f, self.g, self.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The open list behind both engines: the production [`BucketQueue`] or
/// the reference `BinaryHeap`, selected by [`OpenList`] in the config so
/// the differential harness can pin one against the other.
#[derive(Clone, Debug)]
pub(crate) enum OpenQueue {
    Heap(BinaryHeap<HeapEntry>),
    Bucket(BucketQueue),
}

impl OpenQueue {
    /// An empty queue of the configured kind, pre-sized (bucket variant)
    /// for f-values below `f_hint`.
    pub(crate) fn new(kind: OpenList, f_hint: usize) -> Self {
        OpenQueue::with_hints(kind, f_hint, 0)
    }

    /// [`OpenQueue::new`] plus a per-lane capacity hint (bucket variant
    /// only), from the sizing table's recorded peak open depth.
    pub(crate) fn with_hints(kind: OpenList, f_hint: usize, lane_hint: usize) -> Self {
        match kind {
            OpenList::Heap => OpenQueue::Heap(BinaryHeap::new()),
            OpenList::Bucket => OpenQueue::Bucket(BucketQueue::with_hints(f_hint, lane_hint)),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, f: u64, g: u32, id: u32) {
        match self {
            OpenQueue::Heap(h) => h.push(HeapEntry { f, g, id }),
            OpenQueue::Bucket(b) => b.push(f, g, id),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u64, u32, u32)> {
        match self {
            OpenQueue::Heap(h) => h.pop().map(|e| (e.f, e.g, e.id)),
            OpenQueue::Bucket(b) => b.pop(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            OpenQueue::Heap(h) => h.len(),
            OpenQueue::Bucket(b) => b.len(),
        }
    }

    /// Bucket-cursor scan steps (0 for the heap variant).
    pub(crate) fn scans(&self) -> u64 {
        match self {
            OpenQueue::Heap(_) => 0,
            OpenQueue::Bucket(b) => b.scans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_fgid_minimum_across_interleavings() {
        let mut q = BucketQueue::new();
        q.push(2, 2, 10);
        q.push(2, 1, 11);
        q.push(0, 0, 3);
        q.push(2, 1, 2);
        assert_eq!(q.pop(), Some((0, 0, 3)));
        // Same (f, g): smallest id wins even though 11 arrived first.
        assert_eq!(q.pop(), Some((2, 1, 2)));
        q.push(1, 1, 9); // undercuts the cursor (inadmissible heuristic)
        assert_eq!(q.pop(), Some((1, 1, 9)));
        assert_eq!(q.pop(), Some((2, 1, 11)));
        assert_eq!(q.pop(), Some((2, 2, 10)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn lane_cursor_moves_backward_on_undercutting_g() {
        let mut q = BucketQueue::new();
        q.push(5, 4, 1);
        assert_eq!(q.pop(), Some((5, 4, 1)));
        // Same f, smaller g than the already-consumed lane.
        q.push(5, 2, 7);
        assert_eq!(q.pop(), Some((5, 2, 7)));
    }

    #[test]
    fn duplicate_triples_pop_once_each() {
        // A goal state re-generated along a second path pushes the exact
        // same (f, g, id) twice; both copies must surface.
        let mut q = BucketQueue::new();
        q.push(3, 3, 8);
        q.push(3, 3, 8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((3, 3, 8)));
        assert_eq!(q.pop(), Some((3, 3, 8)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn grows_past_the_f_hint_without_panicking() {
        // Satellite regression: oversized machines skip the distance
        // table, so f-values exceed the `max_len + max_dist` sizing
        // estimate. The queue must grow, not panic.
        let mut q = BucketQueue::with_f_hint(4);
        q.push(1, 1, 0);
        q.push(1000, 40, 1);
        q.push(17, 9, 2);
        assert_eq!(q.pop(), Some((1, 1, 0)));
        assert_eq!(q.pop(), Some((17, 9, 2)));
        assert_eq!(q.pop(), Some((1000, 40, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drained_lanes_release_their_entries() {
        let mut q = BucketQueue::new();
        for round in 0..100u32 {
            for id in 0..64 {
                q.push(3, 2, round * 64 + id);
            }
            while q.pop().is_some() {}
        }
        // The (3, 2) lane was fully drained each round, so its buffer was
        // reset rather than accumulating 6400 consumed ids.
        assert!(q.buckets[3].lanes[2].ids.capacity() <= 64);
    }

    #[test]
    fn lane_hint_presizes_fresh_lanes() {
        let mut q = BucketQueue::with_hints(4, 32);
        q.push(3, 2, 1);
        assert!(q.buckets[3].lanes[2].ids.capacity() >= 32);
        // Unhinted queues keep lanes lazily sized (see
        // `drained_lanes_release_their_entries`).
        let mut q = BucketQueue::new();
        q.push(3, 2, 1);
        assert!(q.buckets[3].lanes[2].ids.capacity() <= 8);
    }

    #[test]
    fn open_queue_variants_agree() {
        let pushes = [
            (4u64, 4u32, 0u32),
            (2, 1, 5),
            (2, 1, 3),
            (9, 9, 1),
            (2, 2, 2),
        ];
        let mut heap = OpenQueue::new(OpenList::Heap, 0);
        let mut bucket = OpenQueue::new(OpenList::Bucket, 16);
        for &(f, g, id) in &pushes {
            heap.push(f, g, id);
            bucket.push(f, g, id);
        }
        assert_eq!(heap.len(), bucket.len());
        for _ in 0..pushes.len() {
            assert_eq!(heap.pop(), bucket.pop());
        }
        assert_eq!(heap.pop(), None);
        assert_eq!(bucket.pop(), None);
        assert_eq!(heap.scans(), 0);
    }
}
