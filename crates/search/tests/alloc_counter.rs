//! Allocation accounting for the steady-state expansion path.
//!
//! A counting global allocator (its own test binary, so the counter sees
//! every allocation in the process) measures allocations per expanded node
//! on a warm n = 3 synthesis. The arena-backed core's contract: successor
//! generation, canonicalization, heuristic evaluation, and dedup allocate
//! nothing per node once the scratch buffers and arena have grown to their
//! steady-state capacity — only amortized-O(1) buffer doublings remain.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, Heuristic, OpenList, Strategy, SynthesisConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is (at most) one fresh allocation's worth of work.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
#[cfg_attr(
    miri,
    ignore = "global-allocator counting is not meaningful under miri"
)]
fn expansion_path_allocates_o1_amortized() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::best(machine);

    // Warm-up run: global metrics registration, lazy statics, allocator
    // warm-up. Its counts are discarded.
    let warm = synthesize(&cfg);
    assert_eq!(warm.found_len, Some(11));

    // Measured run: a complete synthesis, including its own distance-table
    // build and arena growth — all of which must amortize to O(1) per
    // expanded node.
    let before = allocations();
    let result = synthesize(&cfg);
    let during = allocations() - before;
    assert_eq!(result.found_len, Some(11));

    let expanded = result.stats.expanded.max(1);
    let per_node = during as f64 / expanded as f64;
    println!(
        "allocations: {during} over {expanded} expanded nodes = {per_node:.3} allocs/node \
         (generated {})",
        result.stats.generated
    );

    // Pre-rework engine: ~12 allocations per node (fresh Vec + Box per
    // successor, perm-count scratch per generated state, SipHash map
    // reinsertions). The arena core must stay O(1) amortized: well under
    // one allocation per expanded node, steady-state zero.
    assert!(
        per_node < 1.0,
        "expansion path regressed to {per_node:.2} allocations per expanded node"
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "global-allocator counting is not meaningful under miri"
)]
fn bucket_astar_expansion_is_allocation_free_in_steady_state() {
    // The bucket-queue best-first engine is the tightest path: pushes are
    // lane appends into retained buffers and pops only move cursors, so
    // after warm-up the *whole* search — selection included — runs on
    // reserved capacity. The budget is an order of magnitude below the
    // layered test's: the measured run sits around 0.002 allocs/node
    // (buffer doublings and the run's own table build), and 0.06 leaves
    // headroom for allocator/runtime jitter without masking a real
    // per-node allocation (which would cost ≥ 1.0).
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::new(machine)
        .strategy(Strategy::AStar {
            heuristic: Heuristic::MaxRemaining,
        })
        .open_list(OpenList::Bucket)
        .optimal_instrs_only(true)
        .budget_viability(true)
        .max_len(11);

    let warm = synthesize(&cfg);
    assert_eq!(warm.found_len, Some(11));

    let before = allocations();
    let result = synthesize(&cfg);
    let during = allocations() - before;
    assert_eq!(result.found_len, Some(11));

    let expanded = result.stats.expanded.max(1);
    let per_node = during as f64 / expanded as f64;
    println!(
        "bucket A*: {during} allocations over {expanded} expanded nodes = {per_node:.4} \
         allocs/node (generated {}, bucket_scans {})",
        result.stats.generated, result.stats.bucket_scans
    );

    assert!(
        per_node <= 0.06,
        "bucket A* path regressed to {per_node:.3} allocations per expanded node"
    );
}
