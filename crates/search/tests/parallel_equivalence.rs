//! Differential and determinism tests pinning the parallel engine to the
//! sequential one.
//!
//! The equivalence matrix covers n = 2..4 on both ISA modes across the
//! *lossless* pruning configurations (dead-write cut on/off × distance
//! table on/off): for those the parallel search is provably cost-equal to
//! the sequential search, so any divergence is a bug. The §3.5
//! permutation-count cut is deliberately absent from the matrix — its
//! thresholds are not optimality-preserving, so cost equality under racing
//! per-layer minima is checked empirically by the `parallel_speedup` bench
//! (and the release-only `#[ignore]` test below), not asserted here as a
//! theorem.
//!
//! Every synthesized kernel additionally passes the sortsynth-verify gate,
//! which falls back to the exhaustive n! permutation oracle — the parallel
//! engine must not just agree on cost, it must emit *correct* kernels.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{
    synthesize, Outcome, ProgressHook, SearchBudget, SearchProgress, SynthesisConfig,
    SynthesisResult,
};

/// Lossless configurations for `machine`, labelled. `bound` pins `max_len`
/// where the viability budget needs it (and keeps the plain rows small
/// enough for debug-mode CI).
fn lossless_configs(machine: &Machine, bound: u32) -> Vec<(&'static str, SynthesisConfig)> {
    // Viability only — `optimal_instrs_only` (§3.2) is formally
    // non-optimality-preserving and would void the certification check.
    let base = || SynthesisConfig::new(machine.clone()).max_len(bound);
    let table = || base().budget_viability(true);
    vec![
        ("plain", base()),
        ("dead-write", base().dead_write_cut(true)),
        ("table", table()),
        ("table+dead-write", table().dead_write_cut(true)),
    ]
}

/// Runs `cfg` sequentially and at each thread count, asserting identical
/// optimal cost and oracle-verified kernels throughout.
fn assert_equivalent(machine: &Machine, label: &str, cfg: &SynthesisConfig, threads: &[usize]) {
    let sequential = synthesize(cfg);
    check_result(machine, label, 1, &sequential);
    for &t in threads {
        let parallel = synthesize(&cfg.clone().threads(t));
        assert_eq!(
            sequential.found_len, parallel.found_len,
            "{label} diverged at {t} threads (seq {:?}, par {:?})",
            sequential.outcome, parallel.outcome
        );
        assert_eq!(
            parallel.stats.shards.len(),
            t.max(2),
            "{label}: one shard per worker"
        );
        check_result(machine, label, t, &parallel);
    }
}

/// Common per-result assertions: kernel correctness via the exhaustive
/// oracle, certification, and shard-counter aggregation.
fn check_result(machine: &Machine, label: &str, threads: usize, result: &SynthesisResult) {
    if let Some(len) = result.found_len {
        let prog = result.first_program().expect("found_len implies a program");
        assert_eq!(prog.len() as u32, len, "{label}@{threads}");
        sortsynth_verify::gate(machine, &prog)
            .unwrap_or_else(|e| panic!("{label}@{threads}: oracle rejected kernel: {e:?}"));
        assert!(
            result.minimal_certified,
            "{label}@{threads}: lossless layered config must certify"
        );
    }
    let s = &result.stats;
    if !s.shards.is_empty() {
        assert_eq!(
            s.expanded,
            s.shards.iter().map(|sh| sh.expanded).sum::<u64>(),
            "{label}@{threads}: expanded aggregates shards"
        );
        assert_eq!(
            s.generated,
            s.shards.iter().map(|sh| sh.generated).sum::<u64>(),
            "{label}@{threads}: generated aggregates shards"
        );
        assert_eq!(
            s.states_kept,
            s.shards.iter().map(|sh| sh.states_kept).sum::<u64>(),
            "{label}@{threads}: states_kept aggregates shards"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n2_both_isas_full_matrix() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(2, 1, mode);
        let bound = match mode {
            IsaMode::Cmov => 4,
            IsaMode::MinMax => 3,
        };
        for (label, cfg) in lossless_configs(&machine, bound) {
            assert_equivalent(&machine, &format!("n2 {mode:?} {label}"), &cfg, &[2, 4, 8]);
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n3_minmax_full_matrix() {
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    for (label, cfg) in lossless_configs(&machine, 8) {
        assert_equivalent(&machine, &format!("n3 MinMax {label}"), &cfg, &[2, 4]);
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n3_cmov_table_rows() {
    // The plain n = 3 cmov space is minutes-deep in debug mode (the paper's
    // 56 s Dijkstra row); the distance-table rows finish in seconds and
    // still exercise both dead-write settings. The table-off axis is
    // covered at n = 2 and n = 3 minmax above.
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let table = || {
        SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .max_len(11)
    };
    assert_equivalent(&machine, "n3 Cmov table", &table(), &[2]);
    assert_equivalent(
        &machine,
        "n3 Cmov table+dead-write",
        &table().dead_write_cut(true),
        &[4],
    );
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n4_minmax_table_rows() {
    let machine = Machine::new(4, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(15);
    assert_equivalent(&machine, "n4 MinMax table", &cfg, &[4]);
}

/// Release-only completion of the matrix: the n = 4 cmov space needs the
/// full best() configuration (including the non-lossless permutation cut)
/// to finish in reasonable time, so this row asserts *empirical* cost
/// equality at every thread count. Run by the CI `parallel-smoke` job with
/// `--release -- --include-ignored`.
#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
#[ignore = "minutes in debug mode; CI runs it with --release"]
fn n4_cmov_best_config_agrees_across_thread_counts() {
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::best(machine.clone());
    let sequential = synthesize(&cfg);
    assert_eq!(sequential.found_len, Some(20));
    for t in [2, 4, 8] {
        let parallel = synthesize(&cfg.clone().threads(t));
        assert_eq!(parallel.found_len, Some(20), "diverged at {t} threads");
        let prog = parallel.first_program().expect("kernel");
        sortsynth_verify::gate(&machine, &prog)
            .unwrap_or_else(|e| panic!("oracle rejected n4 kernel at {t} threads: {e:?}"));
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn seeded_stress_is_invariant_under_interleaving_perturbation() {
    // Satellite 2: the same parallel search, 20 times, each run with a
    // different seed for the test-only per-worker yield/sleep injection —
    // so the thread interleavings genuinely differ — must always produce
    // the sequential optimal cost and internally consistent statistics.
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(8);
    let sequential = synthesize(&cfg);
    let expected = sequential.found_len.expect("n3 minmax solves");
    assert_eq!(expected, 8);

    for seed in 0..20u64 {
        let result = synthesize(&cfg.clone().threads(4).perturb_seed(0xFEED_0000 + seed));
        assert_eq!(
            result.found_len,
            Some(expected),
            "seed {seed}: cost diverged ({:?})",
            result.outcome
        );
        let prog = result.first_program().expect("kernel");
        sortsynth_verify::gate(&machine, &prog)
            .unwrap_or_else(|e| panic!("seed {seed}: oracle rejected kernel: {e:?}"));

        let s = &result.stats;
        // Lower bounds from the optimal path: every proper prefix of the
        // kernel was expanded and kept.
        assert!(
            s.expanded >= expected as u64,
            "seed {seed}: expanded {} < {expected}",
            s.expanded
        );
        assert!(
            s.states_kept >= expected as u64,
            "seed {seed}: kept {} < {expected}",
            s.states_kept
        );
        // No state is counted twice by a shard: every merged candidate has
        // exactly one disposition, and fresh states are kept exactly once
        // (the root is seeded, never merged).
        let merged: u64 = s.shards.iter().map(|sh| sh.merged).sum();
        let dedup: u64 = s.shards.iter().map(|sh| sh.dedup_hits).sum();
        let reopened: u64 = s.shards.iter().map(|sh| sh.reopened).sum();
        let bound: u64 = s.shards.iter().map(|sh| sh.bound_pruned).sum();
        let kept: u64 = s.shards.iter().map(|sh| sh.states_kept).sum();
        assert_eq!(
            merged,
            dedup + reopened + bound + (kept - 1),
            "seed {seed}: merge dispositions must partition merged candidates"
        );
        assert_eq!(s.states_kept, kept, "seed {seed}: shard sums match totals");
        assert_eq!(
            s.expanded,
            s.shards.iter().map(|sh| sh.expanded).sum::<u64>(),
            "seed {seed}"
        );
        // Quiescence drained everything: a candidate routed off-shard is
        // merged by its owner exactly once.
        let routed: u64 = s.shards.iter().map(|sh| sh.routed).sum();
        assert!(
            merged >= routed,
            "seed {seed}: routed {routed} candidates but merged only {merged}"
        );
    }
}

/// Threads currently alive in this process (Linux).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, |d| d.count())
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn cancelled_parallel_search_joins_workers_and_flushes_once() {
    // Satellite 3: a parallel search cancelled mid-flight returns
    // `Cancelled` promptly, leaves no worker thread behind, and emits the
    // final progress snapshot exactly once.
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    let (budget, cancel) = SearchBudget::unlimited().cancellable();
    let snapshots: Arc<Mutex<Vec<SearchProgress>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&snapshots);
    let cfg = SynthesisConfig::new(machine)
        .max_len(15)
        .threads(4)
        .search_budget(budget)
        .progress_every(512)
        .progress_hook(ProgressHook::new(move |p: &SearchProgress| {
            sink.lock().unwrap().push(p.clone());
        }));

    let threads_before = live_threads();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        cancel.cancel();
    });
    let started = Instant::now();
    let result = synthesize(&cfg);
    let elapsed = started.elapsed();
    canceller.join().unwrap();

    assert_eq!(result.outcome, Outcome::Cancelled);
    assert!(result.found_len.is_none());
    assert!(
        elapsed < Duration::from_secs(20),
        "cancellation took {elapsed:?}"
    );
    // All four workers joined before `synthesize` returned: thread count is
    // back to (at most) where it started, canceller aside. /proc/self/task
    // can briefly list a task whose join already completed (the kernel
    // removes the entry asynchronously), so poll for the count to settle
    // instead of sampling once.
    let mut threads_after = live_threads();
    let settle = Instant::now();
    while threads_after > threads_before && settle.elapsed() < Duration::from_secs(2) {
        std::thread::sleep(Duration::from_millis(10));
        threads_after = live_threads();
    }
    assert!(
        threads_after <= threads_before,
        "worker threads leaked: {threads_before} before, {threads_after} after"
    );

    let snapshots = snapshots.lock().unwrap();
    let finished: Vec<_> = snapshots.iter().filter(|p| p.finished).collect();
    assert_eq!(finished.len(), 1, "exactly one final snapshot");
    assert_eq!(finished[0].outcome, Some(Outcome::Cancelled));
    let last = snapshots.last().expect("at least the final snapshot");
    assert!(last.finished, "final snapshot comes last");
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn oversized_machine_synthesizes_in_parallel_without_panic() {
    // Satellite 4 regression: a machine past the distance table's
    // 256-action limit must take the same graceful fallback on the parallel
    // setup path as on the sequential one — skip the table, record the skip
    // in the stats, and search on.
    let machine = Machine::new(2, 8, IsaMode::Cmov);
    assert!(!sortsynth_search::DistanceTable::supports(&machine));
    let cfg = SynthesisConfig::new(machine.clone())
        .optimal_instrs_only(true)
        .budget_viability(true)
        .max_len(3)
        .threads(4);
    let result = synthesize(&cfg);
    assert_eq!(result.outcome, Outcome::Exhausted);
    assert_eq!(result.found_len, None);
    assert!(
        result.stats.distance_table_skipped,
        "parallel runs must surface the distance-table fallback too"
    );

    // And with a feasible bound the kernel is found and correct.
    let found = synthesize(&cfg.clone().max_len(4));
    assert_eq!(found.found_len, Some(4));
    let prog = found.first_program().expect("kernel");
    sortsynth_verify::gate(&machine, &prog).expect("oracle accepts the CAS");
}
