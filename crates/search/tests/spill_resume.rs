//! The external-memory tier end to end: spill differentials, crash
//! injection + journal resume, torn-segment detection, and the sizing
//! table's zero-realloc contract.
//!
//! The spill tier ([`SynthesisConfig::mem_budget_bytes`]) must be invisible
//! in the result: a budgeted run streams frontier spans and evicted closed
//! entries through checksummed segments, yet lands on the same optimal cost
//! as a fully resident run. A killed run must restart from its journal
//! ([`SynthesisConfig::resume_from`]) and still land there; a corrupted
//! segment must be rejected, never silently trusted.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, try_synthesize, SynthesisConfig};

/// Fresh per-test scratch directory (removed up front so reruns of a
/// failed test never see stale segments).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssresume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical budgeted configuration: sequential layered search with
/// budget viability, the combination the spill tier serves.
fn layered(machine: &Machine, bound: u32) -> SynthesisConfig {
    SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(bound)
}

/// Runs `machine` fully resident and again under `budget` bytes, asserting
/// the spill tier changed the memory story but not the answer.
fn assert_spill_is_lossless(machine: &Machine, label: &str, bound: u32, budget: u64) {
    let dir = scratch(&format!("diff-{label}"));
    let resident = synthesize(&layered(machine, bound));
    let spilled = synthesize(
        &layered(machine, bound)
            .mem_budget_bytes(budget)
            .spill_dir(dir.clone()),
    );
    assert_eq!(
        resident.found_len, spilled.found_len,
        "{label}: spilling under {budget} B changed the optimal cost \
         (resident {:?}, spilled {:?})",
        resident.outcome, spilled.outcome
    );
    let stats = &spilled.stats;
    assert!(stats.spilled_open > 0, "{label}: no frontier spans spilled");
    assert!(
        stats.spilled_bytes > 0,
        "{label}: no bytes hit the segments"
    );
    assert!(stats.spill_segments > 0, "{label}: no segments created");
    if let Some(prog) = spilled.first_program() {
        sortsynth_verify::gate(machine, &prog)
            .unwrap_or_else(|e| panic!("{label}: oracle rejected spilled kernel: {e:?}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore = "spill differential does real file I/O")]
fn spilled_search_matches_resident_search() {
    // Budgets sized to force the tier on partway through each search (the
    // min/max space is far smaller, so its threshold sits lower); both ISAs
    // so the span codec sees cmov flag bits and min/max flag-free states.
    assert_spill_is_lossless(&Machine::new(3, 1, IsaMode::Cmov), "n3-cmov", 11, 64 << 10);
    assert_spill_is_lossless(
        &Machine::new(3, 1, IsaMode::MinMax),
        "n3-minmax",
        8,
        4 << 10,
    );
}

#[test]
#[cfg_attr(miri, ignore = "crash injection does real file I/O")]
fn killed_run_resumes_from_journal_to_the_same_optimum() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let dir = scratch("resume");

    // Reference run: the cost to recover, and the expansion count that
    // places the injected crash mid-search (past several checkpoints,
    // before the solution layer).
    let reference = synthesize(&layered(&machine, 11));
    assert_eq!(reference.found_len, Some(11));
    let crash_at = reference.stats.expanded / 2;
    assert!(crash_at > 0, "reference run expanded nothing");

    // Killed run: the panic unwinds out of `synthesize`; the journal on
    // disk was written at the start of the layer the crash landed in.
    let killed = catch_unwind(AssertUnwindSafe(|| {
        synthesize(
            &layered(&machine, 11)
                .mem_budget_bytes(64 << 10)
                .spill_dir(dir.clone())
                .panic_after(crash_at),
        )
    }));
    assert!(killed.is_err(), "crash injection did not fire");

    // Resumed run: same search fingerprint, journal directory as input.
    let resumed = try_synthesize(&layered(&machine, 11).resume_from(dir.clone()))
        .expect("journal resume failed");
    assert_eq!(
        resumed.found_len,
        Some(11),
        "resume lost the optimum ({:?})",
        resumed.outcome
    );
    assert!(
        resumed.stats.resumed_frontier_states > 0,
        "resume restored an empty frontier"
    );
    let prog = resumed.first_program().expect("resumed run has a kernel");
    sortsynth_verify::gate(&machine, &prog)
        .unwrap_or_else(|e| panic!("oracle rejected resumed kernel: {e:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore = "corruption test does real file I/O")]
fn torn_segment_byte_is_rejected_on_resume() {
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    let dir = scratch("torn");

    // A 1-byte budget spills every span from layer 0 on, so the journal
    // written at each layer boundary references real segment bytes almost
    // immediately; ten expansions is comfortably past the first boundary.
    let killed = catch_unwind(AssertUnwindSafe(|| {
        synthesize(
            &layered(&machine, 8)
                .mem_budget_bytes(1)
                .spill_dir(dir.clone())
                .panic_after(10),
        )
    }));
    assert!(killed.is_err(), "crash injection did not fire");

    // Flip one byte in the middle of every sealed segment: a torn tail or
    // bit rot anywhere in the journal-referenced region must surface as a
    // checksum failure, not be deserialized on faith.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("spill dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "seg") {
            let mut bytes = std::fs::read(&path).expect("segment readable");
            if bytes.is_empty() {
                continue;
            }
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).expect("segment writable");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "killed run left no segments to corrupt");

    let err = try_synthesize(&layered(&machine, 8).resume_from(dir.clone()))
        .expect_err("resume accepted a corrupted segment");
    let msg = err.to_string();
    assert!(
        msg.contains("checksum"),
        "corruption surfaced as something other than a checksum failure: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-up then rerun with a sizing table: the recorded row must pre-size
/// the arena so the second run performs zero growth reallocations.
fn assert_sized_rerun_never_reallocs(machine: &Machine, label: &str, bound: u32) {
    let dir = scratch(&format!("sizing-{label}"));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("sizing.txt");
    let cfg = layered(machine, bound).sizing_path(path);

    let warm = synthesize(&cfg);
    assert!(warm.found_len.is_some(), "{label}: warm-up found no kernel");

    let sized = synthesize(&cfg);
    assert_eq!(sized.found_len, warm.found_len, "{label}: rerun diverged");
    assert_eq!(
        sized.stats.arena_reallocs, 0,
        "{label}: sizing table left {} arena reallocations on a warm rerun",
        sized.stats.arena_reallocs
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore = "sizing table does real file I/O")]
fn sizing_table_pins_warm_rerun_reallocs_to_zero() {
    assert_sized_rerun_never_reallocs(&Machine::new(3, 1, IsaMode::Cmov), "n3-cmov", 11);
}

/// The headline-scale row. Run by the CI `memory-smoke` job with
/// `--release -- --include-ignored`.
#[test]
#[cfg_attr(miri, ignore = "sizing table does real file I/O")]
#[ignore = "n4 warm rerun needs --release; CI memory-smoke runs it"]
fn sizing_table_pins_warm_rerun_reallocs_to_zero_n4() {
    assert_sized_rerun_never_reallocs(&Machine::new(4, 1, IsaMode::MinMax), "n4-minmax", 15);
}
