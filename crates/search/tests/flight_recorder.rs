//! Introspection-layer properties of the search engine: the crash-dump
//! guarantee of the flight recorder and the phase profiler's attribution
//! contract.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_obs::recorder::{read_recording, FlightRecorder};
use sortsynth_obs::{Phase, PHASE_COUNT};
use sortsynth_search::{synthesize, Outcome, ProgressHook, SynthesisConfig};

/// Serializes tests that toggle or observe the global profiler switch: the
/// probe latches `sortsynth_obs::profile::enabled()` at engine construction,
/// so a concurrent toggle would leak into the profiler-off assertions.
fn switch_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssfr-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("search.ssfr")
}

/// Crash-dump property: a panic mid-search (test-only injection) leaves a
/// parseable, checksummed recording whose final frame carries the last
/// delivered snapshot.
#[test]
fn panic_mid_search_leaves_a_parseable_recording() {
    let path = tmp("crash");
    let recorder = Arc::new(FlightRecorder::create(&path).unwrap());
    let rec = Arc::clone(&recorder);
    let hook = ProgressHook::new(move |p| {
        let _ = rec.record(&p.recorder_frame());
    });
    // Every expansion delivers a snapshot, and the engine panics right
    // after delivering the one for expansion 50. A plain n=4 config keeps
    // the search far from completion without paying for the distance table.
    let cfg = SynthesisConfig::new(Machine::new(4, 1, IsaMode::Cmov))
        .max_len(15)
        .progress_every(1)
        .progress_hook(hook)
        .panic_after(50);
    let outcome = catch_unwind(AssertUnwindSafe(|| synthesize(&cfg)));
    assert!(outcome.is_err(), "the injected panic must propagate");

    let recording = read_recording(&path).unwrap();
    assert!(
        !recording.rejected_tail && recording.lost_bytes == 0,
        "every flushed frame survives the unwind intact: {recording:?}"
    );
    let last = recording.frames.last().expect("frames were recorded");
    assert_eq!(
        last.expanded, 50,
        "the final frame is the snapshot delivered at the panic threshold"
    );
    assert!(!last.finished, "the run never completed");
    // Enrichment is present: the sequential engine reports one shard with
    // live memory levels.
    assert_eq!(last.shards.len(), 1);
    assert!(last.shards[0].interned_states > 0);
    assert!(last.shards[0].arena_bytes > 0);
    // Frames are sequenced and monotone in expansion count.
    for pair in recording.frames.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1);
        assert!(pair[1].expanded >= pair[0].expanded);
    }
}

/// A completed search's final frame carries the outcome, so `inspect` can
/// always tell how a recorded run ended.
#[test]
fn completed_search_records_a_finished_final_frame() {
    let path = tmp("done");
    let recorder = Arc::new(FlightRecorder::create(&path).unwrap());
    let rec = Arc::clone(&recorder);
    let hook = ProgressHook::new(move |p| {
        let _ = rec.record(&p.recorder_frame());
    });
    let cfg = SynthesisConfig::best(Machine::new(3, 1, IsaMode::Cmov))
        .progress_every(16)
        .progress_hook(hook);
    let result = synthesize(&cfg);
    assert_eq!(result.outcome, Outcome::Solved);

    let recording = read_recording(&path).unwrap();
    let last = recording.frames.last().unwrap();
    assert!(last.finished);
    assert_eq!(last.outcome.as_deref(), Some("Solved"));
    assert_eq!(last.expanded, result.stats.expanded);
    assert_eq!(last.shards[0].interned_states, result.stats.interned_states);
    assert_eq!(last.shards[0].arena_bytes, result.stats.arena_bytes);
}

/// Profiler-off leaves no trace in the stats; profiler-on attributes a
/// dominant share of the search wall time across the phase taxonomy.
#[test]
fn profiler_attributes_phase_time_when_enabled_and_nothing_when_off() {
    let _guard = switch_lock();
    let cfg = SynthesisConfig::best(Machine::new(3, 1, IsaMode::Cmov));
    let off = synthesize(&cfg);
    assert_eq!(
        off.stats.phase_nanos, [0; PHASE_COUNT],
        "profiler off ⇒ zero attribution"
    );

    sortsynth_obs::profile::set_enabled(true);
    let on = synthesize(&cfg);
    sortsynth_obs::profile::set_enabled(false);

    let nanos = on.stats.phase_nanos;
    let wall = on.stats.search_time.as_nanos() as u64;
    let attributed: u64 = [
        Phase::Select,
        Phase::Step,
        Phase::Canonicalize,
        Phase::Intern,
    ]
    .iter()
    .map(|&p| nanos[p as usize])
    .sum();
    assert!(attributed > 0, "phases saw time: {nanos:?}");
    assert!(
        attributed <= wall + wall / 10,
        "attribution cannot exceed wall time by more than jitter: {attributed} vs {wall}"
    );
    assert!(
        attributed * 2 >= wall,
        "the four in-search phases dominate the wall time: {attributed} vs {wall}"
    );
    assert_eq!(
        nanos[Phase::TableBuild as usize],
        on.stats.distance_build.as_nanos() as u64,
        "table build is attributed from the measured build time"
    );
}

/// The parallel engine merges per-worker probes and enriches snapshots with
/// per-shard memory levels.
#[test]
fn parallel_run_reports_phase_time_and_shard_memory() {
    let snapshots: Arc<Mutex<Vec<sortsynth_search::SearchProgress>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&snapshots);
    let _guard = switch_lock();
    sortsynth_obs::profile::set_enabled(true);
    let cfg = SynthesisConfig::best(Machine::new(3, 1, IsaMode::Cmov))
        .threads(2)
        .progress_every(8)
        .progress_hook(ProgressHook::new(move |p| {
            sink.lock().unwrap().push(p.clone());
        }));
    let result = synthesize(&cfg);
    sortsynth_obs::profile::set_enabled(false);

    assert_eq!(result.outcome, Outcome::Solved);
    assert!(
        result.stats.phase_nanos.iter().sum::<u64>() > 0,
        "worker probes were merged: {:?}",
        result.stats.phase_nanos
    );
    let snaps = snapshots.lock().unwrap();
    let last = snaps.last().expect("final snapshot is guaranteed");
    assert!(last.finished);
    assert_eq!(last.shards.len(), 2, "one shard entry per worker");
    assert_eq!(last.interned_states(), result.stats.interned_states);
    assert_eq!(last.arena_bytes(), result.stats.arena_bytes);
}
