//! Behavioral tests of the search engine through its public API: outcomes,
//! bounds, statistics, and solution-DAG invariants.

use std::time::Duration;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, Cut, Heuristic, Outcome, Strategy, SynthesisConfig};

fn m2() -> Machine {
    Machine::new(2, 1, IsaMode::Cmov)
}

#[test]
fn too_small_length_bound_exhausts() {
    let result = synthesize(&SynthesisConfig::new(m2()).budget_viability(true).max_len(3));
    assert_eq!(result.outcome, Outcome::Exhausted);
    assert_eq!(result.found_len, None);
    assert!(result.first_program().is_none());
    assert_eq!(result.solution_count(), 0);
}

#[test]
fn exact_length_bound_still_finds_the_kernel() {
    let result = synthesize(&SynthesisConfig::new(m2()).budget_viability(true).max_len(4));
    assert_eq!(result.found_len, Some(4));
    assert!(result.minimal_certified);
}

#[test]
fn zero_time_limit_reports_time_limit() {
    let result = synthesize(
        &SynthesisConfig::new(Machine::new(3, 1, IsaMode::Cmov)).time_limit(Duration::ZERO),
    );
    assert_eq!(result.outcome, Outcome::TimeLimit);
}

#[test]
fn stats_are_internally_consistent() {
    let result = synthesize(&SynthesisConfig::best(Machine::new(3, 1, IsaMode::Cmov)));
    let s = &result.stats;
    assert!(s.generated >= s.states_kept);
    assert!(s.expanded <= s.states_kept, "only kept states are expanded");
    // Every generated successor is accounted for exactly once: pruned by
    // viability or the cut, deduplicated, or kept as a fresh node (the root
    // is kept but never generated).
    assert_eq!(
        s.generated,
        s.viability_pruned + s.cut_pruned + s.dedup_hits + (s.states_kept - 1),
        "pruning counters partition the generated states"
    );
    assert!(
        s.distance_build > Duration::ZERO,
        "best config builds the table"
    );
}

#[test]
fn minmax_all_solutions_are_distinct_and_correct() {
    let machine = Machine::new(2, 1, IsaMode::MinMax);
    let result = synthesize(
        &SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .all_solutions(true)
            .max_len(3),
    );
    assert_eq!(result.outcome, Outcome::SolvedAll);
    let programs = result.dag.programs(usize::MAX);
    assert_eq!(programs.len() as u64, result.solution_count());
    assert!(!programs.is_empty());
    for prog in &programs {
        assert_eq!(prog.len(), 3);
        assert!(machine.is_correct(prog));
    }
    let mut unique = programs.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), programs.len());
}

#[test]
fn program_extraction_respects_the_limit() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let result = synthesize(
        &SynthesisConfig::new(machine)
            .budget_viability(true)
            .cut(Cut::Factor(1.0))
            .all_solutions(true)
            .max_len(11),
    );
    let total = result.solution_count();
    assert!(total > 10);
    assert_eq!(result.dag.programs(7).len(), 7);
    assert_eq!(result.dag.programs(usize::MAX).len() as u64, total);
    assert_eq!(result.dag.programs(0).len(), 0);
}

#[test]
fn additive_cut_behaves_like_a_loose_factor() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let strict = synthesize(
        &SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .cut(Cut::Factor(1.0))
            .all_solutions(true)
            .max_len(11),
    );
    let additive = synthesize(
        &SynthesisConfig::new(machine)
            .budget_viability(true)
            .cut(Cut::Additive(2))
            .all_solutions(true)
            .max_len(11),
    );
    assert!(additive.solution_count() >= strict.solution_count());
}

#[test]
fn astar_with_admissible_heuristic_certifies_minimality() {
    let result = synthesize(&SynthesisConfig::new(m2()).strategy(Strategy::AStar {
        heuristic: Heuristic::MaxRemaining,
    }));
    assert_eq!(result.found_len, Some(4));
    assert!(result.minimal_certified);
}

#[test]
fn every_extracted_program_has_the_reported_length() {
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    let result = synthesize(
        &SynthesisConfig::new(machine.clone())
            .budget_viability(true)
            .all_solutions(true)
            .max_len(8),
    );
    assert_eq!(result.found_len, Some(8));
    for prog in result.dag.programs(200) {
        assert_eq!(prog.len(), 8);
        assert!(machine.is_correct(&prog));
    }
}

#[test]
fn goal_states_have_multiple_parents_in_all_solutions_mode() {
    // The DAG must carry more programs than goal states (many programs per
    // final state).
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let result = synthesize(
        &SynthesisConfig::new(machine)
            .budget_viability(true)
            .cut(Cut::Factor(1.0))
            .all_solutions(true)
            .max_len(11),
    );
    assert!(result.solution_count() > result.dag.goal_states() as u64);
}

#[test]
fn oversized_machine_searches_without_the_distance_table() {
    // 10 registers put the action count past the distance table's 256-action
    // bitset; the distance-based aids must be skipped, not panic. The CAS
    // still needs 4 instructions, so a bound of 3 exhausts.
    let machine = Machine::new(2, 8, IsaMode::Cmov);
    assert!(!sortsynth_search::DistanceTable::supports(&machine));
    let result = synthesize(
        &SynthesisConfig::new(machine)
            .optimal_instrs_only(true)
            .budget_viability(true)
            .max_len(3),
    );
    assert_eq!(result.outcome, Outcome::Exhausted);
    assert_eq!(result.found_len, None);
    // The silent fallback is surfaced in the stats instead of being
    // inferable only from a missing `distance_build` time.
    assert!(result.stats.distance_table_skipped);
}

#[test]
fn distance_table_skipped_is_false_when_the_table_is_built_or_unneeded() {
    let best = synthesize(&SynthesisConfig::best(Machine::new(2, 1, IsaMode::Cmov)));
    assert!(!best.stats.distance_table_skipped);
    // A plain config never asks for the table, even on an oversized machine.
    let plain = synthesize(&SynthesisConfig::new(Machine::new(2, 8, IsaMode::Cmov)).max_len(2));
    assert!(!plain.stats.distance_table_skipped);
}

#[test]
fn dead_write_cut_preserves_optimal_cost() {
    // Acceptance criterion: enabling the liveness-based dead-write cut must
    // not change the optimal kernel length for n = 2..3 in either ISA mode.
    // With no other cut active the pruned states provably equal states one
    // layer shorter, so this also holds with a minimality guarantee.
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=3u8 {
            let machine = Machine::new(n, 1, mode);
            let base = synthesize(&SynthesisConfig::new(machine.clone()).budget_viability(true));
            let cut = synthesize(
                &SynthesisConfig::new(machine.clone())
                    .budget_viability(true)
                    .dead_write_cut(true),
            );
            assert_eq!(
                base.found_len, cut.found_len,
                "dead-write cut changed optimal cost for n={n} {mode:?}"
            );
            assert_eq!(base.stats.dead_write_pruned, 0);
            assert!(
                cut.stats.dead_write_pruned > 0,
                "cut never fired for n={n} {mode:?}"
            );
            assert!(cut.stats.generated < base.stats.generated);
            let kernel = cut.first_program().expect("kernel found");
            assert!(machine.is_correct(&kernel));

            // Same invariance under the paper's best configuration.
            let best = synthesize(&SynthesisConfig::best(machine.clone()));
            let best_cut = synthesize(&SynthesisConfig::best(machine).dead_write_cut(true));
            assert_eq!(best.found_len, best_cut.found_len);
        }
    }
}

#[test]
fn cancelled_search_flushes_final_progress_and_counts_cancellation() {
    use std::sync::{Arc, Mutex};

    use sortsynth_search::{ProgressHook, SearchBudget, SearchProgress};

    let cancelled_before =
        sortsynth_obs::registry().counter_value(sortsynth_obs::names::SEARCH_CANCELLED_TOTAL);

    // A search space far beyond any test budget (no pruning aids, generous
    // length bound), cancelled from another thread mid-flight.
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    let (budget, cancel) = SearchBudget::unlimited().cancellable();
    let snapshots: Arc<Mutex<Vec<SearchProgress>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&snapshots);
    let config = SynthesisConfig::new(machine)
        .max_len(15)
        .search_budget(budget)
        .progress_every(1024)
        .progress_hook(ProgressHook::new(move |p: &SearchProgress| {
            sink.lock().unwrap().push(p.clone());
        }));
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        cancel.cancel();
    });
    let result = synthesize(&config);
    canceller.join().unwrap();
    assert_eq!(result.outcome, Outcome::Cancelled);

    // The final progress snapshot is flushed even though the search was
    // aborted: exactly one `finished` event, carrying the cancelled outcome
    // and the engine's definitive expansion count.
    let snapshots = snapshots.lock().unwrap();
    let finished: Vec<_> = snapshots.iter().filter(|p| p.finished).collect();
    assert_eq!(finished.len(), 1, "exactly one final snapshot");
    let last = snapshots.last().expect("at least the final snapshot");
    assert!(last.finished, "final snapshot comes last");
    assert_eq!(last.outcome, Some(Outcome::Cancelled));
    assert_eq!(last.expanded, result.stats.expanded);
    assert_eq!(last.generated, result.stats.generated);

    assert_eq!(
        sortsynth_obs::registry().counter_value(sortsynth_obs::names::SEARCH_CANCELLED_TOTAL)
            - cancelled_before,
        1,
        "cancellation must increment search_cancelled_total"
    );
}
