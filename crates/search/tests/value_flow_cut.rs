//! Differential matrix for the symbolic value-flow cut: for every row
//! (machine × configuration × thread count) the search with the cut enabled
//! must report exactly the same optimal cost as the search without it, and
//! the synthesized kernels must pass the verify gate. The cut only discards
//! successors that duplicate an already-reachable state, so cost equality is
//! a theorem here, not an empirical observation — any divergence is a bug.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, SynthesisConfig};

/// Runs `cfg` with the cut off and on, sequentially and at each thread
/// count, asserting cost equality everywhere and that the cut actually
/// fired when `expect_pruned`.
fn assert_cut_lossless(
    machine: &Machine,
    label: &str,
    cfg: &SynthesisConfig,
    threads: &[usize],
    expect_pruned: bool,
) {
    let baseline = synthesize(cfg);
    let cut = synthesize(&cfg.clone().value_flow_cut(true));
    assert_eq!(
        baseline.found_len, cut.found_len,
        "{label}: value-flow cut changed the sequential optimal cost"
    );
    assert_eq!(cut.stats.value_flow_pruned > 0, expect_pruned, "{label}");
    if expect_pruned {
        assert!(
            cut.stats.generated < baseline.stats.generated,
            "{label}: pruning must shrink the generated count"
        );
    }
    if let Some(prog) = cut.first_program() {
        sortsynth_verify::gate(machine, &prog)
            .unwrap_or_else(|e| panic!("{label}: gate rejected kernel: {e:?}"));
    }
    for &t in threads {
        let par = synthesize(&cfg.clone().value_flow_cut(true).threads(t));
        assert_eq!(
            baseline.found_len, par.found_len,
            "{label}: diverged at {t} threads"
        );
        let pruned: u64 = par.stats.shards.iter().map(|s| s.value_flow_pruned).sum();
        assert_eq!(
            par.stats.value_flow_pruned, pruned,
            "{label}@{t}: aggregate"
        );
        if let Some(prog) = par.first_program() {
            sortsynth_verify::gate(machine, &prog)
                .unwrap_or_else(|e| panic!("{label}@{t}: gate rejected kernel: {e:?}"));
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
fn n2_both_isas() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(2, 1, mode);
        let bound = match mode {
            IsaMode::Cmov => 4,
            IsaMode::MinMax => 3,
        };
        let cfg = SynthesisConfig::new(machine.clone()).max_len(bound);
        assert_cut_lossless(&machine, &format!("n2 {mode:?}"), &cfg, &[2, 4], true);
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
fn n3_minmax() {
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(8);
    assert_cut_lossless(&machine, "n3 MinMax", &cfg, &[4], true);
}

#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
fn n3_cmov() {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(11);
    assert_cut_lossless(&machine, "n3 Cmov", &cfg, &[4], true);
}

#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
fn n3_cmov_all_solutions_counts_agree() {
    // All-solutions mode wants every minimal program, so the cut restricts
    // itself to the unconditional (state-identical) half — the enumerated
    // solution count must not change.
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .all_solutions(true)
        .max_len(11);
    let baseline = synthesize(&cfg);
    let cut = synthesize(&cfg.clone().value_flow_cut(true));
    assert_eq!(baseline.found_len, cut.found_len);
    assert_eq!(baseline.solution_count(), cut.solution_count());
    assert!(cut.stats.value_flow_pruned > 0);
}

#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
fn n4_minmax() {
    let machine = Machine::new(4, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(15);
    assert_cut_lossless(&machine, "n4 MinMax", &cfg, &[4], true);
}

/// Release-only completion of the matrix, following the
/// `parallel_equivalence` precedent: the n = 4 cmov space needs the full
/// best() configuration to finish in reasonable time. Run by the CI
/// `parallel-smoke` job with `--release -- --include-ignored`.
#[test]
#[cfg_attr(miri, ignore = "differential cut matrix is too slow under miri")]
#[ignore = "minutes in debug mode; CI runs it with --release"]
fn n4_cmov_best_config() {
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::best(machine.clone());
    let baseline = synthesize(&cfg);
    assert_eq!(baseline.found_len, Some(20));
    let cut = synthesize(&cfg.clone().value_flow_cut(true));
    assert_eq!(cut.found_len, Some(20));
    // best() restricts to optimal first instructions, so only the
    // unconditional half of the cut is active — it still fires.
    assert!(cut.stats.value_flow_pruned > 0);
    let par = synthesize(&cfg.clone().value_flow_cut(true).threads(4));
    assert_eq!(par.found_len, Some(20), "diverged at 4 threads");
    let prog = par.first_program().expect("kernel");
    sortsynth_verify::gate(&machine, &prog)
        .unwrap_or_else(|e| panic!("gate rejected n4 kernel at 4 threads: {e:?}"));
}
