//! Soundness of the narrowed u64 closed-set key ([`KeyWidth::U64`]).
//!
//! Narrowing xor-folds the 128-bit content hash to 64 bits before it is
//! stored, halving closed-map bytes per state. A fold collision between two
//! *different* canonical states would silently merge them and could produce
//! a wrong "optimal" length, so the narrowing is defended on two fronts:
//!
//! 1. a **differential matrix**: every (n, ISA, threads) cell runs under
//!    both key widths and must produce identical optimal costs — and, for
//!    the deterministic sequential engine, identical prune counters;
//! 2. **collision fuzzing**: millions of random canonical states must map
//!    to distinct narrowed keys (distinct 128-bit keys implied). The quick
//!    rows run in CI; the `#[ignore]` rows push past 10M states per ISA
//!    under `--release -- --ignored`.

use std::collections::HashMap;

use proptest::prelude::*;
use sortsynth_isa::{IsaMode, Machine, MachineState};
use sortsynth_search::{narrow_key, synthesize, KeyWidth, StateSet, SynthesisConfig};

/// The distance-table configuration for one machine, at one width.
fn cfg(machine: &Machine, bound: u32, width: KeyWidth) -> SynthesisConfig {
    SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .max_len(bound)
        .key_width(width)
}

/// Runs one matrix cell at both widths and asserts cost equality; for
/// sequential runs additionally pins every prune counter (the sequential
/// engine is deterministic, so the key representation must be invisible in
/// them). Parallel runs assert cost only — interleavings perturb counter
/// attribution across shards.
fn assert_widths_agree(machine: &Machine, label: &str, bound: u32, threads: usize) {
    let narrow = synthesize(&cfg(machine, bound, KeyWidth::U64).threads(threads));
    let wide = synthesize(&cfg(machine, bound, KeyWidth::U128).threads(threads));
    assert_eq!(
        narrow.found_len, wide.found_len,
        "{label}@{threads}t: key width changed the optimal cost (u64 {:?}, u128 {:?})",
        narrow.outcome, wide.outcome
    );
    if let Some(prog) = narrow.first_program() {
        sortsynth_verify::gate(machine, &prog)
            .unwrap_or_else(|e| panic!("{label}@{threads}t: oracle rejected u64 kernel: {e:?}"));
    }
    if threads <= 1 {
        let (a, b) = (&narrow.stats, &wide.stats);
        assert_eq!(a.generated, b.generated, "{label}: generated");
        assert_eq!(a.expanded, b.expanded, "{label}: expanded");
        assert_eq!(a.dedup_hits, b.dedup_hits, "{label}: dedup_hits");
        assert_eq!(a.viability_pruned, b.viability_pruned, "{label}: viability");
        assert_eq!(a.cut_pruned, b.cut_pruned, "{label}: cut");
        assert_eq!(
            a.dead_write_pruned, b.dead_write_pruned,
            "{label}: dead-write"
        );
        assert_eq!(
            a.value_flow_pruned, b.value_flow_pruned,
            "{label}: value-flow"
        );
        assert_eq!(a.states_kept, b.states_kept, "{label}: states_kept");
        assert_eq!(a.interned_states, b.interned_states, "{label}: interned");
        // The whole point of the narrowing: same states, half the key bytes.
        assert!(
            a.key_bytes * 2 <= b.key_bytes || b.key_bytes == 0,
            "{label}: u64 key store ({} B) is not half the u128 store ({} B)",
            a.key_bytes,
            b.key_bytes
        );
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential matrix is too slow under miri")]
fn key_width_differential_matrix() {
    let cells: &[(u8, IsaMode, u32)] = &[
        (2, IsaMode::Cmov, 4),
        (2, IsaMode::MinMax, 3),
        (3, IsaMode::Cmov, 11),
        (3, IsaMode::MinMax, 8),
        (4, IsaMode::MinMax, 15),
    ];
    for &(n, mode, bound) in cells {
        let machine = Machine::new(n, 1, mode);
        for threads in [1usize, 4] {
            assert_widths_agree(&machine, &format!("n{n} {mode:?}"), bound, threads);
        }
    }
}

/// Completes the matrix at the headline cell. Run by the CI `memory-smoke`
/// job with `--release -- --include-ignored`.
#[test]
#[cfg_attr(miri, ignore = "differential matrix is too slow under miri")]
#[ignore = "n4 cmov needs --release; CI runs it"]
fn key_width_differential_n4_cmov() {
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    for threads in [1usize, 4] {
        let narrow = synthesize(
            &SynthesisConfig::best(machine.clone())
                .key_width(KeyWidth::U64)
                .threads(threads),
        );
        let wide = synthesize(
            &SynthesisConfig::best(machine.clone())
                .key_width(KeyWidth::U128)
                .threads(threads),
        );
        assert_eq!(narrow.found_len, Some(20), "u64 @ {threads}t");
        assert_eq!(wide.found_len, Some(20), "u128 @ {threads}t");
    }
}

/// Splitmix64: a tiny, deterministic PRNG so the fuzz corpus is reproducible
/// without threading `rand` state through helpers.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One random canonical state for `machine`: a random-size set of random
/// register assignments (values confined to the machine's nibble lanes,
/// random flag bits), canonicalized by [`StateSet::from_assignments`].
fn random_state(machine: &Machine, rng: &mut u64) -> StateSet {
    let regs = machine.n() as u32 + machine.scratch() as u32;
    let value_mask = (1u64 << (4 * regs)) - 1;
    let flag_mask = 0b11 << 60;
    let count = 1 + (splitmix(rng) as usize % 24);
    let assigns = (0..count)
        .map(|_| MachineState::from_bits(splitmix(rng) & (value_mask | flag_mask)))
        .collect();
    StateSet::from_assignments(assigns)
}

/// Feeds `states` random canonical states through the fold, asserting that
/// equal narrowed keys only ever come from equal 128-bit keys *and* equal
/// assignment sets. Checking each new state against everything already seen
/// makes the pair count quadratic in distinct states — well past the 10M
/// pair target at the `#[ignore]` scale.
fn fuzz_fold(mode: IsaMode, states: u64, seed: u64) {
    let machine = Machine::new(4, 1, mode);
    let mut rng = seed;
    let mut seen: HashMap<u64, (u128, StateSet)> = HashMap::with_capacity(states as usize);
    for i in 0..states {
        let state = random_state(&machine, &mut rng);
        let key = state.key();
        match seen.get(&narrow_key(key)) {
            None => {
                seen.insert(narrow_key(key), (key, state));
            }
            Some((prev_key, prev_state)) => {
                assert_eq!(
                    (*prev_key, prev_state.assignments()),
                    (key, state.assignments()),
                    "{mode:?}: 64-bit fold collision after {i} states \
                     (fold {:#018x})",
                    narrow_key(key)
                );
            }
        }
    }
}

#[test]
fn narrowed_keys_are_collision_free_quick() {
    fuzz_fold(IsaMode::Cmov, 200_000, 0xC0FFEE);
    fuzz_fold(IsaMode::MinMax, 200_000, 0xB00B1E5);
}

#[test]
#[ignore = "10M+ states per ISA; CI memory-smoke runs it with --release"]
fn narrowed_keys_are_collision_free_deep() {
    fuzz_fold(IsaMode::Cmov, 12_000_000, 0xDEAD_BEEF);
    fuzz_fold(IsaMode::MinMax, 12_000_000, 0xFACE_FEED);
}

proptest! {
    /// Key equality is exactly assignment-set equality, at both widths: the
    /// canonical key (and its fold) is a pure function of the canonical
    /// assignment list, insensitive to input order and duplicates.
    #[test]
    fn key_is_a_pure_function_of_the_canonical_set(
        bits in prop::collection::vec(0u64..(1 << 16), 1..12),
        shuffle_seed in any::<u64>(),
    ) {
        let assigns: Vec<MachineState> =
            bits.iter().map(|&b| MachineState::from_bits(b)).collect();
        let a = StateSet::from_assignments(assigns.clone());
        // Same multiset, rotated order, plus a duplicated element.
        let mut rotated = assigns.clone();
        let pivot = (shuffle_seed as usize) % rotated.len();
        rotated.rotate_left(pivot);
        rotated.push(rotated[0]);
        let b = StateSet::from_assignments(rotated);
        prop_assert_eq!(a.assignments(), b.assignments());
        prop_assert_eq!(a.key(), b.key());
        prop_assert_eq!(narrow_key(a.key()), narrow_key(b.key()));
    }

    /// Distinct canonical sets get distinct keys and distinct folds across
    /// the proptest corpus (a probabilistic injectivity check, shrunk to a
    /// minimal witness on failure).
    #[test]
    fn distinct_sets_get_distinct_folds(
        xs in prop::collection::vec(0u64..(1 << 16), 1..12),
        ys in prop::collection::vec(0u64..(1 << 16), 1..12),
    ) {
        let a = StateSet::from_assignments(
            xs.iter().map(|&b| MachineState::from_bits(b)).collect());
        let b = StateSet::from_assignments(
            ys.iter().map(|&b| MachineState::from_bits(b)).collect());
        if a.assignments() != b.assignments() {
            prop_assert_ne!(a.key(), b.key());
            prop_assert_ne!(narrow_key(a.key()), narrow_key(b.key()));
        } else {
            prop_assert_eq!(a.key(), b.key());
        }
    }
}
