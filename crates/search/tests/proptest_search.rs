//! Property-based tests for search states, the distance table, the
//! bucketed open list, and SWAR batch stepping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use sortsynth_isa::{BatchStepper, IsaMode, Machine, MachineState};
use sortsynth_search::{BucketQueue, DistanceTable, StateSet, UNSORTABLE};

fn machine() -> Machine {
    Machine::new(3, 1, IsaMode::Cmov)
}

/// Arbitrary single register assignment for the n = 3, m = 1 machine:
/// values in 0..=3 plus a legal flag combination.
fn arb_assignment() -> impl Strategy<Value = MachineState> {
    (
        prop::collection::vec(0u8..=3, 4),
        prop_oneof![
            Just((false, false)),
            Just((true, false)),
            Just((false, true))
        ],
    )
        .prop_map(|(vals, (lt, gt))| {
            let mut st = MachineState::from_values(&vals);
            st.set_flags(lt, gt);
            st
        })
}

proptest! {
    /// Canonicalization is order-insensitive and idempotent.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn canonicalization_is_order_insensitive(
        mut assigns in prop::collection::vec(arb_assignment(), 1..12),
    ) {
        let a = StateSet::from_assignments(assigns.clone());
        assigns.reverse();
        let b = StateSet::from_assignments(assigns.clone());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.key(), b.key());
        let again = StateSet::from_assignments(a.assignments().to_vec());
        prop_assert_eq!(a, again);
    }

    /// Applying an instruction is a function, so the number of distinct
    /// assignments can never increase. (The *permutation* count is NOT
    /// monotone — a conditional move can split two assignments that
    /// differed only in their flags — so the correct upper bound for it is
    /// the predecessor's assignment count.)
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn counts_are_monotone_under_apply(
        assigns in prop::collection::vec(arb_assignment(), 1..12),
        action_idx in 0usize..64,
    ) {
        let m = machine();
        let actions = m.actions();
        let instr = actions[action_idx % actions.len()];
        let state = StateSet::from_assignments(assigns);
        let next = state.apply(instr);
        prop_assert!(next.assign_count() <= state.assign_count());
        prop_assert!(next.perm_count(&m) <= state.assign_count());
        prop_assert!(next.perm_count(&m) <= next.assign_count());
    }

    /// The distance table satisfies the Bellman consistency property over
    /// arbitrary assignments: one step changes the distance by at most one
    /// in each direction (so it is an admissible, consistent heuristic).
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn distance_table_is_consistent(assign in arb_assignment(), action_idx in 0usize..64) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let actions = m.actions();
        let instr = actions[action_idx % actions.len()];
        let d = table.dist(assign);
        let ds = table.dist(assign.step(instr));
        if d == UNSORTABLE {
            // An erased state can never become sortable again.
            prop_assert_eq!(ds, UNSORTABLE);
        } else if ds != UNSORTABLE {
            prop_assert!(d <= ds + 1, "d {d} vs succ {ds}");
        }
    }

    /// Zero distance iff the assignment is sorted.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn distance_zero_iff_sorted(assign in arb_assignment()) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        prop_assert_eq!(table.dist(assign) == 0, m.is_sorted(assign));
    }

    /// `max_dist` over a set is the max of the members' distances.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn max_dist_is_the_maximum(assigns in prop::collection::vec(arb_assignment(), 1..8)) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let set = StateSet::from_assignments(assigns.clone());
        let expected = set
            .assignments()
            .iter()
            .map(|&a| table.dist(a))
            .max()
            .expect("non-empty");
        let expected = if set.assignments().iter().any(|&a| table.dist(a) == UNSORTABLE) {
            UNSORTABLE
        } else {
            expected
        };
        prop_assert_eq!(table.max_dist(&set), expected);
    }

    /// Collision smoke test for `key()`: the engines dedup by the 128-bit
    /// content key alone and never re-compare assignments, so over random
    /// canonical sets key equality must coincide with set equality. (The
    /// forward direction — equal sets hash equal — is determinism; the
    /// interesting direction is the absence of observed collisions.)
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn key_equality_matches_set_equality(
        a in prop::collection::vec(arb_assignment(), 1..12),
        b in prop::collection::vec(arb_assignment(), 1..12),
    ) {
        let sa = StateSet::from_assignments(a);
        let sb = StateSet::from_assignments(b);
        prop_assert_eq!(sa.key() == sb.key(), sa == sb);
    }

    /// Erasure detection agrees with the distance table's unsortability.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn erasure_iff_unsortable(assign in arb_assignment()) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let set = StateSet::from_assignments(vec![assign]);
        prop_assert_eq!(set.has_erased_value(&m), table.dist(assign) == UNSORTABLE);
    }

    /// The bucket queue is observationally a priority queue: under an
    /// *arbitrary* interleaving of pushes and pops — including f-values
    /// that undercut the cursor, duplicate triples, and pops on empty —
    /// every pop agrees with a reference `BinaryHeap` popping the
    /// smallest `(f, g, id)`. This is stronger than the engines need
    /// (their f-sequences are nearly monotone) and is exactly the
    /// contract the `bucket_equivalence` differential suite relies on.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn bucket_queue_matches_reference_heap(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..24, 0u32..16, 0u32..128),
            1..200,
        ),
    ) {
        let mut bucket = BucketQueue::with_f_hint(8);
        let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
        for (is_push, f, g, id) in ops {
            if is_push {
                bucket.push(f, g, id);
                heap.push(Reverse((f, g, id)));
            } else {
                prop_assert_eq!(bucket.pop(), heap.pop().map(|Reverse(e)| e));
            }
            prop_assert_eq!(bucket.len(), heap.len());
            prop_assert_eq!(bucket.is_empty(), heap.is_empty());
        }
        // Drain: the live multisets are equal, delivered in sorted order.
        while let Some(expected) = heap.pop() {
            prop_assert_eq!(bucket.pop(), Some(expected.0));
        }
        prop_assert_eq!(bucket.pop(), None);
        prop_assert!(bucket.is_empty());
    }

    /// SWAR batch stepping is bit-for-bit the scalar `step` on every ISA
    /// action, over random batches of *search-shaped* states (legal flag
    /// combinations; the all-bit-patterns case is pinned by the unit
    /// tests in `sortsynth-isa`). Also checks the appended span lands
    /// after an untouched prefix, as the expansion buffer requires.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn batch_step_matches_scalar_step(
        batch in prop::collection::vec(arb_assignment(), 0..40),
        action_idx in 0usize..64,
        minmax in any::<bool>(),
    ) {
        let mode = if minmax { IsaMode::MinMax } else { IsaMode::Cmov };
        let m = Machine::new(3, 1, mode);
        let actions = m.actions();
        let instr = actions[action_idx % actions.len()];
        let sentinel = MachineState::from_values(&[1, 2, 3]);
        let mut out = vec![sentinel];
        BatchStepper::new(instr).append_stepped(&batch, &mut out);
        prop_assert_eq!(out[0], sentinel);
        let scalar: Vec<MachineState> = batch.iter().map(|s| s.step(instr)).collect();
        prop_assert_eq!(&out[1..], &scalar[..]);
    }
}
