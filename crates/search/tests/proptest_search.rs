//! Property-based tests for search states and the distance table.

use proptest::prelude::*;
use sortsynth_isa::{IsaMode, Machine, MachineState};
use sortsynth_search::{DistanceTable, StateSet, UNSORTABLE};

fn machine() -> Machine {
    Machine::new(3, 1, IsaMode::Cmov)
}

/// Arbitrary single register assignment for the n = 3, m = 1 machine:
/// values in 0..=3 plus a legal flag combination.
fn arb_assignment() -> impl Strategy<Value = MachineState> {
    (
        prop::collection::vec(0u8..=3, 4),
        prop_oneof![
            Just((false, false)),
            Just((true, false)),
            Just((false, true))
        ],
    )
        .prop_map(|(vals, (lt, gt))| {
            let mut st = MachineState::from_values(&vals);
            st.set_flags(lt, gt);
            st
        })
}

proptest! {
    /// Canonicalization is order-insensitive and idempotent.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn canonicalization_is_order_insensitive(
        mut assigns in prop::collection::vec(arb_assignment(), 1..12),
    ) {
        let a = StateSet::from_assignments(assigns.clone());
        assigns.reverse();
        let b = StateSet::from_assignments(assigns.clone());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.key(), b.key());
        let again = StateSet::from_assignments(a.assignments().to_vec());
        prop_assert_eq!(a, again);
    }

    /// Applying an instruction is a function, so the number of distinct
    /// assignments can never increase. (The *permutation* count is NOT
    /// monotone — a conditional move can split two assignments that
    /// differed only in their flags — so the correct upper bound for it is
    /// the predecessor's assignment count.)
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn counts_are_monotone_under_apply(
        assigns in prop::collection::vec(arb_assignment(), 1..12),
        action_idx in 0usize..64,
    ) {
        let m = machine();
        let actions = m.actions();
        let instr = actions[action_idx % actions.len()];
        let state = StateSet::from_assignments(assigns);
        let next = state.apply(instr);
        prop_assert!(next.assign_count() <= state.assign_count());
        prop_assert!(next.perm_count(&m) <= state.assign_count());
        prop_assert!(next.perm_count(&m) <= next.assign_count());
    }

    /// The distance table satisfies the Bellman consistency property over
    /// arbitrary assignments: one step changes the distance by at most one
    /// in each direction (so it is an admissible, consistent heuristic).
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn distance_table_is_consistent(assign in arb_assignment(), action_idx in 0usize..64) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let actions = m.actions();
        let instr = actions[action_idx % actions.len()];
        let d = table.dist(assign);
        let ds = table.dist(assign.step(instr));
        if d == UNSORTABLE {
            // An erased state can never become sortable again.
            prop_assert_eq!(ds, UNSORTABLE);
        } else if ds != UNSORTABLE {
            prop_assert!(d <= ds + 1, "d {d} vs succ {ds}");
        }
    }

    /// Zero distance iff the assignment is sorted.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn distance_zero_iff_sorted(assign in arb_assignment()) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        prop_assert_eq!(table.dist(assign) == 0, m.is_sorted(assign));
    }

    /// `max_dist` over a set is the max of the members' distances.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn max_dist_is_the_maximum(assigns in prop::collection::vec(arb_assignment(), 1..8)) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let set = StateSet::from_assignments(assigns.clone());
        let expected = set
            .assignments()
            .iter()
            .map(|&a| table.dist(a))
            .max()
            .expect("non-empty");
        let expected = if set.assignments().iter().any(|&a| table.dist(a) == UNSORTABLE) {
            UNSORTABLE
        } else {
            expected
        };
        prop_assert_eq!(table.max_dist(&set), expected);
    }

    /// Collision smoke test for `key()`: the engines dedup by the 128-bit
    /// content key alone and never re-compare assignments, so over random
    /// canonical sets key equality must coincide with set equality. (The
    /// forward direction — equal sets hash equal — is determinism; the
    /// interesting direction is the absence of observed collisions.)
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn key_equality_matches_set_equality(
        a in prop::collection::vec(arb_assignment(), 1..12),
        b in prop::collection::vec(arb_assignment(), 1..12),
    ) {
        let sa = StateSet::from_assignments(a);
        let sb = StateSet::from_assignments(b);
        prop_assert_eq!(sa.key() == sb.key(), sa == sb);
    }

    /// Erasure detection agrees with the distance table's unsortability.
    #[test]
    #[cfg_attr(miri, ignore = "property sweep is too slow under miri")]
    fn erasure_iff_unsortable(assign in arb_assignment()) {
        let m = machine();
        let table = DistanceTable::build(&m, false);
        let set = StateSet::from_assignments(vec![assign]);
        prop_assert_eq!(set.has_erased_value(&m), table.dist(assign) == UNSORTABLE);
    }
}
