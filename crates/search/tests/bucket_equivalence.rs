//! Differential suite pinning the bucketed open list to the reference
//! binary heap.
//!
//! [`BucketQueue`]'s contract is *exact* heap-order equivalence: both open
//! lists pop entries in ascending `(f, g, state id)`, so a single-threaded
//! best-first run must be bit-identical between the two — same kernel,
//! same expansion count, same pruning counters, same stale-pop count.
//! The matrix covers n = 2..4 on both ISA modes across the lossless A*
//! configurations (admissible heuristic on/off × dead-write cut on/off);
//! single-threaded rows assert full trace equality, parallel rows (2 and 4
//! workers, where expansion order races) assert cost equality and
//! oracle-verified kernels.
//!
//! Every synthesized kernel additionally passes the sortsynth-verify gate
//! (exhaustive n! permutation oracle at these sizes): swapping the open
//! list must not just preserve cost, it must keep emitting *correct*
//! kernels.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{
    synthesize, Heuristic, OpenList, Outcome, Strategy, SynthesisConfig, SynthesisResult,
};

/// Lossless best-first configurations for `machine`, labelled. Unlike the
/// layered rows of `parallel_equivalence`, every row here runs
/// [`Strategy::AStar`] so the sequential engine actually selects through
/// the open list under test. Both heuristics are admissible, and the
/// dead-write cut is lossless, so heap and bucket must agree on the
/// optimal cost in every cell.
fn astar_configs(machine: &Machine, bound: u32) -> Vec<(&'static str, SynthesisConfig)> {
    let astar = |heuristic| Strategy::AStar { heuristic };
    let base = || SynthesisConfig::new(machine.clone()).max_len(bound);
    let guided = || {
        base()
            .budget_viability(true)
            .strategy(astar(Heuristic::MaxRemaining))
    };
    vec![
        ("ucs", base().strategy(astar(Heuristic::None))),
        (
            "ucs+dead-write",
            base().strategy(astar(Heuristic::None)).dead_write_cut(true),
        ),
        ("maxrem", guided()),
        ("maxrem+dead-write", guided().dead_write_cut(true)),
    ]
}

/// Oracle-verifies the kernel (when one was found) against the machine.
fn check_kernel(machine: &Machine, label: &str, result: &SynthesisResult) {
    if let Some(len) = result.found_len {
        let prog = result.first_program().expect("found_len implies a program");
        assert_eq!(prog.len() as u32, len, "{label}");
        sortsynth_verify::gate(machine, &prog)
            .unwrap_or_else(|e| panic!("{label}: oracle rejected kernel: {e:?}"));
    }
}

/// Runs `cfg` under both open lists, asserting the single-threaded runs
/// are trace-identical and every parallel thread count is cost-identical.
fn assert_heap_bucket_equal(
    machine: &Machine,
    label: &str,
    cfg: &SynthesisConfig,
    threads: &[usize],
) {
    let heap = synthesize(&cfg.clone().open_list(OpenList::Heap));
    let bucket = synthesize(&cfg.clone().open_list(OpenList::Bucket));

    // Single-threaded: the bucket queue is a drop-in reimplementation of
    // the heap's pop order, so the entire search unfolds identically —
    // every counter that reflects a search *decision* must match exactly.
    assert_eq!(heap.found_len, bucket.found_len, "{label}: cost");
    assert_eq!(heap.outcome, bucket.outcome, "{label}: outcome");
    assert_eq!(
        heap.first_program(),
        bucket.first_program(),
        "{label}: kernel"
    );
    let (h, b) = (&heap.stats, &bucket.stats);
    assert_eq!(h.expanded, b.expanded, "{label}: expanded");
    assert_eq!(h.generated, b.generated, "{label}: generated");
    assert_eq!(h.states_kept, b.states_kept, "{label}: states_kept");
    assert_eq!(h.dedup_hits, b.dedup_hits, "{label}: dedup_hits");
    assert_eq!(h.viability_pruned, b.viability_pruned, "{label}: viability");
    assert_eq!(h.cut_pruned, b.cut_pruned, "{label}: cut");
    assert_eq!(
        h.dead_write_pruned, b.dead_write_pruned,
        "{label}: dead-write"
    );
    assert_eq!(h.stale_pops, b.stale_pops, "{label}: stale_pops");
    assert_eq!(h.swar_batches, b.swar_batches, "{label}: swar_batches");
    // The scan counter is what *distinguishes* the implementations: the
    // heap never cursor-scans, the bucket queue attributes all its
    // empty-bucket walking here.
    assert_eq!(h.bucket_scans, 0, "{label}: heap must not count scans");
    check_kernel(machine, &format!("{label} heap@1"), &heap);
    check_kernel(machine, &format!("{label} bucket@1"), &bucket);

    // Parallel: expansion order races, so only the optimal cost and kernel
    // correctness are invariant — per-counter equality is not.
    for &t in threads {
        for (kind, name) in [(OpenList::Heap, "heap"), (OpenList::Bucket, "bucket")] {
            let result = synthesize(&cfg.clone().open_list(kind).threads(t));
            assert_eq!(
                result.found_len, heap.found_len,
                "{label} {name}@{t}: diverged from sequential ({:?})",
                result.outcome
            );
            check_kernel(machine, &format!("{label} {name}@{t}"), &result);
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n2_both_isas_full_matrix() {
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        let machine = Machine::new(2, 1, mode);
        let bound = match mode {
            IsaMode::Cmov => 4,
            IsaMode::MinMax => 3,
        };
        for (label, cfg) in astar_configs(&machine, bound) {
            assert_heap_bucket_equal(&machine, &format!("n2 {mode:?} {label}"), &cfg, &[2, 4]);
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n3_minmax_full_matrix() {
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    for (label, cfg) in astar_configs(&machine, 8) {
        assert_heap_bucket_equal(&machine, &format!("n3 MinMax {label}"), &cfg, &[2, 4]);
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n3_cmov_guided_rows() {
    // The unguided n = 3 cmov space is minutes-deep in debug mode; the
    // MaxRemaining rows finish in seconds and still exercise both
    // dead-write settings. The unguided axis is covered at n = 2 and
    // n = 3 minmax above.
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let rows: Vec<_> = astar_configs(&machine, 11)
        .into_iter()
        .filter(|(label, _)| label.starts_with("maxrem"))
        .collect();
    assert_eq!(rows.len(), 2);
    for (label, cfg) in rows {
        assert_heap_bucket_equal(&machine, &format!("n3 Cmov {label}"), &cfg, &[2]);
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn n4_minmax_guided_row() {
    let machine = Machine::new(4, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .strategy(Strategy::AStar {
            heuristic: Heuristic::MaxRemaining,
        })
        .max_len(15);
    assert_heap_bucket_equal(&machine, "n4 MinMax maxrem", &cfg, &[4]);
}

/// Release-only completion of the matrix: the n = 4 cmov space needs the
/// full best() configuration to finish in reasonable time. Sequential
/// best() is layered (no open list), so the interesting cells are the
/// parallel ones, where both open-list kinds drive the sharded engine.
/// Run by the CI `perf-smoke` job with `--release -- --include-ignored`.
#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
#[ignore = "minutes in debug mode; CI runs it with --release"]
fn n4_cmov_best_config_heap_bucket_agree() {
    let machine = Machine::new(4, 1, IsaMode::Cmov);
    let cfg = SynthesisConfig::best(machine.clone());
    for kind in [OpenList::Heap, OpenList::Bucket] {
        for t in [1, 2, 4] {
            let result = synthesize(&cfg.clone().open_list(kind).threads(t));
            assert_eq!(
                result.found_len,
                Some(20),
                "{kind:?}@{t} missed the length-20 kernel ({:?})",
                result.outcome
            );
            check_kernel(&machine, &format!("n4 Cmov best {kind:?}@{t}"), &result);
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn seeded_stress_bucket_parallel_is_interleaving_invariant() {
    // The same bucket-queue parallel search, 20 times, each with a
    // different seed for the test-only per-worker yield/sleep injection —
    // so the thread interleavings genuinely differ — must always land on
    // the heap-sequential optimal cost with an oracle-accepted kernel.
    let machine = Machine::new(3, 1, IsaMode::MinMax);
    let cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .strategy(Strategy::AStar {
            heuristic: Heuristic::MaxRemaining,
        })
        .max_len(8);
    let reference = synthesize(&cfg.clone().open_list(OpenList::Heap));
    let expected = reference.found_len.expect("n3 minmax solves");
    assert_eq!(expected, 8);

    for seed in 0..20u64 {
        let result = synthesize(
            &cfg.clone()
                .open_list(OpenList::Bucket)
                .threads(4)
                .perturb_seed(0xFEED_1000 + seed),
        );
        assert_eq!(
            result.found_len,
            Some(expected),
            "seed {seed}: cost diverged ({:?})",
            result.outcome
        );
        check_kernel(&machine, &format!("stress seed {seed}"), &result);
    }
}

#[test]
#[cfg_attr(miri, ignore = "differential equivalence suite is too slow under miri")]
fn oversized_machine_runs_on_both_open_lists() {
    // Regression: a machine past the distance table's action limit takes
    // the no-table fallback; the open-list swap must not disturb it on
    // either the sequential or the sharded setup path.
    let machine = Machine::new(2, 8, IsaMode::Cmov);
    assert!(!sortsynth_search::DistanceTable::supports(&machine));
    for kind in [OpenList::Heap, OpenList::Bucket] {
        for t in [1usize, 4] {
            let cfg = SynthesisConfig::new(machine.clone())
                .strategy(Strategy::AStar {
                    heuristic: Heuristic::None,
                })
                .open_list(kind)
                .max_len(4)
                .threads(t);
            let result = synthesize(&cfg);
            assert_eq!(result.found_len, Some(4), "{kind:?}@{t}");
            assert_eq!(result.outcome, Outcome::Solved, "{kind:?}@{t}");
            check_kernel(&machine, &format!("oversized {kind:?}@{t}"), &result);
        }
    }
}
