//! Criterion benches for synthesis time (the timing-sensitive rows of the
//! §5.2 tables: E4 headline, E9 ablation highlights, E10 cut factors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sortsynth_isa::{IsaMode, Machine};
use sortsynth_plan::{encode_synthesis, solve, PlanLimits, PlanStrategy};
use sortsynth_search::{synthesize, Cut, Heuristic, Strategy, SynthesisConfig};
use sortsynth_solvers::{smt_perm, Budget, EncodeOptions};

fn bench_enum_best(c: &mut Criterion) {
    let mut group = c.benchmark_group("enum_best");
    group.sample_size(10);
    for n in [2u8, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let machine = Machine::new(n, 1, IsaMode::Cmov);
            b.iter(|| {
                let result = synthesize(&SynthesisConfig::best(machine.clone()));
                assert!(result.found_len.is_some());
                result.stats.generated
            });
        });
    }
    // n = 4 is ~2.5 s per run; ten samples documents the headline number.
    group.bench_function("4", |b| {
        let machine = Machine::new(4, 1, IsaMode::Cmov);
        b.iter(|| synthesize(&SynthesisConfig::best(machine.clone())).found_len)
    });
    group.finish();
}

fn bench_enum_minmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("enum_minmax");
    group.sample_size(10);
    for n in [3u8, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let machine = Machine::new(n, 1, IsaMode::MinMax);
            b.iter(|| synthesize(&SynthesisConfig::best(machine.clone())).found_len)
        });
    }
    group.finish();
}

fn bench_cut_factors(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_factor_n3");
    group.sample_size(10);
    for k in [1.0f64, 1.5, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let machine = Machine::new(3, 1, IsaMode::Cmov);
            b.iter(|| {
                synthesize(&SynthesisConfig::best(machine.clone()).cut(Cut::Factor(k))).found_len
            })
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("astar_heuristic_n3");
    group.sample_size(10);
    for (name, h) in [
        ("perm_count", Heuristic::PermCount),
        ("assign_count", Heuristic::AssignCount),
    ] {
        group.bench_function(name, |b| {
            let machine = Machine::new(3, 1, IsaMode::Cmov);
            b.iter(|| {
                let cfg = SynthesisConfig::new(machine.clone())
                    .strategy(Strategy::AStar { heuristic: h })
                    .budget_viability(true)
                    .optimal_instrs_only(true)
                    .cut(Cut::Factor(1.0));
                synthesize(&cfg).found_len
            })
        });
    }
    group.finish();
}

fn bench_baselines_n2(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_n2");
    group.sample_size(10);
    group.bench_function("smt_perm", |b| {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        b.iter(|| smt_perm(&machine, 4, EncodeOptions::default(), Budget::default()).0)
    });
    group.bench_function("planner_bfs", |b| {
        let machine = Machine::new(2, 1, IsaMode::Cmov);
        b.iter(|| {
            let (problem, _, _) = encode_synthesis(&machine);
            solve(&problem, PlanStrategy::Bfs, PlanLimits::default()).expanded
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_enum_best,
    bench_enum_minmax,
    bench_cut_factors,
    bench_heuristics,
    bench_baselines_n2
);
criterion_main!(benches);
