//! Criterion benches for kernel runtime — the §5.3/§5.4 comparisons
//! (E11–E14, E16) at criterion-grade statistical rigor.
//!
//! Each bench sorts a fixed pseudo-random workload of 256 arrays; the
//! reported time is per workload pass. Kernels execute as native JIT code
//! on x86-64 and through the interpreter elsewhere.

use criterion::{criterion_group, criterion_main, Criterion};
use sortsynth_isa::IsaMode;
use sortsynth_kernels::{
    baselines, network_kernel, quicksort_with, reference, standalone_inputs, Kernel,
};

fn workload(n: usize) -> Vec<Vec<i32>> {
    standalone_inputs(n, 256, 0xBE7C4)
}

fn run_kernel(kernel: &Kernel, inputs: &[Vec<i32>], buf: &mut Vec<i32>) {
    for input in inputs {
        buf.clear();
        buf.extend_from_slice(input);
        kernel.sort(buf);
        std::hint::black_box(buf.first().copied());
    }
}

fn bench_standalone_n3(c: &mut Criterion) {
    let mut group = c.benchmark_group("standalone_n3");
    let inputs = workload(3);
    let mut contestants: Vec<Kernel> = Vec::new();
    let (m, p) = reference::paper_synth_cmov3();
    contestants.push(Kernel::from_program("enum", &m, p));
    let (m, p) = reference::alphadev_cmov3();
    contestants.push(Kernel::from_program("alphadev", &m, p));
    let (m, p) = reference::enum_worst_cmov3();
    contestants.push(Kernel::from_program("enum_worst", &m, p));
    let (m, p) = network_kernel(3, IsaMode::Cmov);
    contestants.push(Kernel::from_program("network", &m, p));
    for sorter in baselines::native3() {
        contestants.push(Kernel::native(sorter));
    }
    let mut buf = Vec::new();
    for kernel in &contestants {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| run_kernel(kernel, &inputs, &mut buf))
        });
    }
    group.finish();
}

fn bench_standalone_minmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("standalone_minmax");
    let mut buf = Vec::new();
    let entries: Vec<(usize, Kernel)> = vec![
        (3, {
            let (m, p) = reference::paper_synth_minmax3();
            Kernel::from_program("minmax3_synth", &m, p)
        }),
        (3, {
            let (m, p) = network_kernel(3, IsaMode::MinMax);
            Kernel::from_program("minmax3_network", &m, p)
        }),
        (5, {
            let (m, p) = reference::enum_minmax5();
            Kernel::from_program("minmax5_synth23", &m, p)
        }),
        (5, {
            let (m, p) = network_kernel(5, IsaMode::MinMax);
            Kernel::from_program("minmax5_network27", &m, p)
        }),
    ];
    for (n, kernel) in &entries {
        let inputs = workload(*n);
        group.bench_function(kernel.name(), |b| {
            b.iter(|| run_kernel(kernel, &inputs, &mut buf))
        });
    }
    group.finish();
}

fn bench_n5(c: &mut Criterion) {
    let mut group = c.benchmark_group("standalone_n5");
    let inputs = workload(5);
    let mut buf = Vec::new();
    let (m, p) = reference::enum_cmov5();
    let enum5 = Kernel::from_program("enum33", &m, p);
    let (m, p) = network_kernel(5, IsaMode::Cmov);
    let network5 = Kernel::from_program("network36", &m, p);
    let swap5 = Kernel::native(sortsynth_kernels::NativeSorter {
        name: "swap",
        n: 5,
        sort: baselines::swap5,
    });
    let std5 = Kernel::native(sortsynth_kernels::NativeSorter {
        name: "std",
        n: 5,
        sort: baselines::std_sort5,
    });
    for kernel in [&enum5, &network5, &swap5, &std5] {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| run_kernel(kernel, &inputs, &mut buf))
        });
    }
    group.finish();
}

fn bench_quicksort_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("quicksort_embedded_n3");
    group.sample_size(20);
    let inputs = sortsynth_kernels::embedded_inputs(8, 4096, 0xD1CE);
    let (m, p) = reference::paper_synth_cmov3();
    let enum3 = Kernel::from_program("enum", &m, p);
    let std3 = Kernel::native(
        baselines::native3()
            .into_iter()
            .find(|s| s.name == "std")
            .expect("std exists"),
    );
    let mut buf: Vec<i32> = Vec::new();
    for kernel in [&enum3, &std3] {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                for input in &inputs {
                    buf.clear();
                    buf.extend_from_slice(input);
                    quicksort_with(kernel, &mut buf);
                    std::hint::black_box(buf.first().copied());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_standalone_n3,
    bench_standalone_minmax,
    bench_n5,
    bench_quicksort_embedding
);
criterion_main!(benches);
