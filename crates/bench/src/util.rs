//! Shared harness utilities: configuration, timing, table rendering, and
//! CSV output.

use std::fmt::Display;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Harness configuration, read from environment variables so every
/// experiment binary behaves uniformly:
///
/// * `SORTSYNTH_QUICK=1` — shrink budgets for smoke testing,
/// * `SORTSYNTH_FULL=1` — run the multi-hour variants (n = 4 exhaustions,
///   large cut sweeps),
/// * `SORTSYNTH_N5=1` — include the n = 5 synthesis runs (minutes to hours
///   on one core),
/// * `SORTSYNTH_BUDGET_SECS` — per-solver timeout for the baseline tables
///   (default 60),
/// * `SORTSYNTH_OUT` — output directory for CSV artifacts (default
///   `EXPERIMENTS-results/`).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Smoke-test mode.
    pub quick: bool,
    /// Multi-hour mode.
    pub full: bool,
    /// Include n = 5 synthesis.
    pub n5: bool,
    /// Solver timeout per table row.
    pub budget: Duration,
    /// CSV output directory.
    pub out_dir: PathBuf,
}

impl BenchConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let flag = |name: &str| std::env::var(name).map(|v| v == "1").unwrap_or(false);
        let budget_secs = std::env::var("SORTSYNTH_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(60u64);
        let out_dir = std::env::var("SORTSYNTH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("EXPERIMENTS-results"));
        BenchConfig {
            quick: flag("SORTSYNTH_QUICK"),
            full: flag("SORTSYNTH_FULL"),
            n5: flag("SORTSYNTH_N5"),
            budget: Duration::from_secs(budget_secs),
            out_dir,
        }
    }

    /// The directory CSV artifacts go to (created on demand).
    pub fn ensure_out_dir(&self) -> &Path {
        fs::create_dir_all(&self.out_dir).expect("create output directory");
        &self.out_dir
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Human-friendly duration, paper-style (`97.0 ms`, `2.44 s`, `11.0 min`),
/// with microsecond resolution below a millisecond.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies every cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a row of pre-rendered strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:<w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        fs::write(path, out).expect("write CSV artifact");
        println!("  -> wrote {}", path.display());
    }

    /// Renders the rows as a JSON array of objects keyed by header. Cells
    /// that parse as numbers are emitted bare; everything else is quoted.
    pub fn rows_json(&self) -> String {
        let mut out = String::from("[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            for (c, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(header));
                out.push(':');
                // Integers and plain floats pass through as JSON numbers;
                // annotated cells ("97.0 ms") stay strings.
                if cell.parse::<f64>().is_ok() {
                    out.push_str(cell);
                } else {
                    out.push_str(&json_string(cell));
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// A JSON string literal with the mandatory escapes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes `BENCH_<name>.json` at the repository root (the stable artifact
/// location CI uploads from), with `body` as the document.
pub fn write_bench_json(name: &str, body: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join(format!("BENCH_{name}.json"));
    fs::write(&path, body).expect("write BENCH json artifact");
    println!("  -> wrote {}", path.display());
}

/// Peak resident-set size of this process so far, in kilobytes, from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs.
/// Monotone over the process lifetime, so per-phase readings are cumulative
/// peaks — order the big workloads last.
pub fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Benchmarks a sorting routine over a workload: total wall-clock for
/// `iters` passes over all inputs (each pass copies the input first, like
/// the paper's Google-benchmark loops).
pub fn bench_sort(inputs: &[Vec<i32>], iters: usize, mut sort: impl FnMut(&mut [i32])) -> Duration {
    let mut buf: Vec<i32> = Vec::with_capacity(inputs.iter().map(Vec::len).max().unwrap_or(0));
    let start = Instant::now();
    for _ in 0..iters {
        for input in inputs {
            buf.clear();
            buf.extend_from_slice(input);
            sort(&mut buf);
            std::hint::black_box(buf.first().copied());
        }
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(530)), "530.0 us");
        assert_eq!(fmt_duration(Duration::from_micros(1530)), "1.53 ms");
        assert_eq!(fmt_duration(Duration::from_micros(97)), "97.0 us");
        assert_eq!(fmt_duration(Duration::from_millis(97)), "97.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.443)), "2.44 s");
        assert_eq!(fmt_duration(Duration::from_secs(660)), "11.0 min");
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1, &"x,y"]);
        t.row_strings(vec!["2".into(), "plain".into()]);
        let dir = std::env::temp_dir().join("sortsynth-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        t.write_csv(&path);
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n2,plain\n");
    }

    #[test]
    fn bench_sort_runs_the_workload() {
        let inputs = vec![vec![3, 1, 2], vec![2, 2, 1]];
        let mut calls = 0usize;
        let _ = bench_sort(&inputs, 3, |d| {
            d.sort_unstable();
            calls += 1;
        });
        assert_eq!(calls, 6);
    }
}
