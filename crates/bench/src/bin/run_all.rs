//! Runs every experiment in sequence and writes all CSV artifacts.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::run_all(&cfg);
}
