//! E3: Figure 2 — t-SNE of the n = 3 solution space per cut factor.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::fig2::run(&cfg);
}
