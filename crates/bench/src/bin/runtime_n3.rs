//! E11: §5.3 standalone kernel runtime, n = 3.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::runtime::run_standalone_n3(&cfg);
}
