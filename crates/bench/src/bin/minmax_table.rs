//! E16: §5.4 min/max kernel table.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::minmax::run(&cfg);
}
