//! E13: §5.3 kernel runtime, n = 4 (standalone + quicksort).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::runtime::run_n4(&cfg);
}
