//! Observability overhead benchmark: profiler and flight-recorder cost on
//! the headline synthesis. Emits `BENCH_obs_overhead.json`.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::obs_overhead::run(&cfg);
}
