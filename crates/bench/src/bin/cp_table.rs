//! E6: §5.2 CP back-end and goal-formulation tables.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::cp::run(&cfg);
}
