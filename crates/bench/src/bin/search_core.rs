//! Sequential search-core throughput benchmark: nodes/sec, interner and
//! arena counters, peak RSS. Emits `BENCH_search_core.json`.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::search_core::run(&cfg);
}
