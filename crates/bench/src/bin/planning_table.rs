//! E8: §5.2 planning table (Plan-Parallel × planners).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::planning::run(&cfg);
}
