//! Service load generator: cold-cache / warm-cache / duplicate-storm
//! throughput and tail-latency benchmark for the synthesis server.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::service_load::run(&cfg);
}
