//! Memory-scale accounting: u64 vs u128 closed-set bytes/state, spill-tier
//! throughput under budget, spill-disabled headline nodes/sec. Emits
//! `BENCH_memory_scale.json`.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::memory_scale::run(&cfg);
}
