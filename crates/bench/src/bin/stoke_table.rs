//! E7: §5.2 stochastic-search (STOKE) table.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::stoke_table::run(&cfg);
}
