//! E12: §5.3 quicksort/mergesort-embedded runtime, n = 3.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::runtime::run_embedded_n3(&cfg);
}
