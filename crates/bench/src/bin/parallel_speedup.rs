//! Parallel search speedup benchmark: sharded engine vs sequential at
//! 1/2/4/8 threads on the n = 3/4 headline syntheses, with cost equality
//! asserted. Emits `BENCH_parallel_speedup.json`.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::parallel_speedup::run(&cfg);
}
