//! E-V: static-verification cost by strategy (network certificate vs 0-1
//! run vs exhaustive permutations), plus DCE-reducibility of minimal
//! kernels.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::verify_cost::run(&cfg);
}
