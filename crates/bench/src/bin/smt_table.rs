//! E5: §5.2 SMT table (SMT-Perm, SMT-CEGIS variants).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::smt::run(&cfg);
}
