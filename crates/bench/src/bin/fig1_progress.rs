//! E2: Figure 1 — open states and solutions over time (n = 4, k = 1).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::fig1::run(&cfg);
}
