//! E4: §5.2 headline synthesis-time table (Enum vs AlphaDev).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::synthesis_time::run(&cfg);
}
