//! E14: §5.3 kernel runtime, n = 5 (requires SORTSYNTH_N5=1).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::runtime::run_n5(&cfg);
}
