//! E10: §5.2 cut-factor sweep.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::cut_sweep::run(&cfg);
}
