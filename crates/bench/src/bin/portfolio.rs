//! Portfolio race benchmark: every backend raced first-win on the small
//! kernel queries, then re-raced under the learned dispatch policy, with
//! the winner's length asserted against the sequential optimum. Emits
//! `BENCH_portfolio.json`.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::portfolio::run(&cfg);
}
