//! E9: §5.2 enumerative-approach ablation table.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::ablation::run(&cfg);
}
