//! E15: §5.3 kernel-length lower bounds.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::lower_bound::run(&cfg);
}
