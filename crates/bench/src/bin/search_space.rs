//! E1/E17: the §5.1 search-space structure table.
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::search_space::run(&cfg);
}
