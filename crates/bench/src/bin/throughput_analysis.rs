//! E18: static throughput prediction (uiCA-style pipeline model).
fn main() {
    let cfg = sortsynth_bench::util::BenchConfig::from_env();
    sortsynth_bench::experiments::throughput::run(&cfg);
}
