//! E15 — §5.3: optimality certification by exhaustive lower-bound proofs.
//!
//! Proves the n = 2 optimum (4) and the n = 3 optimum (11) outright; the
//! n = 4 length-19 exhaustion (the paper's new bound, two weeks of compute)
//! runs with a node budget by default and completely under
//! `SORTSYNTH_FULL=1`.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{prove_no_solution, BoundVerdict};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E15 (§5.3): kernel-length lower bounds ==");
    let mut table = Table::new(&["machine", "bound", "verdict", "time", "states generated"]);

    let mut prove = |label: &str, machine: Machine, bound: u32, node_limit: Option<u64>| {
        let (result, elapsed) = time(|| prove_no_solution(&machine, bound, node_limit, None));
        let verdict = match result.verdict {
            BoundVerdict::NoSolution => "no kernel (bound proven)",
            BoundVerdict::SolutionExists => "kernel exists (bound refuted)",
            BoundVerdict::Inconclusive => "inconclusive (budget)",
        };
        table.row_strings(vec![
            label.into(),
            bound.to_string(),
            verdict.into(),
            fmt_duration(elapsed),
            result.stats.generated.to_string(),
        ]);
        result.verdict
    };

    // n = 2: optimum 4.
    assert_eq!(
        prove("n = 2, cmov", Machine::new(2, 1, IsaMode::Cmov), 3, None),
        BoundVerdict::NoSolution
    );
    // n = 3: optimum 11 — the claim AlphaDev took 3 days to check.
    if !cfg.quick {
        assert_eq!(
            prove("n = 3, cmov", Machine::new(3, 1, IsaMode::Cmov), 10, None),
            BoundVerdict::NoSolution
        );
        // min/max optima: 8 (n = 3).
        assert_eq!(
            prove(
                "n = 3, min/max",
                Machine::new(3, 1, IsaMode::MinMax),
                7,
                None
            ),
            BoundVerdict::NoSolution
        );
    }
    // n = 4: the paper's new length-20 bound, via exhausting length 19
    // (two weeks on their machine). Budgeted by default.
    let n4_budget = if cfg.full { None } else { Some(50_000_000) };
    let verdict = prove(
        "n = 4, cmov (paper: 2 weeks)",
        Machine::new(4, 1, IsaMode::Cmov),
        19,
        n4_budget,
    );
    if !cfg.full && verdict == BoundVerdict::Inconclusive {
        println!("(n = 4 length-19 exhaustion needs SORTSYNTH_FULL=1 and a lot of patience)");
    }

    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e15_lower_bounds.csv"));
}
