//! E3 — Figure 2: t-SNE visualization of the n = 3 solution space under
//! different cut factors.
//!
//! Solutions are featurized as one-hot instruction matrices (step × action),
//! embedded with exact t-SNE, and written as CSV point clouds tagged by the
//! smallest cut factor that still retains the solution (the paper colors
//! k = ∞ / 2 / 1.5 / 1 in blue/orange/green/red).

use std::collections::HashSet;

use sortsynth_isa::{IsaMode, Machine, Program};
use sortsynth_search::{synthesize, Cut, SynthesisConfig};
use sortsynth_tsne::{Tsne, TsneConfig};

use crate::util::{time, BenchConfig, Table};

fn all_solutions(machine: &Machine, cut: Option<Cut>) -> Vec<Program> {
    let mut cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .all_solutions(true)
        .max_len(11);
    if let Some(c) = cut {
        cfg = cfg.cut(c);
    }
    synthesize(&cfg).dag.programs(usize::MAX)
}

/// One-hot featurization: `len × |actions|` indicator matrix, flattened.
fn featurize(machine: &Machine, prog: &Program) -> Vec<f64> {
    let actions = machine.actions();
    let mut features = vec![0.0f64; prog.len() * actions.len()];
    for (t, instr) in prog.iter().enumerate() {
        let a = actions
            .iter()
            .position(|x| x == instr)
            .expect("solutions use canonical actions");
        features[t * actions.len() + a] = 1.0;
    }
    features
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E3 (Figure 2): t-SNE of the n = 3 solution space ==");
    let machine = Machine::new(3, 1, IsaMode::Cmov);

    let (full, t_full) = time(|| all_solutions(&machine, None));
    let (k15, _) = time(|| all_solutions(&machine, Some(Cut::Factor(1.5))));
    let (k1, _) = time(|| all_solutions(&machine, Some(Cut::Factor(1.0))));
    let (k2, _) = time(|| all_solutions(&machine, Some(Cut::Factor(2.0))));
    println!(
        "solutions: no cut {} ({} to enumerate), k=2 {}, k=1.5 {}, k=1 {}",
        full.len(),
        crate::util::fmt_duration(t_full),
        k2.len(),
        k15.len(),
        k1.len()
    );

    let set15: HashSet<&Program> = k15.iter().collect();
    let set1: HashSet<&Program> = k1.iter().collect();
    let set2: HashSet<&Program> = k2.iter().collect();

    // Exact t-SNE is O(N²); embed an evenly spaced sample in default mode
    // and everything in SORTSYNTH_FULL mode.
    let sample_cap = if cfg.full {
        full.len()
    } else if cfg.quick {
        200
    } else {
        1200
    };
    let step = (full.len().max(1)).div_ceil(sample_cap.max(1)).max(1);
    let sample: Vec<&Program> = full.iter().step_by(step).collect();
    println!(
        "embedding {} of {} solutions (O(N^2) exact t-SNE)",
        sample.len(),
        full.len()
    );

    let features: Vec<Vec<f64>> = sample.iter().map(|p| featurize(&machine, p)).collect();
    let tsne = Tsne::new(TsneConfig {
        perplexity: 50.0_f64.min(sample.len() as f64 / 4.0),
        iterations: if cfg.quick { 100 } else { 300 },
        learning_rate: 10.0,
        ..TsneConfig::default()
    });
    let (embedding, t_embed) = time(|| tsne.embed(&features));
    println!("t-SNE done in {}", crate::util::fmt_duration(t_embed));

    let mut table = Table::new(&["x", "y", "retained_by"]);
    for (point, prog) in embedding.iter().zip(&sample) {
        let tag = if set1.contains(*prog) {
            "k=1"
        } else if set15.contains(*prog) {
            "k=1.5"
        } else if set2.contains(*prog) {
            "k=2"
        } else {
            "no-cut-only"
        };
        table.row_strings(vec![
            format!("{:.4}", point[0]),
            format!("{:.4}", point[1]),
            tag.into(),
        ]);
    }
    table.write_csv(&cfg.ensure_out_dir().join("e03_fig2_tsne.csv"));
    println!("(paper: 5602 solutions, k=2 keeps all, k=1.5 keeps 838, k=1 keeps 222)");
}
