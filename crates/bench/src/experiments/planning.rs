//! E8 — §5.2's planning table: the Plan-Parallel encoding solved by the
//! workspace planners (BFS, GBFS, A* over goal-count / h_add / h_max).

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_plan::{
    encode_synthesis, encode_synthesis_seq, plan_to_program, seq_plan_program, solve,
    PlanHeuristic, PlanLimits, PlanOutcome, PlanStrategy,
};

use super::search_space::optimal_cmov_len;
use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E8 (§5.2): planning baselines (Plan-Parallel encoding) ==");
    let mut table = Table::new(&["planner", "n", "time", "result", "expanded"]);
    let limits = PlanLimits {
        max_nodes: Some(if cfg.quick { 200_000 } else { 20_000_000 }),
        timeout: Some(if cfg.quick {
            std::time::Duration::from_secs(5)
        } else {
            cfg.budget
        }),
        ..PlanLimits::default()
    };

    let max_n = if cfg.quick { 2 } else { 3 };
    for n in 2..=max_n {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let (problem, instrs, _) = encode_synthesis(&machine);
        let strategies: Vec<(&str, PlanStrategy)> = vec![
            ("Plan-Parallel, BFS (blind, optimal)", PlanStrategy::Bfs),
            (
                "Plan-Parallel, GBFS + goal-count",
                PlanStrategy::Gbfs(PlanHeuristic::GoalCount),
            ),
            (
                "Plan-Parallel, GBFS + h_add (LAMA-style)",
                PlanStrategy::Gbfs(PlanHeuristic::HAdd),
            ),
            (
                "Plan-Parallel, A* + h_max (admissible)",
                PlanStrategy::AStar(PlanHeuristic::HMax),
            ),
            (
                "Plan-Parallel, A* + h_add",
                PlanStrategy::AStar(PlanHeuristic::HAdd),
            ),
        ];
        for (name, strategy) in strategies {
            let (result, elapsed) = time(|| solve(&problem, strategy, limits.clone()));
            let cell = match result.outcome {
                PlanOutcome::Solved => {
                    let plan = result.plan.as_ref().expect("solved");
                    let prog = plan_to_program(plan, &instrs);
                    debug_assert!(machine.is_correct(&prog));
                    format!("plan of {} instrs", plan.len())
                }
                PlanOutcome::Unsolvable => "unsolvable".into(),
                PlanOutcome::Budget => "— (budget)".into(),
            };
            table.row_strings(vec![
                name.into(),
                n.to_string(),
                fmt_duration(elapsed),
                cell,
                result.expanded.to_string(),
            ]);
        }

        // The linearized Plan-Seq formulation (the variant LAMA handled
        // best in the paper), driven by the h_add-guided planner.
        let len = optimal_cmov_len(n);
        let (seq_problem, seq_instrs, seq_layout) = encode_synthesis_seq(&machine, len);
        let (result, elapsed) = time(|| {
            solve(
                &seq_problem,
                PlanStrategy::Gbfs(PlanHeuristic::HAdd),
                limits.clone(),
            )
        });
        let cell = match result.outcome {
            PlanOutcome::Solved => {
                let plan = result.plan.as_ref().expect("solved");
                let prog = seq_plan_program(plan, &seq_problem, &seq_instrs, &seq_layout);
                debug_assert!(machine.is_correct(&prog));
                format!("kernel of {} instrs", prog.len())
            }
            PlanOutcome::Unsolvable => "unsolvable".into(),
            PlanOutcome::Budget => "— (budget)".into(),
        };
        table.row_strings(vec![
            "Plan-Seq, GBFS + h_add".into(),
            n.to_string(),
            fmt_duration(elapsed),
            cell,
            result.expanded.to_string(),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e08_planning_table.csv"));
    println!("(paper, n = 3: LAMA 3.5 s, CPDDL 398 s, Scorpion 679 s, fast-downward —;");
    println!(" no planner scaled to n = 4)");
}
