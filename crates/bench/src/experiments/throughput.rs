//! E18 (artifact step) — static throughput prediction of all kernels with
//! the uiCA-style pipeline model, mirroring the artifact's "predict the
//! throughput of the kernels using LLVM MCA and uiCA" stage and §5.4's
//! dependence-structure analysis.

use sortsynth_isa::{analyze, IsaMode, Machine, Program, ThroughputModel};
use sortsynth_kernels::{network_kernel, reference};

use crate::util::{BenchConfig, Table};

fn row(table: &mut Table, name: &str, machine: &Machine, prog: &Program) {
    let report = analyze(prog, &ThroughputModel::default());
    let _ = machine;
    table.row_strings(vec![
        name.into(),
        prog.len().to_string(),
        format!("{:.2}", report.cycles_per_iteration),
        report.critical_path.to_string(),
        format!("{:.2}", report.port_bound),
        format!("{:.2}", report.issue_bound),
        if report.latency_bound {
            "latency"
        } else {
            "ports/width"
        }
        .into(),
    ]);
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E18 (artifact): predicted kernel throughput (uiCA-style model) ==");
    let mut table = Table::new(&[
        "kernel",
        "instrs",
        "cycles/iter",
        "crit path",
        "port bound",
        "issue bound",
        "limited by",
    ]);

    let (m, p) = reference::paper_synth_cmov3();
    row(&mut table, "cmov3 synthesized", &m, &p);
    let (m, p) = reference::enum_worst_cmov3();
    row(&mut table, "cmov3 enum_worst", &m, &p);
    let (m, p) = network_kernel(3, IsaMode::Cmov);
    row(&mut table, "cmov3 network", &m, &p);

    let (m, p) = reference::paper_synth_minmax3();
    row(&mut table, "minmax3 synthesized", &m, &p);
    let (m, p) = network_kernel(3, IsaMode::MinMax);
    row(&mut table, "minmax3 network", &m, &p);

    let (m, p) = reference::enum_minmax4();
    row(&mut table, "minmax4 synthesized", &m, &p);
    let (m, p) = network_kernel(4, IsaMode::MinMax);
    row(&mut table, "minmax4 network", &m, &p);

    let (m, p) = reference::enum_cmov5();
    row(&mut table, "cmov5 synthesized (33)", &m, &p);
    let (m, p) = network_kernel(5, IsaMode::Cmov);
    row(&mut table, "cmov5 network (36)", &m, &p);

    let (m, p) = reference::enum_minmax5();
    row(&mut table, "minmax5 synthesized (23)", &m, &p);
    let (m, p) = network_kernel(5, IsaMode::MinMax);
    row(&mut table, "minmax5 network (27)", &m, &p);

    let (m, p) = reference::enum_minmax6();
    row(&mut table, "minmax6 synthesized (34)", &m, &p);
    let (m, p) = network_kernel(6, IsaMode::MinMax);
    row(&mut table, "minmax6 network (36)", &m, &p);

    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e18_throughput.csv"));
    println!("(§5.4's claim: synthesized kernels have shorter dependence chains than the");
    println!(" network instantiations, so their predicted cycles/iteration is lower)");
}
