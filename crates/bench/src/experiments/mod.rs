//! One module per paper artifact; see DESIGN.md's experiment index for the
//! table/figure ↔ module mapping.

pub mod ablation;
pub mod cp;
pub mod cut_sweep;
pub mod fig1;
pub mod fig2;
pub mod lower_bound;
pub mod memory_scale;
pub mod minmax;
pub mod obs_overhead;
pub mod parallel_speedup;
pub mod planning;
pub mod portfolio;
pub mod runtime;
pub mod search_core;
pub mod search_space;
pub mod service_load;
pub mod smt;
pub mod stoke_table;
pub mod synthesis_time;
pub mod throughput;
pub mod verify_cost;

use crate::util::BenchConfig;

/// Runs every experiment in sequence (the `run_all` binary).
pub fn run_all(cfg: &BenchConfig) {
    search_space::run(cfg);
    println!();
    synthesis_time::run(cfg);
    println!();
    ablation::run(cfg);
    println!();
    cut_sweep::run(cfg);
    println!();
    fig1::run(cfg);
    println!();
    fig2::run(cfg);
    println!();
    smt::run(cfg);
    println!();
    cp::run(cfg);
    println!();
    stoke_table::run(cfg);
    println!();
    planning::run(cfg);
    println!();
    runtime::run_standalone_n3(cfg);
    println!();
    runtime::run_embedded_n3(cfg);
    println!();
    runtime::run_n4(cfg);
    println!();
    runtime::run_n5(cfg);
    println!();
    minmax::run(cfg);
    println!();
    parallel_speedup::run(cfg);
    println!();
    portfolio::run(cfg);
    println!();
    search_core::run(cfg);
    println!();
    memory_scale::run(cfg);
    println!();
    obs_overhead::run(cfg);
    println!();
    throughput::run(cfg);
    println!();
    verify_cost::run(cfg);
    println!();
    lower_bound::run(cfg);
}
