//! Memory-scale accounting for the external-memory search tier: closed-set
//! bytes per state under the narrowed u64 key vs the u128 baseline, the
//! frontier sustained under the 256 MiB reference budget (with the spill
//! tier forced on to measure its throughput), and the spill-disabled
//! headline nodes/sec. Emits `BENCH_memory_scale.json`.
//!
//! The thesis of the memory work: n = 5 is capacity-bound, not CPU-bound,
//! so every row here is a bytes-per-state or bytes-on-disk number — and the
//! last row proves the capacity levers cost nothing when they are off.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, KeyWidth, SynthesisConfig};

use crate::util::{fmt_duration, peak_rss_kb, time, write_bench_json, BenchConfig, Table};

use super::search_core;

/// The committed pre-spill headline (n = 4 cmp/cmov, sequential best
/// config) from `BENCH_search_core.json` on the reference container. The
/// memory tier must not tax the resident hot loop: with no budget set, the
/// headline row below must stay within [`HEADLINE_TOLERANCE`] of this.
pub const HEADLINE_N4_CMOV_NODES_PER_SEC: f64 = 619_981.0;

/// Acceptable headline slack (fraction of the reference), enforced only
/// under `SORTSYNTH_ENFORCE_BASELINE=1` on the reference container.
pub const HEADLINE_TOLERANCE: f64 = 0.05;

/// The reference memory budget the acceptance criterion is phrased
/// against: the largest frontier of the run set must be sustained with the
/// search's resident estimate at or below this.
pub const REFERENCE_BUDGET_BYTES: u64 = 256 << 20;

/// Minimum closed-set bytes-per-state reduction the u64 key must deliver
/// against the u128 baseline (the key store halves exactly; 1.8 leaves
/// room for per-row rounding on tiny runs).
pub const MIN_KEY_REDUCTION: f64 = 1.8;

/// Closed-set key bytes per interned state for one (machine, width) run.
fn bytes_per_state(machine: &Machine, width: KeyWidth) -> (u64, u64, f64) {
    let result = synthesize(&SynthesisConfig::best(machine.clone()).key_width(width));
    assert!(
        result.found_len.is_some(),
        "n={} {:?} @ {width:?}: no kernel found",
        machine.n(),
        machine.mode()
    );
    let states = result.stats.interned_states.max(1);
    let bytes = result.stats.key_bytes;
    (bytes, states, bytes as f64 / states as f64)
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== memory-scale search (u64 keys, spill tier, headline tax) ==");

    // ---- spill-disabled headline ---------------------------------------
    // Measured first, before the experiment's own workloads fragment the
    // heap: the capacity levers must be free when off — best config, no
    // budget, default (u64) keys, the production path after this change.
    let (headline_isa, headline_machine, reference) = if cfg.quick {
        (
            "cmov",
            Machine::new(3, 1, IsaMode::Cmov),
            search_core::PRECHANGE_N3_CMOV_NODES_PER_SEC,
        )
    } else {
        (
            "cmov",
            Machine::new(4, 1, IsaMode::Cmov),
            HEADLINE_N4_CMOV_NODES_PER_SEC,
        )
    };
    // Best-of-5, both key widths interleaved: the absolute reference was
    // recorded on a differently loaded container, so the load-proof form
    // of the "no tax" claim is the same-process u64 : u128 ratio — the
    // u128 rows are exactly the pre-PR configuration.
    let iters = if cfg.quick { 1 } else { 5 };
    let mut best: Option<(f64, std::time::Duration)> = None;
    let mut best_wide: Option<(f64, std::time::Duration)> = None;
    for _ in 0..iters {
        for width in [KeyWidth::U64, KeyWidth::U128] {
            let run_cfg = SynthesisConfig::best(headline_machine.clone()).key_width(width);
            let (result, elapsed) = time(|| synthesize(&run_cfg));
            assert!(result.found_len.is_some(), "headline run found no kernel");
            let nps = result.stats.expanded as f64 / elapsed.as_secs_f64().max(1e-9);
            let slot = if width == KeyWidth::U64 {
                &mut best
            } else {
                &mut best_wide
            };
            if slot.as_ref().is_none_or(|(_, t)| elapsed < *t) {
                *slot = Some((nps, elapsed));
            }
        }
    }
    let (nps, elapsed) = best.expect("at least one headline run");
    let (nps_wide, _) = best_wide.expect("at least one u128 headline run");
    let ratio = nps / reference;
    let tax_ratio = nps / nps_wide.max(1e-9);
    let rss_kb = peak_rss_kb().unwrap_or(0);
    println!(
        "headline (spill disabled): n={} {headline_isa} {nps:.0} nodes/sec in {} \
         ({tax_ratio:.3}x the same-process u128 baseline of {nps_wide:.0}; \
         {ratio:.3}x the committed pre-spill reference, informational off the \
         reference container)",
        headline_machine.n(),
        fmt_duration(elapsed),
    );
    if std::env::var("SORTSYNTH_ENFORCE_BASELINE").as_deref() == Ok("1") && !cfg.quick {
        assert!(
            tax_ratio >= 1.0 - HEADLINE_TOLERANCE,
            "u64 headline fell to {tax_ratio:.3}x the same-process u128 baseline \
             (floor {:.2}x)",
            1.0 - HEADLINE_TOLERANCE
        );
        assert!(
            ratio >= 1.0 - HEADLINE_TOLERANCE,
            "spill-disabled headline fell to {ratio:.3}x the pre-spill reference \
             (floor {:.2}x)",
            1.0 - HEADLINE_TOLERANCE
        );
    }

    // ---- closed-set bytes per state, u64 vs u128 -----------------------
    let mut machines = vec![
        ("cmov", Machine::new(3, 1, IsaMode::Cmov)),
        ("minmax", Machine::new(3, 1, IsaMode::MinMax)),
    ];
    if !cfg.quick {
        machines.push(("minmax", Machine::new(4, 1, IsaMode::MinMax)));
        machines.push(("cmov", Machine::new(4, 1, IsaMode::Cmov)));
    }

    let mut table = Table::new(&[
        "isa",
        "n",
        "states",
        "u64 B/state",
        "u128 B/state",
        "reduction",
    ]);
    let mut key_rows = Vec::new();
    for (isa, machine) in &machines {
        let (b64, states, bps64) = bytes_per_state(machine, KeyWidth::U64);
        let (b128, _, bps128) = bytes_per_state(machine, KeyWidth::U128);
        let reduction = bps128 / bps64.max(1e-9);
        assert!(
            reduction >= MIN_KEY_REDUCTION,
            "n={} {isa}: u64 keys reduced closed-set bytes/state only {reduction:.2}x \
             (u64 {bps64:.1} B, u128 {bps128:.1} B; floor {MIN_KEY_REDUCTION}x)",
            machine.n()
        );
        table.row_strings(vec![
            (*isa).into(),
            machine.n().to_string(),
            states.to_string(),
            format!("{bps64:.1}"),
            format!("{bps128:.1}"),
            format!("{reduction:.2}x"),
        ]);
        key_rows.push(format!(
            "{{\"isa\":\"{isa}\",\"n\":{},\"interned_states\":{states},\
             \"key_bytes_u64\":{b64},\"key_bytes_u128\":{b128},\
             \"bytes_per_state_u64\":{bps64:.2},\"bytes_per_state_u128\":{bps128:.2},\
             \"reduction\":{reduction:.3}}}",
            machine.n()
        ));
    }
    table.print();

    // ---- spill tier under budget ---------------------------------------
    // The largest layered cell of the run set, first fully resident to
    // measure its footprint, then rerun with a budget far below it so the
    // tier demonstrably streams frontier and closed bytes to disk — while
    // staying within the 256 MiB reference budget. The divisor is steep
    // (64x) because merely arming the tier already compacts expanded spans
    // every layer, cutting residency ~10x before any byte hits disk; the
    // budget has to sit below the *compacted* peak to force spill I/O.
    let (spill_isa, spill_machine, spill_bound) = if cfg.quick {
        ("cmov", Machine::new(3, 1, IsaMode::Cmov), 11)
    } else {
        ("minmax", Machine::new(4, 1, IsaMode::MinMax), 15)
    };
    let layered = SynthesisConfig::new(spill_machine.clone())
        .budget_viability(true)
        .max_len(spill_bound);
    let (resident_run, resident_elapsed) = time(|| synthesize(&layered));
    let resident_footprint = resident_run.stats.resident_bytes.max(1);
    let budget = (resident_footprint / 64).max(64 << 10);
    let spill_dir = std::env::temp_dir().join(format!("ssbench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let (budgeted_run, budgeted_elapsed) = time(|| {
        synthesize(
            &layered
                .clone()
                .mem_budget_bytes(budget)
                .spill_dir(spill_dir.clone()),
        )
    });
    let _ = std::fs::remove_dir_all(&spill_dir);
    assert_eq!(
        resident_run.found_len, budgeted_run.found_len,
        "spill tier changed the optimal cost"
    );
    let spill = &budgeted_run.stats;
    assert!(
        spill.spilled_bytes > 0,
        "budget ({budget} B) did not engage the spill tier"
    );
    assert!(
        spill.resident_bytes <= REFERENCE_BUDGET_BYTES,
        "budgeted run's resident estimate ({} B) exceeds the 256 MiB reference budget",
        spill.resident_bytes
    );
    let spill_mb_per_sec =
        spill.spilled_bytes as f64 / 1e6 / budgeted_elapsed.as_secs_f64().max(1e-9);
    println!(
        "spill: n={} {spill_isa} resident {} KiB resident-only ({}), \
         budget {} KiB -> resident {} KiB + {} KiB on disk in {} segment(s), \
         {} spilled spans, {} DDD dedups, {:.1} MB/s to disk ({})",
        spill_machine.n(),
        resident_footprint / 1024,
        fmt_duration(resident_elapsed),
        budget / 1024,
        spill.resident_bytes / 1024,
        spill.spilled_bytes / 1024,
        spill.spill_segments,
        spill.spilled_open,
        spill.ddd_dedup_hits,
        spill_mb_per_sec,
        fmt_duration(budgeted_elapsed),
    );
    let spill_json = format!(
        "{{\"isa\":\"{spill_isa}\",\"n\":{},\"bound\":{spill_bound},\
         \"resident_footprint_bytes\":{resident_footprint},\
         \"budget_bytes\":{budget},\"reference_budget_bytes\":{REFERENCE_BUDGET_BYTES},\
         \"budgeted_resident_bytes\":{},\"spilled_bytes\":{},\"spill_segments\":{},\
         \"spilled_open\":{},\"spilled_closed\":{},\"ddd_dedup_hits\":{},\
         \"states_kept\":{},\"spill_mb_per_sec\":{spill_mb_per_sec:.2},\
         \"millis\":{:.3}}}",
        spill_machine.n(),
        spill.resident_bytes,
        spill.spilled_bytes,
        spill.spill_segments,
        spill.spilled_open,
        spill.spilled_closed,
        spill.ddd_dedup_hits,
        spill.states_kept,
        budgeted_elapsed.as_secs_f64() * 1e3,
    );

    table.write_csv(&cfg.ensure_out_dir().join("memory_scale.csv"));
    write_bench_json(
        "memory_scale",
        &format!(
            "{{\"experiment\":\"memory_scale\",\"quick\":{},\
             \"min_key_reduction\":{MIN_KEY_REDUCTION},\
             \"key_rows\":[{}],\"spill\":{spill_json},\
             \"headline\":{{\"isa\":\"{headline_isa}\",\"n\":{},\
             \"nodes_per_sec\":{nps:.1},\"u128_nodes_per_sec\":{nps_wide:.1},\
             \"tax_ratio\":{tax_ratio:.4},\
             \"reference_nodes_per_sec\":{reference:.1},\
             \"ratio\":{ratio:.4},\"tolerance\":{HEADLINE_TOLERANCE},\
             \"peak_rss_kb\":{rss_kb}}}}}\n",
            cfg.quick,
            key_rows.join(","),
            headline_machine.n(),
        ),
    );
}
