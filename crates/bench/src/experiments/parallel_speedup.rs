//! Parallel search speedup: wall-clock of the sharded HDA*-style engine
//! against the sequential engine on the paper's headline syntheses
//! (n = 3/4, both ISA modes), at 1/2/4/8 threads.
//!
//! Every parallel run is asserted to find the *same optimal cost* as the
//! sequential run — the engine may only change how fast the answer
//! arrives, never what it is. The ≥2× speedup check on the n = 4 cmp/cmov
//! row is active only when the host actually has ≥4 cores
//! (`available_parallelism`); the emitted JSON records the core count so
//! artifacts from small CI containers are interpretable.

use std::time::Duration;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, SynthesisConfig};

use crate::util::{fmt_duration, time, write_bench_json, BenchConfig, Table};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Best wall-clock over `iters` runs (first-run noise from allocator and
/// cache warmup is real on these sub-second searches).
fn best_time(iters: usize, cfg: &SynthesisConfig) -> (Option<u32>, Duration) {
    let mut best: Option<(Option<u32>, Duration)> = None;
    for _ in 0..iters {
        let (result, elapsed) = time(|| synthesize(cfg));
        if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
            best = Some((result.found_len, elapsed));
        }
    }
    best.expect("at least one iteration")
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== parallel search speedup (sharded engine vs sequential) ==");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let iters = if cfg.quick { 1 } else { 3 };
    println!("host cores: {cores}; best of {iters} runs per cell");

    let machines = [
        ("cmov", Machine::new(3, 1, IsaMode::Cmov)),
        ("minmax", Machine::new(3, 1, IsaMode::MinMax)),
        ("cmov", Machine::new(4, 1, IsaMode::Cmov)),
        ("minmax", Machine::new(4, 1, IsaMode::MinMax)),
    ];

    let mut table = Table::new(&["isa", "n", "threads", "time", "len", "speedup"]);
    let mut json_rows = Vec::new();
    let mut n4_cmov_speedup_at_4 = None;

    for (isa, machine) in machines {
        let base = SynthesisConfig::best(machine.clone());
        let mut sequential: Option<(u32, Duration)> = None;
        for threads in THREAD_COUNTS {
            let (len, elapsed) = best_time(iters, &base.clone().threads(threads));
            let len = len.unwrap_or_else(|| {
                panic!("n={} {isa}: no kernel at {threads} threads", machine.n())
            });
            let speedup = match &sequential {
                None => {
                    sequential = Some((len, elapsed));
                    1.0
                }
                Some((seq_len, seq_time)) => {
                    assert_eq!(
                        len,
                        *seq_len,
                        "n={} {isa}: {threads}-thread cost diverged from sequential",
                        machine.n()
                    );
                    seq_time.as_secs_f64() / elapsed.as_secs_f64()
                }
            };
            if machine.n() == 4 && isa == "cmov" && threads == 4 {
                n4_cmov_speedup_at_4 = Some(speedup);
            }
            table.row_strings(vec![
                isa.into(),
                machine.n().to_string(),
                threads.to_string(),
                fmt_duration(elapsed),
                len.to_string(),
                format!("{speedup:.2}x"),
            ]);
            json_rows.push(format!(
                "{{\"isa\":\"{isa}\",\"n\":{},\"threads\":{threads},\
                 \"millis\":{:.3},\"len\":{len},\"speedup\":{speedup:.3}}}",
                machine.n(),
                elapsed.as_secs_f64() * 1e3,
            ));
        }
    }

    table.print();
    let headline = n4_cmov_speedup_at_4.expect("n4 cmov row ran");
    if cores >= 4 {
        assert!(
            headline >= 2.0,
            "expected >=2x speedup at 4 threads on n=4 cmov with {cores} cores, got {headline:.2}x"
        );
        println!("n=4 cmov speedup at 4 threads: {headline:.2}x (>=2x required, {cores} cores)");
    } else {
        println!(
            "n=4 cmov speedup at 4 threads: {headline:.2}x \
             (informational: only {cores} core(s) available, >=2x check skipped)"
        );
    }

    table.write_csv(&cfg.ensure_out_dir().join("parallel_speedup.csv"));
    write_bench_json(
        "parallel_speedup",
        &format!(
            "{{\"experiment\":\"parallel_speedup\",\"cores\":{cores},\
             \"iters\":{iters},\"rows\":[{}]}}\n",
            json_rows.join(",")
        ),
    );
}
