//! E5 — §5.2's SMT table: SMT-Perm and the two SMT-CEGIS variants.
//!
//! Rows run at the known optimal length for each n; entries that exceed the
//! budget print "—", mirroring the paper's timeouts. (SyGuS/MetaLift have no
//! open equivalent in this workspace; they failed for every n in the paper.)

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_solvers::{smt_cegis, smt_perm, Budget, CegisDomain, EncodeOptions, SynthOutcome};

use crate::util::{fmt_duration, BenchConfig, Table};

use super::search_space::optimal_cmov_len;

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E5 (§5.2): SMT-based techniques ==");
    let budget = Budget::with_timeout(if cfg.quick {
        std::time::Duration::from_secs(5)
    } else {
        cfg.budget
    });
    let mut table = Table::new(&["approach", "n", "time", "result"]);

    let max_n = if cfg.quick { 2 } else { 3 };
    for n in 2..=max_n {
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let len = optimal_cmov_len(n);

        let (outcome, stats) = smt_perm(&machine, len, EncodeOptions::default(), budget.clone());
        push_row(&mut table, "SMT-Perm", n, &stats.elapsed, &outcome);

        let (outcome, stats) = smt_cegis(
            &machine,
            len,
            CegisDomain::Arbitrary,
            EncodeOptions::default(),
            budget.clone(),
        );
        push_row(
            &mut table,
            "SMT-CEGIS (arbitrary inputs)",
            n,
            &stats.elapsed,
            &outcome,
        );

        let (outcome, stats) = smt_cegis(
            &machine,
            len,
            CegisDomain::Permutations,
            EncodeOptions::default(),
            budget.clone(),
        );
        push_row(
            &mut table,
            "SMT-CEGIS (inputs in 1..n)",
            n,
            &stats.elapsed,
            &outcome,
        );
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e05_smt_table.csv"));
    println!("(paper, n = 3 with z3: Perm 44 min, CEGIS arbitrary 97 min, CEGIS 1..n 25 min;");
    println!(" n = 4: every SMT variant timed out after a week — run with a larger");
    println!(" SORTSYNTH_BUDGET_SECS to watch ours do the same)");
}

fn push_row(
    table: &mut Table,
    name: &str,
    n: u8,
    elapsed: &std::time::Duration,
    outcome: &SynthOutcome,
) {
    let result = match outcome {
        SynthOutcome::Found(p) => format!("found ({} instrs)", p.len()),
        SynthOutcome::NoProgram => "no program".into(),
        SynthOutcome::Budget => "— (budget)".into(),
    };
    table.row_strings(vec![
        name.into(),
        n.to_string(),
        fmt_duration(*elapsed),
        result,
    ]);
}
