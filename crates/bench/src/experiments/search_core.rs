//! Search-core throughput: nodes expanded per second by the *sequential*
//! engine on the headline syntheses, plus the memory-layout counters of the
//! arena-backed core (interned states, arena bytes). Emits
//! `BENCH_search_core.json` with a delta against the pre-rework engine.
//!
//! Unlike `parallel_speedup` (which measures scaling across threads), this
//! experiment pins the single-thread hot loop: nodes/sec is the paper's
//! product (§3 — enumerative A\* wins by engineering the inner loop), so
//! regressions here are regressions in the headline result.

use std::time::Duration;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, SearchStats, SynthesisConfig};

use crate::util::{fmt_duration, peak_rss_kb, time, write_bench_json, BenchConfig, Table};

/// Single-thread nodes/sec of the pre-rework engine (per-successor `Vec` +
/// `Box` allocation, SipHash closed set, per-expansion `perm_count` sorts)
/// on this repository's 1-vCPU reference container, n = 4 cmp/cmov, best
/// config, best of 3. The committed `BENCH_search_core.json` records the
/// current engine's multiple of this number; on other hosts the printed
/// delta is informational (absolute throughput scales with the machine).
pub const PRECHANGE_N4_CMOV_NODES_PER_SEC: f64 = 116_659.0;

/// Same reference measurement for the n = 3 cmp/cmov row (the `perf-smoke`
/// CI job's quick-mode headline).
pub const PRECHANGE_N3_CMOV_NODES_PER_SEC: f64 = 439_268.0;

/// Single-thread nodes/sec immediately before the bucketed-open-list /
/// SWAR-batch-expansion rework (binary-heap open list, scalar per-state
/// stepping, post-step permutation counting), from that revision's
/// committed `BENCH_search_core.json` on the same reference container.
/// The second enforcement tier below pins the rework's own win.
pub const PREBUCKET_N4_CMOV_NODES_PER_SEC: f64 = 335_493.1;

/// Same pre-rework reference for the n = 3 cmp/cmov quick-mode row.
pub const PREBUCKET_N3_CMOV_NODES_PER_SEC: f64 = 849_437.8;

/// Minimum acceptable multiple over the pre-bucket reference when
/// `SORTSYNTH_ENFORCE_BASELINE=1`. Measured best-of-3 on the reference
/// container: 1.73-1.87x (n = 4 cmov, ~414-446 ms vs 772 ms); the gate
/// sits below the worst observed run to absorb the container's
/// run-to-run noise (±5% is routine) while still failing on any real
/// regression of the rework.
pub const MIN_PREBUCKET_MULTIPLE: f64 = 1.5;

/// Best run (by wall-clock) over `iters` synthesis runs.
fn best_run(iters: usize, cfg: &SynthesisConfig) -> (Option<u32>, SearchStats, Duration) {
    let mut best: Option<(Option<u32>, SearchStats, Duration)> = None;
    for _ in 0..iters {
        let (result, elapsed) = time(|| synthesize(cfg));
        if best.as_ref().is_none_or(|(_, _, t)| elapsed < *t) {
            best = Some((result.found_len, result.stats, elapsed));
        }
    }
    best.expect("at least one iteration")
}

fn nodes_per_sec(stats: &SearchStats, elapsed: Duration) -> f64 {
    // Expansion throughput over the whole run (table build included): the
    // end-to-end number a service request actually experiences.
    stats.expanded as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== search-core throughput (sequential engine hot loop) ==");
    let iters = if cfg.quick { 1 } else { 3 };
    println!("best of {iters} run(s) per row; threads = 1 throughout");

    // Small machines first: peak RSS readings are cumulative (VmHWM), so
    // the big n = 4 rows must come last to be attributable.
    let mut machines = vec![
        ("cmov", Machine::new(3, 1, IsaMode::Cmov)),
        ("minmax", Machine::new(3, 1, IsaMode::MinMax)),
    ];
    if !cfg.quick {
        machines.push(("minmax", Machine::new(4, 1, IsaMode::MinMax)));
        machines.push(("cmov", Machine::new(4, 1, IsaMode::Cmov)));
    }

    let mut table = Table::new(&[
        "isa",
        "n",
        "len",
        "time",
        "expanded",
        "nodes/sec",
        "interned",
        "arena",
        "peak rss",
    ]);
    let mut json_rows = Vec::new();
    let mut headline: Option<(f64, f64, f64)> = None;

    for (isa, machine) in machines {
        let synth_cfg = SynthesisConfig::best(machine.clone());
        let (len, stats, elapsed) = best_run(iters, &synth_cfg);
        let len = len.unwrap_or_else(|| panic!("n={} {isa}: no kernel found", machine.n()));
        let nps = nodes_per_sec(&stats, elapsed);
        let rss_kb = peak_rss_kb().unwrap_or(0);
        if isa == "cmov" && (machine.n() == 4 || (cfg.quick && machine.n() == 3)) {
            let (reference, prebucket) = if machine.n() == 4 {
                (
                    PRECHANGE_N4_CMOV_NODES_PER_SEC,
                    PREBUCKET_N4_CMOV_NODES_PER_SEC,
                )
            } else {
                (
                    PRECHANGE_N3_CMOV_NODES_PER_SEC,
                    PREBUCKET_N3_CMOV_NODES_PER_SEC,
                )
            };
            headline = Some((nps, nps / reference, nps / prebucket));
        }
        table.row_strings(vec![
            isa.into(),
            machine.n().to_string(),
            len.to_string(),
            fmt_duration(elapsed),
            stats.expanded.to_string(),
            format!("{nps:.0}"),
            stats.interned_states.to_string(),
            format!("{} KiB", stats.arena_bytes / 1024),
            format!("{rss_kb} kB"),
        ]);
        json_rows.push(format!(
            "{{\"isa\":\"{isa}\",\"n\":{},\"threads\":1,\"len\":{len},\
             \"millis\":{:.3},\"expanded\":{},\"generated\":{},\
             \"viability_pruned\":{},\"cut_pruned\":{},\"dedup_hits\":{},\
             \"nodes_per_sec\":{nps:.1},\"interned_states\":{},\
             \"arena_bytes\":{},\"scratch_reused\":{},\"peak_rss_kb\":{rss_kb}}}",
            machine.n(),
            elapsed.as_secs_f64() * 1e3,
            stats.expanded,
            stats.generated,
            stats.viability_pruned,
            stats.cut_pruned,
            stats.dedup_hits,
            stats.interned_states,
            stats.arena_bytes,
            stats.scratch_reused,
        ));
    }

    table.print();

    let (speedup_json, enforce, enforce_bucket) = match headline {
        Some((nps, multiple, bucket_multiple)) => {
            println!(
                "headline nodes/sec: {nps:.0} ({multiple:.2}x the committed pre-arena \
                 reference, {bucket_multiple:.2}x the pre-bucket-rework reference; \
                 informational off the reference container)"
            );
            (
                format!(
                    ",\"headline_nodes_per_sec\":{nps:.1},\
                     \"speedup_vs_prechange\":{multiple:.3},\
                     \"prechange_reference_nodes_per_sec\":{:.1},\
                     \"speedup_vs_prebucket\":{bucket_multiple:.3},\
                     \"prebucket_reference_nodes_per_sec\":{:.1}",
                    if cfg.quick {
                        PRECHANGE_N3_CMOV_NODES_PER_SEC
                    } else {
                        PRECHANGE_N4_CMOV_NODES_PER_SEC
                    },
                    if cfg.quick {
                        PREBUCKET_N3_CMOV_NODES_PER_SEC
                    } else {
                        PREBUCKET_N4_CMOV_NODES_PER_SEC
                    }
                ),
                multiple,
                bucket_multiple,
            )
        }
        None => (String::new(), f64::INFINITY, f64::INFINITY),
    };
    // The acceptance gates are asserted only where the reference numbers
    // are meaningful: the container that produced them (opt-in via env).
    // Two tiers: the arena rework's >=2x stands, and on top of it the
    // bucket/SWAR rework must keep its own measured win.
    if std::env::var("SORTSYNTH_ENFORCE_BASELINE").as_deref() == Ok("1") {
        assert!(
            enforce >= 2.0,
            "expected >=2x nodes/sec vs the pre-arena engine, got {enforce:.2}x"
        );
        // The bucket/SWAR win shows on the n = 4 row (the n = 3 quick row
        // finishes in ~5 ms, dominated by table build and timer noise),
        // so its tier is asserted in full mode only.
        assert!(
            cfg.quick || enforce_bucket >= MIN_PREBUCKET_MULTIPLE,
            "expected >={MIN_PREBUCKET_MULTIPLE}x nodes/sec vs the pre-bucket engine, \
             got {enforce_bucket:.2}x"
        );
    }

    table.write_csv(&cfg.ensure_out_dir().join("search_core.csv"));
    write_bench_json(
        "search_core",
        &format!(
            "{{\"experiment\":\"search_core\",\"quick\":{},\"iters\":{iters}{speedup_json},\
             \"rows\":[{}]}}\n",
            cfg.quick,
            json_rows.join(",")
        ),
    );
}
