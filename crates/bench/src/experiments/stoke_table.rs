//! E7 — §5.2's stochastic-search table: cold/warm STOKE with full and
//! random test suites.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_kernels::{network_to_cmov, optimal_network};
use sortsynth_search::SearchBudget;
use sortsynth_stoke::{run as stoke_run, Start, StokeConfig, TestSuite};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E7 (§5.2): stochastic search (STOKE-style), n = 3 ==");
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let network = network_to_cmov(&machine, &optimal_network(3));
    let iterations = if cfg.quick { 100_000 } else { 5_000_000 };

    let mut table = Table::new(&["approach", "iterations", "time", "best correct", "note"]);
    let rows: Vec<(&str, StokeConfig, &str)> = vec![
        (
            "Stoke-Cold",
            StokeConfig {
                machine: machine.clone(),
                start: Start::Cold { slots: 13 },
                iterations,
                beta: 1.0,
                seed: 1,
                tests: TestSuite::Full,
                minimize_length: true,
                budget: SearchBudget::unlimited(),
            },
            "permutation test suite",
        ),
        (
            "Stoke-Cold",
            StokeConfig {
                machine: machine.clone(),
                start: Start::Cold { slots: 13 },
                iterations,
                beta: 1.0,
                seed: 2,
                tests: TestSuite::RandomSubset(3),
                minimize_length: true,
                budget: SearchBudget::unlimited(),
            },
            "random test suite",
        ),
        (
            "Stoke-Warm",
            StokeConfig {
                machine: machine.clone(),
                start: Start::Warm {
                    prog: network.clone(),
                    extra_slots: 2,
                },
                iterations,
                beta: 2.0,
                seed: 3,
                tests: TestSuite::Full,
                minimize_length: true,
                budget: SearchBudget::unlimited(),
            },
            "sorting-network start (12 instrs; optimum is 11)",
        ),
    ];
    for (name, stoke_cfg, note) in rows {
        let (result, elapsed) = time(|| stoke_run(&stoke_cfg));
        let best = match &result.best_correct {
            Some(p) => format!("{} instrs", p.len()),
            None => "— (none found)".into(),
        };
        table.row_strings(vec![
            name.into(),
            stoke_cfg.iterations.to_string(),
            fmt_duration(elapsed),
            best,
            note.into(),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e07_stoke_table.csv"));
    println!("(paper: STOKE finds no correct n = 3 kernel cold, and warm-start never");
    println!(" reaches the optimal length — expect '—' or 12 instrs above)");
}
