//! E11–E14 — §5.3: kernel runtime benchmarks.
//!
//! Standalone (random length-n arrays, values in ±10000) and embedded
//! (kernels as the base case of quicksort/mergesort over arrays of random
//! length) comparisons between synthesized kernels, reconstructions of the
//! published contestants, and hand-written baselines. Kernels run as native
//! JIT-compiled machine code on x86-64.

use sortsynth_isa::{sampling_score, InstrMix, IsaMode, Machine, Program};
use sortsynth_kernels::{
    baselines, embedded_inputs, mergesort_with, network_to_cmov, optimal_network, quicksort_with,
    reference, standalone_inputs, Kernel,
};
use sortsynth_search::{sample_lowest_strata, score_strata, synthesize, Cut, SynthesisConfig};

use crate::util::{bench_sort, fmt_duration, BenchConfig, Table};

/// A contestant: a kernel plus its instruction mix (register instructions
/// only; the paper's tables additionally count the 2n memory movs of the
/// load/store frame).
struct Contestant {
    kernel: Kernel,
    mix: Option<InstrMix>,
}

fn program_contestant(name: &str, machine: &Machine, prog: Program) -> Contestant {
    let mix = InstrMix::of(&prog);
    Contestant {
        kernel: Kernel::from_program(name, machine, prog),
        mix: Some(mix),
    }
}

/// Enumerates every minimal n = 3 kernel and returns (best-scored, sampled,
/// worst-scored) according to the §5.3 sampling score.
fn enum_kernels_n3(sample: usize) -> (Program, Vec<Program>, Program) {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let all = synthesize(
        &SynthesisConfig::new(machine)
            .budget_viability(true)
            .all_solutions(true)
            .max_len(11),
    )
    .dag
    .programs(usize::MAX);
    let strata = score_strata(all.clone());
    let best = strata
        .values()
        .next()
        .and_then(|g| g.first())
        .expect("n = 3 solutions exist")
        .clone();
    let worst = strata
        .values()
        .last()
        .and_then(|g| g.last())
        .expect("n = 3 solutions exist")
        .clone();
    let sampled = sample_lowest_strata(all, 2, sample / 2);
    (best, sampled, worst)
}

fn contestants_n3(cfg: &BenchConfig) -> (Vec<Contestant>, Vec<Program>) {
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let (best, sampled, worst) = enum_kernels_n3(if cfg.quick { 20 } else { 200 });

    let mut list = Vec::new();
    list.push(program_contestant("enum", &machine, best));
    list.push(program_contestant("enum_worst", &machine, worst));
    let (m, p) = reference::paper_synth_cmov3();
    list.push(program_contestant("paper_synth", &m, p));
    let (m, p) = reference::alphadev_cmov3();
    list.push(program_contestant("alphadev", &m, p));
    list.push(program_contestant(
        "network",
        &machine,
        network_to_cmov(&machine, &optimal_network(3)),
    ));
    for sorter in baselines::native3() {
        list.push(Contestant {
            kernel: Kernel::native(sorter),
            mix: None,
        });
    }
    (list, sampled)
}

fn mix_cells(mix: &Option<InstrMix>) -> [String; 4] {
    match mix {
        Some(m) => [
            m.cmp.to_string(),
            m.mov.to_string(),
            m.cmov.to_string(),
            m.other.to_string(),
        ],
        None => ["·".into(), "·".into(), "·".into(), "·".into()],
    }
}

/// E11: standalone runtime, n = 3, with rank among the sampled enum
/// solution space.
pub fn run_standalone_n3(cfg: &BenchConfig) {
    println!("== E11 (§5.3): standalone kernel runtime, n = 3 ==");
    let machine = Machine::new(3, 1, IsaMode::Cmov);
    let (list, sampled) = contestants_n3(cfg);
    let inputs = standalone_inputs(3, 1000, 11);
    let iters = if cfg.quick { 50 } else { 4000 };

    // Measure the sampled solution space to compute ranks the way the paper
    // does (each contestant's position among all measured kernels).
    let mut population: Vec<(String, f64)> = Vec::new();
    for (i, prog) in sampled.iter().enumerate() {
        let kernel = Kernel::from_program(format!("enum#{i}"), &machine, prog.clone());
        let t = bench_sort(&inputs, iters, |d| kernel.sort(d));
        population.push((kernel.name().to_string(), t.as_secs_f64()));
    }

    let mut rows: Vec<(String, f64, Option<InstrMix>)> = Vec::new();
    for c in &list {
        let t = bench_sort(&inputs, iters, |d| c.kernel.sort(d));
        rows.push((c.kernel.name().to_string(), t.as_secs_f64(), c.mix));
        population.push((c.kernel.name().to_string(), t.as_secs_f64()));
    }
    population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
    let mut table = Table::new(&["algorithm", "time", "rank", "cmp", "mov", "cmov", "other"]);
    for (name, secs, mix) in &rows {
        let rank = population
            .iter()
            .position(|(n, _)| n == name)
            .expect("contestant measured")
            + 1;
        let [cmp, mov, cmov, other] = mix_cells(mix);
        table.row_strings(vec![
            name.clone(),
            fmt_duration(std::time::Duration::from_secs_f64(*secs)),
            format!("{rank}/{}", population.len()),
            cmp,
            mov,
            cmov,
            other,
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e11_runtime_n3_standalone.csv"));
    println!("(paper shape: enum best is rank 1, enum_worst near last, default/std far behind)");
}

/// E12: quicksort- and mergesort-embedded runtime, n = 3.
pub fn run_embedded_n3(cfg: &BenchConfig) {
    println!("== E12 (§5.3): embedded kernel runtime, n = 3 ==");
    let (list, _) = contestants_n3(cfg);
    let inputs = embedded_inputs(if cfg.quick { 10 } else { 60 }, 20_000, 13);
    let iters = if cfg.quick { 1 } else { 5 };

    for (label, file) in [
        ("quicksort", "e12_runtime_n3_quicksort.csv"),
        ("mergesort", "e12_runtime_n3_mergesort.csv"),
    ] {
        let mut rows: Vec<(String, f64)> = Vec::new();
        for c in &list {
            let t = bench_sort(&inputs, iters, |d| {
                if label == "quicksort" {
                    quicksort_with(&c.kernel, d)
                } else {
                    mergesort_with(&c.kernel, d)
                }
            });
            rows.push((c.kernel.name().to_string(), t.as_secs_f64()));
        }
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
        let mut table = Table::new(&["algorithm", &format!("time ({label})"), "rank"]);
        for (i, (name, secs)) in rows.iter().enumerate() {
            table.row_strings(vec![
                name.clone(),
                fmt_duration(std::time::Duration::from_secs_f64(*secs)),
                (i + 1).to_string(),
            ]);
        }
        table.print();
        table.write_csv(&cfg.ensure_out_dir().join(file));
        println!();
    }
    println!(
        "(paper shape: embedding compresses the gaps; cassioneri/enum lead, default/std trail)"
    );
}

/// E13: n = 4 standalone + quicksort, with score-stratified sampling of the
/// enumerated solution space.
pub fn run_n4(cfg: &BenchConfig) {
    println!("== E13 (§5.3): kernel runtime, n = 4 ==");
    let machine = Machine::new(4, 1, IsaMode::Cmov);

    // Enumerate minimal solutions under the k = 1 cut (the full space has
    // 2.2M programs; the cut subspace is what the paper samples from too).
    let enum_cfg = SynthesisConfig::new(machine.clone())
        .budget_viability(true)
        .optimal_instrs_only(true)
        .cut(Cut::Factor(1.0))
        .all_solutions(true)
        .max_len(20);
    let (result, t_enum) = crate::util::time(|| synthesize(&enum_cfg));
    let all = result.dag.programs(100_000);
    println!(
        "enumerated {} minimal n = 4 kernels (DAG count {}) in {}",
        all.len(),
        result.solution_count(),
        fmt_duration(t_enum)
    );
    let strata = score_strata(all.clone());
    let scores: Vec<u32> = strata.keys().copied().collect();
    println!("score strata: {scores:?} (paper: {{55, 58, 61, 64, 67, 70}})");

    let sample_n = if cfg.quick { 10 } else { 60 };
    let sampled = sample_lowest_strata(all.clone(), 2, sample_n / 2);
    let best = strata
        .values()
        .next()
        .and_then(|g| g.first())
        .expect("solutions")
        .clone();
    let worst = strata
        .values()
        .last()
        .and_then(|g| g.last())
        .expect("solutions")
        .clone();

    let mut list = Vec::new();
    list.push(program_contestant("enum", &machine, best));
    list.push(program_contestant("enum_worst", &machine, worst));
    list.push(program_contestant(
        "alphadev",
        &machine,
        network_to_cmov(&machine, &optimal_network(4)),
    ));
    for sorter in baselines::native4() {
        list.push(Contestant {
            kernel: Kernel::native(sorter),
            mix: None,
        });
    }

    let inputs = standalone_inputs(4, 1000, 17);
    let iters = if cfg.quick { 50 } else { 4000 };
    let embed = embedded_inputs(if cfg.quick { 10 } else { 40 }, 20_000, 19);
    let embed_iters = if cfg.quick { 1 } else { 5 };

    let mut population_s: Vec<f64> = sampled
        .iter()
        .enumerate()
        .map(|(i, prog)| {
            let kernel = Kernel::from_program(format!("enum#{i}"), &machine, prog.clone());
            bench_sort(&inputs, iters, |d| kernel.sort(d)).as_secs_f64()
        })
        .collect();

    let mut rows = Vec::new();
    for c in &list {
        let ts = bench_sort(&inputs, iters, |d| c.kernel.sort(d)).as_secs_f64();
        let tq = bench_sort(&embed, embed_iters, |d| quicksort_with(&c.kernel, d)).as_secs_f64();
        rows.push((c.kernel.name().to_string(), ts, tq));
        population_s.push(ts);
    }
    population_s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut table = Table::new(&["algorithm", "time_S", "rank_S", "time_Q"]);
    for (name, ts, tq) in &rows {
        let rank = population_s.iter().position(|x| x == ts).expect("measured") + 1;
        table.row_strings(vec![
            name.clone(),
            fmt_duration(std::time::Duration::from_secs_f64(*ts)),
            format!("{rank}/{}", population_s.len()),
            fmt_duration(std::time::Duration::from_secs_f64(*tq)),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e13_runtime_n4.csv"));
    println!("(paper shape: enum and mimicry lead standalone; enum leads embedded)");
}

/// E14: n = 5 standalone comparison. Uses the checked-in kernel that this
/// workspace's search synthesized (33 instructions, 23 min on one core);
/// `SORTSYNTH_N5=1` re-synthesizes it live.
pub fn run_n5(cfg: &BenchConfig) {
    println!("== E14 (§5.3): kernel runtime, n = 5 ==");
    let (machine, enum5) = if cfg.n5 {
        let machine = Machine::new(5, 1, IsaMode::Cmov);
        let (result, t) = crate::util::time(|| synthesize(&SynthesisConfig::best(machine.clone())));
        let Some(prog) = result.first_program() else {
            println!("n = 5 synthesis did not finish: {:?}", result.outcome);
            return;
        };
        println!(
            "synthesized n = 5 kernel live: {} instrs in {} (paper: 33 instrs, 11 min on 16 cores)",
            prog.len(),
            fmt_duration(t)
        );
        (machine, prog)
    } else {
        println!(
            "using the checked-in synthesized kernel (33 instrs; SORTSYNTH_N5=1 re-synthesizes)"
        );
        reference::enum_cmov5()
    };
    assert!(machine.is_correct(&enum5));

    let network = network_to_cmov(&machine, &optimal_network(5));
    let list = vec![
        program_contestant("enum", &machine, enum5),
        program_contestant("alphadev (network reconstruction)", &machine, network),
        Contestant {
            kernel: Kernel::native(sortsynth_kernels::NativeSorter {
                name: "swap",
                n: 5,
                sort: baselines::swap5,
            }),
            mix: None,
        },
        Contestant {
            kernel: Kernel::native(sortsynth_kernels::NativeSorter {
                name: "std",
                n: 5,
                sort: baselines::std_sort5,
            }),
            mix: None,
        },
    ];

    let inputs = standalone_inputs(5, 1000, 23);
    let mut table = Table::new(&["algorithm", "time", "instrs"]);
    let mut rows = Vec::new();
    for c in &list {
        let t = bench_sort(&inputs, 1000, |d| c.kernel.sort(d)).as_secs_f64();
        rows.push((c.kernel.name().to_string(), t, c.mix.map(|m| m.total())));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, secs, total) in rows {
        table.row_strings(vec![
            name,
            fmt_duration(std::time::Duration::from_secs_f64(secs)),
            total.map(|t| t.to_string()).unwrap_or("·".into()),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e14_runtime_n5.csv"));
}

/// Sanity helper shared by tests: the §5.3 score of a program.
pub fn score(prog: &Program) -> u32 {
    sampling_score(prog)
}
