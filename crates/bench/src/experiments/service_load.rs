//! Service load generator: throughput and tail latency of the synthesis
//! server under three workloads.
//!
//! * **cold-cache** — every request is a distinct query, so every request
//!   pays for a real search;
//! * **warm-cache** — one query repeated, served from the in-memory cache
//!   front after the first hit;
//! * **duplicate-storm** — many clients fire the *same* cold query
//!   concurrently; single-flight coalescing must run exactly one search.
//!
//! Reports requests/s and p50/p95/p99 latency per workload, plus the number
//! of searches the server actually started (the cache/coalescing
//! effectiveness measure).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sortsynth_cache::{CutSpec, KernelQuery};
use sortsynth_isa::IsaMode;
use sortsynth_obs::RingBuffer;
use sortsynth_service::{Client, Response, Server, ServerHandle, ServiceConfig};

use crate::util::{fmt_duration, write_bench_json, BenchConfig, Table};

/// Latency percentile over an already-sorted sample.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// `count` distinct cheap queries (n = 2 and n = 3 machines, varied scratch
/// and cut) — each fingerprint is new to the server, so each is a cold miss.
/// Scratch counts stay within the distance table's supported machine sizes
/// so every cold search keeps its pruning aids and finishes in milliseconds.
fn cold_queries(count: usize) -> Vec<KernelQuery> {
    let mut queries = Vec::new();
    for add in 0u32.. {
        for (n, max_scratch) in [(2u8, 7u8), (3, 6)] {
            for scratch in 1..=max_scratch {
                let mut query = KernelQuery::best(n, scratch, IsaMode::Cmov);
                if add > 0 {
                    query.cut = Some(CutSpec::Additive { add });
                }
                queries.push(query);
                if queries.len() == count {
                    return queries;
                }
            }
        }
    }
    unreachable!("the loop above returns once `count` queries exist")
}

/// Round-robins `queries` over `clients` connections (one thread each) and
/// returns (sorted per-request latencies, wall-clock for the whole batch).
fn run_workload(
    addr: SocketAddr,
    clients: usize,
    queries: &[KernelQuery],
) -> (Vec<Duration>, Duration) {
    let started = Instant::now();
    let mut latencies: Vec<Duration> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let share: Vec<KernelQuery> =
                    queries.iter().skip(c).step_by(clients).cloned().collect();
                scope.spawn(move |_| {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lats = Vec::with_capacity(share.len());
                    for query in share {
                        let sent = Instant::now();
                        let response = client.synth(query, Some(120_000)).expect("synth request");
                        assert!(
                            matches!(response, Response::Synth(_)),
                            "unexpected response {response:?}"
                        );
                        lats.push(sent.elapsed());
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    })
    .expect("client scope");
    let elapsed = started.elapsed();
    latencies.sort();
    (latencies, elapsed)
}

fn report_row(
    table: &mut Table,
    name: &str,
    clients: usize,
    latencies: &[Duration],
    elapsed: Duration,
    searches: u64,
) {
    let throughput = latencies.len() as f64 / elapsed.as_secs_f64();
    table.row_strings(vec![
        name.to_string(),
        latencies.len().to_string(),
        clients.to_string(),
        format!("{throughput:.0}"),
        fmt_duration(percentile(latencies, 50.0)),
        fmt_duration(percentile(latencies, 95.0)),
        fmt_duration(percentile(latencies, 99.0)),
        searches.to_string(),
    ]);
}

/// Runs the three workloads against an in-process server.
pub fn run(cfg: &BenchConfig) {
    println!("== service load: throughput and tail latency ==");
    let handle: ServerHandle = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 256,
        cache_dir: None,
        cache_capacity: 4096,
        default_timeout: Some(Duration::from_secs(120)),
        search_threads: 1,
        self_report: None,
        portfolio: None,
        record_dir: None,
        search_mem_limit: None,
    })
    .expect("bind service")
    .spawn();
    let addr = handle.addr();

    let mut table = Table::new(&[
        "workload", "requests", "clients", "req/s", "p50", "p95", "p99", "searches",
    ]);

    // Cold cache: every request is a distinct query → one search each.
    let cold = cold_queries(if cfg.quick { 8 } else { 24 });
    let (latencies, elapsed) = run_workload(addr, 4, &cold);
    report_row(
        &mut table,
        "cold-cache",
        4,
        &latencies,
        elapsed,
        handle.searches_started(),
    );

    // Warm cache: one already-computed query, repeated. Zero new searches.
    let warm_query = KernelQuery::best(3, 1, IsaMode::Cmov);
    let before = handle.searches_started();
    let warm: Vec<KernelQuery> = vec![warm_query.clone(); if cfg.quick { 64 } else { 512 }];
    let (latencies, elapsed) = run_workload(addr, 4, &warm);
    report_row(
        &mut table,
        "warm-cache",
        4,
        &latencies,
        elapsed,
        handle.searches_started() - before,
    );

    // Duplicate storm: 16 clients race the same cold query; single-flight
    // must coalesce them onto exactly one search.
    let storm_query = KernelQuery::best(3, 2, IsaMode::MinMax);
    let before = handle.searches_started();
    let storm: Vec<KernelQuery> = vec![storm_query; 16];
    let (latencies, elapsed) = run_workload(addr, 16, &storm);
    let storm_searches = handle.searches_started() - before;
    assert_eq!(storm_searches, 1, "duplicate storm must coalesce");
    report_row(
        &mut table,
        "duplicate-storm",
        16,
        &latencies,
        elapsed,
        storm_searches,
    );

    // Instrumentation overhead: replay the warm-cache workload with tracing
    // fully active (a live ring-buffer subscriber receiving every span and
    // event) and again with it disabled. Warm-cache is the worst case for
    // overhead — requests are microseconds of cache lookup, so fixed
    // per-request instrumentation cost is maximally visible. Each mode takes
    // the best of three runs (after an untimed warmup) so scheduler noise
    // doesn't masquerade as instrumentation cost.
    let probe: Vec<KernelQuery> = vec![warm_query; if cfg.quick { 512 } else { 2048 }];
    let best_rps = |addr, probe: &[KernelQuery]| {
        let _ = run_workload(addr, 4, probe);
        (0..3)
            .map(|_| {
                let (lats, elapsed) = run_workload(addr, 4, probe);
                lats.len() as f64 / elapsed.as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };
    let ring = Arc::new(RingBuffer::new(65536));
    let sub = sortsynth_obs::add_subscriber(ring);
    sortsynth_obs::set_enabled(true);
    let rps_on = best_rps(addr, &probe);
    sortsynth_obs::set_enabled(false);
    sortsynth_obs::remove_subscriber(sub);
    let rps_off = best_rps(addr, &probe);
    let overhead_pct = (rps_off / rps_on - 1.0) * 100.0;

    handle.shutdown().expect("shutdown");
    table.print();
    println!(
        "obs overhead (warm cache): {rps_on:.0} req/s traced vs {rps_off:.0} req/s untraced \
         ({overhead_pct:+.1}% throughput cost)"
    );
    table.write_csv(&cfg.ensure_out_dir().join("service_load.csv"));
    write_bench_json(
        "service_load",
        &format!(
            "{{\"experiment\":\"service_load\",\"rows\":{},\
             \"obs_overhead\":{{\"warm_requests\":{},\"req_per_s_obs_on\":{rps_on:.1},\
             \"req_per_s_obs_off\":{rps_off:.1},\"overhead_pct\":{overhead_pct:.2}}}}}\n",
            table.rows_json(),
            probe.len(),
        ),
    );
}
