//! E16 — §5.4: min/max (vector) kernels — synthesized sizes, synthesis
//! time, and runtime against the best cmov kernels and the network
//! implementations.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_kernels::{
    network_to_cmov, network_to_minmax, optimal_network, reference, standalone_inputs, Kernel,
};
use sortsynth_search::{synthesize, SynthesisConfig};

use crate::util::{bench_sort, fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E16 (§5.4): min/max kernels ==");
    let mut table = Table::new(&[
        "n",
        "# instr (synthesized)",
        "synthesis",
        "min/max runtime",
        "cmov runtime",
        "network runtime",
    ]);
    let max_n = if cfg.quick { 3 } else { 4 };
    let inputs_iters = if cfg.quick { 50 } else { 4000 };

    for n in 3..=5u8 {
        let mm = Machine::new(n, 1, IsaMode::MinMax);
        // n = 3/4 synthesize in milliseconds; the n = 5 run (≈5 s) uses the
        // checked-in 23-instruction kernel unless asked to resynthesize.
        let (minmax_prog, synth_cell) = if n <= max_n || n == 5 {
            if n == 5 && !cfg.n5 {
                let (_, prog) = reference::enum_minmax5();
                (prog, "checked-in (5.2 s measured)".to_string())
            } else {
                let (result, t_synth) = time(|| synthesize(&SynthesisConfig::best(mm.clone())));
                let Some(prog) = result.first_program() else {
                    println!(
                        "n = {n}: min/max synthesis did not finish ({:?})",
                        result.outcome
                    );
                    continue;
                };
                (prog, fmt_duration(t_synth))
            }
        } else {
            table.row_strings(vec![
                n.to_string(),
                "(skipped)".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        assert!(mm.is_correct(&minmax_prog));

        // cmov comparison kernel: the best known (synthesized for n = 3 and
        // n = 5; network-optimal at n = 4, where the network length 20 is
        // the proven optimum).
        let cm = Machine::new(n, 1, IsaMode::Cmov);
        let cmov_prog = match n {
            3 => reference::paper_synth_cmov3().1,
            5 => reference::enum_cmov5().1,
            _ => network_to_cmov(&cm, &optimal_network(n)),
        };
        let network_prog = network_to_minmax(&mm, &optimal_network(n));

        let inputs = standalone_inputs(n as usize, 1000, 29 + n as u64);
        let k_minmax = Kernel::from_program("minmax", &mm, minmax_prog.clone());
        let k_cmov = Kernel::from_program("cmov", &cm, cmov_prog);
        let k_network = Kernel::from_program("network", &mm, network_prog.clone());
        let t_mm = bench_sort(&inputs, inputs_iters, |d| k_minmax.sort(d));
        let t_cm = bench_sort(&inputs, inputs_iters, |d| k_cmov.sort(d));
        let t_net = bench_sort(&inputs, inputs_iters, |d| k_network.sort(d));

        table.row_strings(vec![
            n.to_string(),
            format!("{} (network: {})", minmax_prog.len(), network_prog.len()),
            synth_cell,
            fmt_duration(t_mm),
            fmt_duration(t_cm),
            fmt_duration(t_net),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e16_minmax.csv"));
    println!("(paper: sizes 8/15/26 vs network 9/15/27; min/max beats both cmov and network)");
}
