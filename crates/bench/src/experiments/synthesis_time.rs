//! E4 — §5.2 headline table: enumerative synthesis time vs the
//! paper-reported AlphaDev numbers.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, SynthesisConfig};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E4 (§5.2): synthesis time, Enum best vs AlphaDev ==");
    let mut table = Table::new(&["approach", "n = 3", "n = 4", "n = 5", "source"]);

    let mut ours: Vec<String> = Vec::new();
    let max_n = if cfg.quick { 3 } else { 4 };
    for n in 3..=5u8 {
        if n > max_n && !(n == 5 && cfg.n5) {
            ours.push("(skipped; set SORTSYNTH_N5=1)".into());
            continue;
        }
        let machine = Machine::new(n, 1, IsaMode::Cmov);
        let (result, elapsed) = time(|| synthesize(&SynthesisConfig::best(machine)));
        ours.push(format!(
            "{} (len {})",
            fmt_duration(elapsed),
            result
                .found_len
                .map(|l| l.to_string())
                .unwrap_or("—".into())
        ));
    }
    table.row_strings(vec![
        "Enum, best (III)".into(),
        ours[0].clone(),
        ours[1].clone(),
        ours[2].clone(),
        "measured".into(),
    ]);
    // AlphaDev cannot be rerun (TPU fleet, closed source); these rows quote
    // the values the paper itself reports.
    table.row_strings(vec![
        "AlphaDev-RL".into(),
        "6 min".into(),
        "30 min".into(),
        "~1050 min".into(),
        "paper-reported".into(),
    ]);
    table.row_strings(vec![
        "AlphaDev-S".into(),
        "0.4 s".into(),
        "0.6 s".into(),
        "~345 min".into(),
        "paper-reported".into(),
    ]);
    table.row_strings(vec![
        "Enum, best (paper)".into(),
        "97 ms".into(),
        "2443 ms".into(),
        "11 min".into(),
        "paper-reported".into(),
    ]);
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e04_synthesis_time.csv"));
}
