//! E2 — Figure 1: open states and found solutions over time for n = 4 with
//! the k = 1 cut.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, Cut, SynthesisConfig};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E2 (Figure 1): search progress over time, n = 4, cut k = 1 ==");
    let n = if cfg.quick { 3 } else { 4 };
    let machine = Machine::new(n, 1, IsaMode::Cmov);
    let synth = SynthesisConfig::new(machine)
        .budget_viability(true)
        .optimal_instrs_only(true)
        .cut(Cut::Factor(1.0))
        .all_solutions(true)
        .max_len(if n == 4 { 20 } else { 11 })
        .progress_every(64);
    let (result, elapsed) = time(|| synthesize(&synth));

    let mut table = Table::new(&["elapsed_secs", "open_states", "solutions"]);
    for sample in &result.stats.progress {
        table.row_strings(vec![
            format!("{:.4}", sample.elapsed_secs),
            sample.open_states.to_string(),
            sample.solutions.to_string(),
        ]);
    }
    // Print only a digest; the full series goes to CSV.
    println!(
        "n = {n}: {} solutions (length {:?}) in {}, {} progress samples",
        result.solution_count(),
        result.found_len,
        fmt_duration(elapsed),
        result.stats.progress.len()
    );
    let peak_open = result
        .stats
        .progress
        .iter()
        .map(|s| s.open_states)
        .max()
        .unwrap_or(0);
    println!("peak open states: {peak_open}");
    table.write_csv(&cfg.ensure_out_dir().join("e02_fig1_progress.csv"));
}
