//! Observability overhead: what the phase profiler and the flight recorder
//! cost on the headline synthesis. Emits `BENCH_obs_overhead.json`.
//!
//! The profiler's design contract (see `sortsynth-obs::profile`) is ≤1%
//! measured overhead on the n = 4 cmp/cmov headline when enabled — probes
//! sit at phase boundaries, never per candidate, and sample one expansion
//! cycle per stride. This experiment pins that
//! number: interleaved off/on runs (so drift hits both modes evenly), best
//! of `iters` per mode, overhead = 1 − nodes/sec(on) / nodes/sec(off).
//! The recorder row (progress hook + throttled on-disk frames) rides along
//! as an informational column; its cadence-bound writes are far off the hot
//! path.

use std::time::Duration;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, ProgressHook, SearchStats, SynthesisConfig};

use crate::util::{fmt_duration, time, write_bench_json, BenchConfig, Table};

/// The acceptance ceiling on profiler overhead, asserted under
/// `SORTSYNTH_ENFORCE_BASELINE=1` (the reference container).
pub const MAX_PROFILER_OVERHEAD: f64 = 0.01;

/// One measured mode: best nodes/sec over the runs handed to it.
#[derive(Default)]
struct Mode {
    nodes_per_sec: f64,
    elapsed: Duration,
    stats: Option<SearchStats>,
}

impl Mode {
    fn observe(&mut self, stats: SearchStats, elapsed: Duration) {
        let nps = stats.expanded as f64 / elapsed.as_secs_f64().max(1e-9);
        if nps > self.nodes_per_sec {
            self.nodes_per_sec = nps;
            self.elapsed = elapsed;
            self.stats = Some(stats);
        }
    }
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== observability overhead (profiler / flight recorder) ==");
    let iters = if cfg.quick { 2 } else { 5 };
    let machine = if cfg.quick {
        Machine::new(3, 1, IsaMode::Cmov)
    } else {
        Machine::new(4, 1, IsaMode::Cmov)
    };
    let n = machine.n();
    println!("n = {n} cmp/cmov best config; interleaved, best of {iters} per mode");

    let record_path =
        std::env::temp_dir().join(format!("sortsynth-bench-obs-{}.ssfr", std::process::id()));
    let mut off = Mode::default();
    let mut on = Mode::default();
    let mut rec = Mode::default();
    for _ in 0..iters {
        // Off first, on second, recorder third, every round: slow drift
        // (thermal, noisy neighbors) then biases all modes alike.
        sortsynth_obs::profile::set_enabled(false);
        let synth_cfg = SynthesisConfig::best(machine.clone());
        let (result, elapsed) = time(|| synthesize(&synth_cfg));
        off.observe(result.stats, elapsed);

        sortsynth_obs::profile::set_enabled(true);
        let (result, elapsed) = time(|| synthesize(&synth_cfg));
        on.observe(result.stats, elapsed);
        sortsynth_obs::profile::set_enabled(false);

        let recorder = std::sync::Arc::new(
            sortsynth_obs::FlightRecorder::create(&record_path).expect("temp recording"),
        );
        let rec_cfg = SynthesisConfig::best(machine.clone())
            .progress_every(8192)
            .progress_hook(ProgressHook::new(move |p| {
                let _ = recorder.record(&p.recorder_frame());
            }));
        let (result, elapsed) = time(|| synthesize(&rec_cfg));
        rec.observe(result.stats, elapsed);
    }
    let _ = std::fs::remove_file(&record_path);

    let profiler_overhead = 1.0 - on.nodes_per_sec / off.nodes_per_sec;
    let recorder_overhead = 1.0 - rec.nodes_per_sec / off.nodes_per_sec;
    // How much of the profiled run's wall the phase taxonomy accounts for.
    let coverage = on
        .stats
        .as_ref()
        .map(|s| {
            let attributed: u64 = s.phase_nanos.iter().sum();
            let wall = (s.distance_build + s.search_time).as_nanos() as u64;
            attributed as f64 / wall.max(1) as f64
        })
        .unwrap_or(0.0);

    let mut table = Table::new(&["mode", "time", "nodes/sec", "overhead"]);
    for (name, mode, overhead) in [
        ("profiler off", &off, 0.0),
        ("profiler on", &on, profiler_overhead),
        ("recorder on", &rec, recorder_overhead),
    ] {
        table.row_strings(vec![
            name.into(),
            fmt_duration(mode.elapsed),
            format!("{:.0}", mode.nodes_per_sec),
            format!("{:+.2}%", overhead * 100.0),
        ]);
    }
    table.print();
    println!(
        "profiler overhead {:.2}% (ceiling {:.0}%); phase coverage {:.1}% of wall",
        profiler_overhead * 100.0,
        MAX_PROFILER_OVERHEAD * 100.0,
        coverage * 100.0
    );

    // The ≤1% gate is asserted only on the container whose numbers are
    // committed (opt-in via env); elsewhere the figure is informational.
    if std::env::var("SORTSYNTH_ENFORCE_BASELINE").as_deref() == Ok("1") {
        assert!(
            profiler_overhead <= MAX_PROFILER_OVERHEAD,
            "profiler overhead {:.3}% exceeds the {:.0}% ceiling",
            profiler_overhead * 100.0,
            MAX_PROFILER_OVERHEAD * 100.0
        );
    }

    table.write_csv(&cfg.ensure_out_dir().join("obs_overhead.csv"));
    write_bench_json(
        "obs_overhead",
        &format!(
            "{{\"experiment\":\"obs_overhead\",\"quick\":{},\"iters\":{iters},\
             \"n\":{n},\"isa\":\"cmov\",\
             \"baseline_nodes_per_sec\":{:.1},\
             \"profiler_nodes_per_sec\":{:.1},\
             \"profiler_overhead\":{profiler_overhead:.5},\
             \"recorder_nodes_per_sec\":{:.1},\
             \"recorder_overhead\":{recorder_overhead:.5},\
             \"phase_coverage\":{coverage:.4},\
             \"max_profiler_overhead\":{MAX_PROFILER_OVERHEAD}}}\n",
            cfg.quick, off.nodes_per_sec, on.nodes_per_sec, rec.nodes_per_sec,
        ),
    );
}
