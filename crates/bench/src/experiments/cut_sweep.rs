//! E10 — §5.2's cut-factor sweep: synthesis time for n = 3 / n = 4 and
//! surviving solutions for n = 3 as a function of the cut factor `k`.

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_search::{synthesize, Cut, SynthesisConfig};

use crate::util::{fmt_duration, time, BenchConfig, Table};

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E10 (§5.2): cut-factor sweep ==");
    let m3 = Machine::new(3, 1, IsaMode::Cmov);
    let m4 = Machine::new(4, 1, IsaMode::Cmov);

    let mut table = Table::new(&["k", "time n=3", "time n=4", "solutions remaining n=3"]);
    for &k in &[1.0, 1.5, 2.0, 3.0, 4.0] {
        let best3 = SynthesisConfig::best(m3.clone()).cut(Cut::Factor(k));
        let (_, t3) = time(|| synthesize(&best3));

        // n = 4 grows quickly with k (the paper reports 763 s at k = 2);
        // larger factors only run in SORTSYNTH_FULL mode.
        let t4 = if cfg.quick || (k > 1.5 && !cfg.full) {
            "(skipped)".to_string()
        } else {
            let best4 = SynthesisConfig::best(m4.clone()).cut(Cut::Factor(k));
            let (r4, t4) = time(|| synthesize(&best4));
            format!(
                "{} (len {})",
                fmt_duration(t4),
                r4.found_len.map(|l| l.to_string()).unwrap_or("—".into())
            )
        };

        // Solutions remaining: enumerate all minimal solutions under the cut
        // (no action restriction — it would hide solutions the cut kept).
        let all = SynthesisConfig::new(m3.clone())
            .budget_viability(true)
            .cut(Cut::Factor(k))
            .all_solutions(true)
            .max_len(11);
        let (result, _) = time(|| synthesize(&all));
        table.row_strings(vec![
            format!("{k}"),
            fmt_duration(t3),
            t4,
            result.solution_count().to_string(),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e10_cut_sweep.csv"));
    println!("(paper: k=1 → 222 solutions, k=1.5 → 838, k≥2 → all 5602)");
}
