//! E6 — §5.2's CP tables: solver back-ends (CDCL vs branch-and-bound ILP)
//! and the goal-formulation × heuristic sweep.

use std::time::Duration;

use sortsynth_isa::{IsaMode, Machine};
use sortsynth_solvers::{ilp_synthesize, smt_perm, Budget, EncodeOptions, Goal, SynthOutcome};

use crate::util::{fmt_duration, BenchConfig, Table};

use super::search_space::optimal_cmov_len;

fn outcome_cell(outcome: &SynthOutcome) -> String {
    match outcome {
        SynthOutcome::Found(p) => format!("found ({} instrs)", p.len()),
        SynthOutcome::NoProgram => "no program".into(),
        SynthOutcome::Budget => "—".into(),
    }
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    let budget = Budget::with_timeout(if cfg.quick {
        Duration::from_secs(5)
    } else {
        cfg.budget
    });
    let n = if cfg.quick { 2u8 } else { 3 };
    let machine = Machine::new(n, 1, IsaMode::Cmov);
    let len = optimal_cmov_len(n);

    println!("== E6a (§5.2): CP back-ends, n = {n} ==");
    let mut backends = Table::new(&["approach", "time", "result", "note"]);
    // Lazy-clause-generation (our CDCL core) — the Chuffed stand-in.
    let (outcome, stats) = smt_perm(&machine, len, EncodeOptions::default(), budget.clone());
    backends.row_strings(vec![
        "CP (lazy clause generation)".into(),
        fmt_duration(stats.elapsed),
        outcome_cell(&outcome),
        "Chuffed-style; the only CP solver that succeeded in the paper".into(),
    ]);
    // Learning-free branch-and-bound — the Gurobi/CBC ILP stand-in. Give it
    // a fraction of the budget; it will not finish n = 3 regardless.
    let ilp_budget = Budget {
        conflicts: None,
        timeout: Some(budget.timeout.expect("budget set") / 2),
        ..Budget::default()
    };
    let (outcome, stats) = ilp_synthesize(&machine, len, EncodeOptions::default(), ilp_budget);
    backends.row_strings(vec![
        "CP-ILP (branch & bound, no learning)".into(),
        fmt_duration(stats.elapsed),
        outcome_cell(&outcome),
        "paper: every dedicated ILP solver timed out".into(),
    ]);
    backends.print();
    backends.write_csv(&cfg.ensure_out_dir().join("e06a_cp_backends.csv"));

    println!("\n== E6b (§5.2): goal formulations × heuristics, n = {n} ==");
    let mut table = Table::new(&["goal", "heuristics", "time", "result"]);
    let base = EncodeOptions {
        no_consecutive_cmps: false,
        cmp_symmetry: false,
        first_cmd_cmp: false,
        only_read_initialized: false,
        goal: Goal::Exact,
        ..EncodeOptions::default()
    };
    let variants: Vec<(&str, &str, EncodeOptions)> = vec![
        (
            "= 123",
            "—",
            EncodeOptions {
                goal: Goal::Exact,
                ..base
            },
        ),
        (
            "<=, #0123",
            "—",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                ..base
            },
        ),
        (
            "<=, #0123",
            "(I) no consecutive compares",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                no_consecutive_cmps: true,
                ..base
            },
        ),
        (
            "<=, #0123",
            "(II) compare symmetry",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                cmp_symmetry: true,
                ..base
            },
        ),
        (
            "<=, #0123",
            "(I) + (II)",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                ..base
            },
        ),
        (
            "= 123",
            "(I) + (II)",
            EncodeOptions {
                goal: Goal::Exact,
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                ..base
            },
        ),
        (
            "<=, #0123, = 123",
            "(I) + (II)",
            EncodeOptions {
                goal: Goal::AscendingCountsAndExact,
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                ..base
            },
        ),
        (
            "<=, #123",
            "(I) + (II)",
            EncodeOptions {
                goal: Goal::AscendingCounts {
                    include_zero: false,
                },
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                ..base
            },
        ),
        (
            "<=, #0123",
            "(I) + (II), cmd[1] = Cmp",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                first_cmd_cmp: true,
                ..base
            },
        ),
        (
            "<=, #0123",
            "(I) + (II), only read initialized",
            EncodeOptions {
                goal: Goal::AscendingCounts { include_zero: true },
                no_consecutive_cmps: true,
                cmp_symmetry: true,
                only_read_initialized: true,
                ..base
            },
        ),
    ];
    for (goal, heuristics, opts) in variants {
        let (outcome, stats) = smt_perm(&machine, len, opts, budget.clone());
        table.row_strings(vec![
            goal.into(),
            heuristics.into(),
            fmt_duration(stats.elapsed),
            outcome_cell(&outcome),
        ]);
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("e06b_cp_goals.csv"));
    println!("(paper, n = 3 with Chuffed: '= 123' 247 s; '<=, #0123' + (I)+(II) 874 ms —");
    println!(" symmetry breaking and goal formulation dominate, which the rows above mirror)");
}
