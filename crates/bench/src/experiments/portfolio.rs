//! Portfolio race benchmark: every backend raced first-win on the small
//! kernel queries, then re-raced under the learned dispatch policy.
//!
//! On a single-core host the interesting numbers are not wall-clock
//! speedups but the race's bookkeeping: which arm wins each shape, how
//! fast the first verified solution arrives, how the losers end
//! (completed vs cancelled), and how much narrower the policy-guided
//! second pass is. Every winner is asserted to match the sequential
//! enumerative optimum — racing may change who answers, never the answer.
//! Emits `BENCH_portfolio.json`.

use sortsynth_cache::KernelQuery;
use sortsynth_isa::IsaMode;
use sortsynth_portfolio::{
    backend_for, BackendKind, BackendStatus, DispatchPolicy, Portfolio, SearchBudget,
};

use crate::util::{fmt_duration, write_bench_json, BenchConfig, Table};

/// The sequential enumerative optimum — the differential reference.
fn reference_len(query: &KernelQuery) -> u32 {
    let out = backend_for(BackendKind::AStar).run(query, &SearchBudget::unlimited(), None);
    match out.status {
        BackendStatus::Found { program, .. } => program.len() as u32,
        other => panic!("sequential reference failed: {other:?}"),
    }
}

fn status_name(status: &BackendStatus) -> &'static str {
    match status {
        BackendStatus::Found { .. } => "found",
        BackendStatus::NoProgram => "no-program",
        BackendStatus::Budget => "cancelled",
        BackendStatus::Unsupported => "unsupported",
    }
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== portfolio: first-win races and learned dispatch ==");
    let queries: &[(u8, IsaMode)] = if cfg.quick {
        &[(2, IsaMode::Cmov), (3, IsaMode::Cmov)]
    } else {
        &[
            (2, IsaMode::Cmov),
            (2, IsaMode::MinMax),
            (3, IsaMode::Cmov),
            (3, IsaMode::MinMax),
        ]
    };

    let mut table = Table::new(&["isa", "n", "winner", "len", "race", "arms", "cancelled"]);
    let mut json_rows = Vec::new();
    let mut policy = DispatchPolicy::new();
    let portfolio = Portfolio::all();

    for &(n, mode) in queries {
        let query = KernelQuery::best(n, 1, mode);
        let expected = reference_len(&query);
        let report = portfolio.run(&query, &SearchBudget::unlimited(), None);
        let winner = report
            .winner
            .unwrap_or_else(|| panic!("no winner for n={n} {mode:?}"));
        assert_eq!(
            report.found_len,
            Some(expected),
            "n={n} {mode:?}: race answer diverged from the sequential optimum"
        );
        policy.record(&query, &report);

        let cancelled = report
            .outcomes
            .iter()
            .filter(|o| o.status == BackendStatus::Budget)
            .count();
        let isa = match mode {
            IsaMode::Cmov => "cmov",
            IsaMode::MinMax => "minmax",
        };
        table.row_strings(vec![
            isa.into(),
            n.to_string(),
            winner.name().into(),
            expected.to_string(),
            fmt_duration(report.elapsed),
            report.outcomes.len().to_string(),
            cancelled.to_string(),
        ]);
        let arms: Vec<String> = report
            .outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"backend\":\"{}\",\"status\":\"{}\",\"millis\":{:.3}}}",
                    o.kind.name(),
                    status_name(&o.status),
                    o.elapsed.as_secs_f64() * 1e3
                )
            })
            .collect();
        json_rows.push(format!(
            "{{\"isa\":\"{isa}\",\"n\":{n},\"winner\":\"{}\",\"len\":{expected},\
             \"race_millis\":{:.3},\"verify_rejected\":{},\"arms\":[{}]}}",
            winner.name(),
            report.elapsed.as_secs_f64() * 1e3,
            report.verify_rejected,
            arms.join(",")
        ));
    }
    table.print();

    // Second pass: the freshly learned policy narrows each race to its
    // historically-best arm, and the narrowed race still finds the optimum
    // without widening.
    println!("policy-guided rerun (first wave only, no widening expected):");
    let mut policy_rows = Vec::new();
    for &(n, mode) in queries {
        let query = KernelQuery::best(n, 1, mode);
        let report = portfolio.run(&query, &SearchBudget::unlimited(), Some(&policy));
        let winner = report
            .winner
            .unwrap_or_else(|| panic!("policy rerun lost n={n} {mode:?}"));
        assert!(!report.widened, "n={n} {mode:?}: narrowed race widened");
        println!(
            "  n={n} {mode:?}: {} of {} arms raced, won by {} in {}",
            report.outcomes.len(),
            BackendKind::ALL.len(),
            winner.name(),
            fmt_duration(report.elapsed)
        );
        policy_rows.push(format!(
            "{{\"n\":{n},\"isa\":\"{}\",\"arms_raced\":{},\"winner\":\"{}\",\
             \"race_millis\":{:.3}}}",
            match mode {
                IsaMode::Cmov => "cmov",
                IsaMode::MinMax => "minmax",
            },
            report.outcomes.len(),
            winner.name(),
            report.elapsed.as_secs_f64() * 1e3
        ));
    }

    table.write_csv(&cfg.ensure_out_dir().join("portfolio.csv"));
    write_bench_json(
        "portfolio",
        &format!(
            "{{\"experiment\":\"portfolio\",\"races\":[{}],\"policy_rerun\":[{}]}}\n",
            json_rows.join(","),
            policy_rows.join(",")
        ),
    );
}
