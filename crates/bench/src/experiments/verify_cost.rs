//! E-V: cost of statically verifying a kernel, by strategy.
//!
//! The verifier has three ways to establish (or refute) correctness, with
//! very different costs:
//!
//! 1. **network certificate** — recognize the program as a comparator
//!    network and check the network on all `2^n` 0-1 vectors (comparator
//!    simulation, no machine semantics);
//! 2. **0-1 run** — execute the full program on all `2^n` 0-1 inputs
//!    (sound certificate for min/max kernels, necessary-only for cmov);
//! 3. **exhaustive permutations** — the ground-truth oracle, `n!` full
//!    program runs.
//!
//! This experiment times all three on the library's sorting-network kernels
//! for n = 2..5 in both ISA modes, and then measures how often dead-code
//! elimination can shrink an *enumerated minimal* kernel (it never should:
//! a kernel with a removable instruction is not minimal).

use sortsynth_isa::{factorial, IsaMode};
use sortsynth_kernels::network_kernel;
use sortsynth_search::{synthesize, Cut, SynthesisConfig};
use sortsynth_verify::{dce, network, zero_one};

use crate::util::{fmt_duration, time, write_bench_json, BenchConfig, Table};

fn mode_name(mode: IsaMode) -> &'static str {
    match mode {
        IsaMode::Cmov => "cmov",
        IsaMode::MinMax => "minmax",
    }
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) {
    println!("== E-V: verification cost by strategy ==");
    let reps: u32 = if cfg.quick { 20 } else { 200 };
    let max_n = if cfg.quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "n",
        "isa",
        "instrs",
        "network cert",
        "0-1 run",
        "exhaustive perms",
    ]);
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=max_n {
            let (machine, prog) = network_kernel(n, mode);
            let (net, t_net) = time(|| {
                let mut last = None;
                for _ in 0..reps {
                    let comparators =
                        network::extract_network(&machine, &prog).expect("network kernel");
                    last = Some(network::network_witness(machine.n(), &comparators));
                }
                last.expect("reps > 0")
            });
            assert!(net.is_none(), "network kernels sort");
            let (zo, t_zo) = time(|| {
                let mut last = None;
                for _ in 0..reps {
                    last = Some(zero_one::zero_one_witness(&machine, &prog));
                }
                last.expect("reps > 0")
            });
            assert!(zo.is_none(), "network kernels pass 0-1");
            let (correct, t_perm) = time(|| {
                let mut ok = true;
                for _ in 0..reps {
                    ok &= machine.is_correct(&prog);
                }
                ok
            });
            assert!(correct);
            table.row_strings(vec![
                n.to_string(),
                mode_name(mode).to_string(),
                prog.len().to_string(),
                fmt_duration(t_net / reps),
                fmt_duration(t_zo / reps),
                fmt_duration(t_perm / reps),
            ]);
        }
    }
    table.print();
    table.write_csv(&cfg.ensure_out_dir().join("ev_verify_cost.csv"));
    println!("(2^n vs n! inputs: the certificate paths stay cheap where the oracle blows up)");

    println!("\n== E-V2: DCE-reducibility of enumerated minimal kernels ==");
    let mut reducible = Table::new(&["n", "isa", "solutions checked", "dce-reducible"]);
    let sample = if cfg.quick { 50 } else { 500 };
    for mode in [IsaMode::Cmov, IsaMode::MinMax] {
        for n in 2..=3u8 {
            let machine = sortsynth_isa::Machine::new(n, 1, mode);
            let probe = synthesize(&SynthesisConfig::best(machine.clone()));
            let len = probe.found_len.expect("kernels exist for n <= 3");
            let result = synthesize(
                &SynthesisConfig::new(machine.clone())
                    .budget_viability(true)
                    .cut(Cut::Factor(1.0))
                    .all_solutions(true)
                    .max_len(len),
            );
            let programs = result.dag.programs(sample);
            let shrunk = programs
                .iter()
                .filter(|p| dce(&machine, p).len() < p.len())
                .count();
            reducible.row_strings(vec![
                n.to_string(),
                mode_name(mode).to_string(),
                programs.len().to_string(),
                shrunk.to_string(),
            ]);
            assert_eq!(
                shrunk, 0,
                "a minimal-length kernel carried dead code (n={n} {mode:?})"
            );
        }
    }
    reducible.print();
    reducible.write_csv(&cfg.ensure_out_dir().join("ev2_dce_reducible.csv"));
    write_bench_json(
        "verify_cost",
        &format!(
            "{{\"experiment\":\"verify_cost\",\"verify_cost\":{},\"dce_reducible\":{}}}\n",
            table.rows_json(),
            reducible.rows_json(),
        ),
    );
    println!(
        "(factorial({max_n}) = {}; minimal kernels carry no dead code)",
        factorial(max_n)
    );
}
